use pim_core::{experiments, SystemConfig};

fn main() {
    let cfg = SystemConfig::stacked_3d();
    let sa = experiments::joint_sa_config();
    let rows = experiments::fig6_rows(&cfg, &sa);
    for r in &rows {
        println!(
            "{} {} edp_F={:.3e} edp_J={:.3e} pk_F={:.1} pk_J={:.1} dT={:.1} accF={:.3} accJ={:.3} edpJ/F={:.3}",
            r.id, r.model, r.floret.edp_js, r.joint.edp_js,
            r.floret.peak_k, r.joint.peak_k, r.floret.peak_k - r.joint.peak_k,
            r.floret.accuracy_drop, r.joint.accuracy_drop,
            r.joint.edp_js / r.floret.edp_js
        );
    }
    let f7 = experiments::fig7_maps(&cfg, &sa);
    println!(
        "fig7: floret_peak={:.1} joint_peak={:.1} dT={:.1} hotspots {} vs {}",
        f7.floret_peak_k,
        f7.joint_peak_k,
        f7.floret_peak_k - f7.joint_peak_k,
        f7.floret_hotspots,
        f7.joint_hotspots
    );
}

//! Property-based tests of the fault-injection/resilience layer:
//! retry-backoff purity, request conservation under random fault
//! plans, and thread-count independence of the resilient event loop.

use mapper::ArrivalProcess;
use pim_core::{
    simulate_resilient_serving, FaultPlan, FaultSpec, ResilienceParams, RetryPolicy, ServingSpec,
    TenantSpec,
};
use proptest::prelude::*;

/// A short two-chip spec the properties can afford to replay many
/// times: one load point, two tenants, a 12 ms horizon.
fn short_spec() -> ServingSpec {
    ServingSpec {
        fleet: 2,
        horizon_ms: 12.0,
        batch_window_us: 150.0,
        max_batch: 4,
        queue_depth: 8,
        slo_ms: 8.0,
        loads: vec![1.1],
        tenants: vec![
            TenantSpec {
                model: "M1".to_string(),
                rate_rps: 420.0,
                process: ArrivalProcess::Poisson,
            },
            TenantSpec {
                model: "M9".to_string(),
                rate_rps: 700.0,
                process: ArrivalProcess::Bursty { burst: 4 },
            },
        ],
    }
}

/// Fixed per-tenant service times (ns) so the properties do not have
/// to build DNN cost models per case.
const SERVICE_NS: [u64; 2] = [620_000, 310_000];

/// A fault spec whose aggressiveness is driven by the sampled inputs.
fn arb_fault_spec(mtbf_ms: f64, mttr_ms: f64, link_rate: f64, shed: f64) -> FaultSpec {
    FaultSpec {
        chip_mtbf_ms: mtbf_ms,
        chip_mttr_ms: mttr_ms,
        link_rate_per_ms: link_rate,
        shed_fraction: shed,
        ..FaultSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `RetryPolicy::backoff_ns` is a pure function of the attempt
    /// number: identical across calls, non-decreasing in the attempt,
    /// and clamped to the configured cap. The whole retry schedule is
    /// therefore deterministic — no RNG state leaks into it.
    #[test]
    fn backoff_schedule_is_pure_monotone_and_capped(
        base_us in 1.0f64..2_000.0,
        cap_mult in 1.0f64..64.0,
        max_retries in 0u32..9,
    ) {
        let policy = RetryPolicy {
            max_retries,
            backoff_base_us: base_us,
            backoff_cap_us: base_us * cap_mult,
            timeout_ms: 24.0,
        };
        let cap_ns = (policy.backoff_cap_us * 1e3).round() as u64;
        let mut prev = 0u64;
        for attempt in 1..=max_retries.max(1) {
            let b = policy.backoff_ns(attempt);
            prop_assert_eq!(b, policy.backoff_ns(attempt), "backoff is not pure");
            prop_assert!(b >= prev, "backoff shrank: {} < {}", b, prev);
            prop_assert!(b <= cap_ns, "backoff {} above cap {}", b, cap_ns);
            prev = b;
        }
    }

    /// Every request injected into the resilient fleet is accounted
    /// for exactly once — completed, rejected, or timed out — under
    /// arbitrary generated fault plans.
    #[test]
    fn request_conservation_under_random_fault_plans(
        seed in 0u64..1_000_000,
        mtbf_ms in 0.5f64..60.0,
        mttr_ms in 0.5f64..12.0,
        link_rate in 0.0f64..2.0,
        shed in 0.0f64..0.9,
    ) {
        let spec = short_spec();
        let fspec = arb_fault_spec(mtbf_ms, mttr_ms, link_rate, shed);
        let horizon_ns = (spec.horizon_ms * 1e6).round() as u64;
        let plan = FaultPlan::generate(&fspec, spec.fleet, 64, horizon_ns, seed);
        let params = ResilienceParams::from_spec(&fspec, plan, 50_000);
        let out = simulate_resilient_serving(&spec, &params, &SERVICE_NS, seed, 1);
        for lp in &out.per_load {
            prop_assert_eq!(
                lp.offered,
                lp.completed + lp.rejected + lp.timed_out,
                "conservation broke at load {}: {} offered vs {} + {} + {}",
                lp.load, lp.offered, lp.completed, lp.rejected, lp.timed_out
            );
            prop_assert_eq!(lp.completed as usize, lp.latencies_ns.len());
        }
    }

    /// The resilient event loop is byte-identical at any thread count:
    /// the whole outcome (counters, percentiles, every latency sample)
    /// must match between 1, 3 and 8 worker threads.
    #[test]
    fn resilient_outcome_is_thread_count_independent(
        seed in 0u64..1_000_000,
        mtbf_ms in 0.5f64..40.0,
    ) {
        let mut spec = short_spec();
        spec.loads = vec![0.7, 1.3];
        let fspec = arb_fault_spec(mtbf_ms, 4.0, 0.5, 0.25);
        let horizon_ns = (spec.horizon_ms * 1e6).round() as u64;
        let plan = FaultPlan::generate(&fspec, spec.fleet, 64, horizon_ns, seed);
        let params = ResilienceParams::from_spec(&fspec, plan, 50_000);
        let one = simulate_resilient_serving(&spec, &params, &SERVICE_NS, seed, 1);
        let three = simulate_resilient_serving(&spec, &params, &SERVICE_NS, seed, 3);
        let eight = simulate_resilient_serving(&spec, &params, &SERVICE_NS, seed, 8);
        prop_assert_eq!(&one, &three);
        prop_assert_eq!(&one, &eight);
    }

    /// `FaultPlan::generate` itself is deterministic in its seed and
    /// shape-stable: windows are ordered, non-empty intervals stay
    /// inside the padded horizon bookkeeping, and chips stay in-fleet.
    #[test]
    fn generated_plans_are_seeded_and_well_formed(
        seed in 0u64..1_000_000,
        fleet in 2usize..9,
        mtbf_ms in 0.5f64..30.0,
    ) {
        let fspec = arb_fault_spec(mtbf_ms, 2.0, 1.0, 0.2);
        let plan = FaultPlan::generate(&fspec, fleet, 64, 12_000_000, seed);
        prop_assert_eq!(&plan, &FaultPlan::generate(&fspec, fleet, 64, 12_000_000, seed));
        for f in &plan.chip_faults {
            prop_assert!((f.chip as usize) < fleet);
            prop_assert!(f.down_ns < f.up_ns);
        }
        for w in &plan.link_faults {
            prop_assert!((w.link as usize) < 64);
            prop_assert!(w.start_ns < w.end_ns);
        }
        let downs: Vec<u64> = plan.chip_faults.iter().map(|f| f.down_ns).collect();
        prop_assert!(downs.windows(2).all(|p| p[0] <= p[1]), "chip faults unsorted");
    }
}

//! Allocator-traffic regression pin for a warm `SweepScratch` re-run of
//! a fig3 cell (one architecture × one Table II workload at the
//! weight-stationary mode — the unit the fig3/fig5 sweeps evaluate
//! 80–160×).
//!
//! The DES inner loop itself is pinned at literally zero steady-state
//! allocations in `netsim/tests/path_alloc.rs`; at the cell level the
//! mapping layer still allocates per call (`BTreeMap` transfer merging,
//! analytical-model link tables, report strings), so here we pin the
//! two properties scratch reuse actually guarantees: warm re-runs reach
//! a deterministic steady state (no creeping growth), and that steady
//! state stays well below a fresh-scratch evaluation of the same cell.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dnn::{table2_workload, Dataflow};
use pim_core::{NoiArch, Platform25D, SweepScratch, SystemConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_fig3_cell_rerun_reaches_a_bounded_alloc_steady_state() {
    let cfg = SystemConfig::datacenter_25d();
    let platform = Platform25D::new(NoiArch::Kite, &cfg).expect("paper architectures build");
    let wl = table2_workload("WL1").unwrap();
    let modes = [Dataflow::WeightStationary];
    // Hoist what the sweep hoists: graphs and the churn mapping are
    // computed once per cell, re-used across dataflow modes.
    let graphs = Platform25D::task_graphs(&wl);
    let outcome = platform.churn_outcome_from_graphs(&graphs);
    let cost = |scratch: &mut SweepScratch| {
        platform.cost_churn_outcome_scratch(&wl, &graphs, &outcome, modes[0], scratch)
    };

    // Fresh-scratch cost of the cell (the pre-pool behavior).
    let mut fresh_scratch = SweepScratch::new();
    let before = alloc_count();
    let fresh_rep = cost(&mut fresh_scratch);
    let fresh = alloc_count() - before;

    // Warm re-runs on the now-hot scratch. Two passes to settle bucket
    // capacities (see path_alloc.rs), then two measured passes.
    cost(&mut fresh_scratch);
    cost(&mut fresh_scratch);
    let before = alloc_count();
    let warm_rep = cost(&mut fresh_scratch);
    let warm_a = alloc_count() - before;
    let before = alloc_count();
    assert_eq!(cost(&mut fresh_scratch), warm_rep);
    let warm_b = alloc_count() - before;

    assert_eq!(warm_rep, fresh_rep, "reuse must not change the report");
    assert_eq!(
        warm_a, warm_b,
        "warm re-runs must hit a deterministic allocation steady state"
    );
    assert!(
        warm_a * 2 < fresh,
        "a warm scratch must shed over half the cell's allocator \
         traffic (warm {warm_a} vs fresh {fresh})"
    );
}

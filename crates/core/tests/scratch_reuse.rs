//! `SweepScratch` reuse correctness: a sweep cell evaluated on dirty
//! scratch — after arbitrary other architectures, workloads, and
//! dataflows, including the serving-simulator-free `Searched` search
//! path — must be bit-identical to a fresh-scratch evaluation. The
//! scratch pool is unkeyed (see `core/src/scratch.rs`), so these tests
//! are what make that legal.

use dnn::{table2_workload, Dataflow, MixEntry, Workload};
use pim_core::{NoiArch, Platform25D, SweepScratch, SystemConfig};

fn platform(arch: NoiArch) -> Platform25D {
    Platform25D::new(arch, &SystemConfig::datacenter_25d()).expect("paper architectures build")
}

/// A tiny two-task mix, cheap enough to dirty the scratch with a
/// different workload shape (short task_flows list, small arena).
fn tiny_workload() -> Workload {
    Workload {
        name: "tiny".into(),
        mix: vec![
            MixEntry {
                count: 1,
                model_index: 0,
            },
            MixEntry {
                count: 1,
                model_index: 6,
            },
        ],
        paper_total_params_b: 0.0,
    }
}

#[test]
fn dirty_scratch_matches_fresh_across_archs_and_workloads() {
    let siam = platform(NoiArch::Siam);
    let kite = platform(NoiArch::Kite);
    let wl1 = table2_workload("WL1").unwrap();
    let wl4 = table2_workload("WL4").unwrap();
    let modes = [Dataflow::WeightStationary, Dataflow::OutputStationary];

    // Fresh-scratch ground truth for the cell under test.
    let expect = siam.run_workload_dataflows_scratch(&wl1, &modes, &mut SweepScratch::new());

    // Dirty one scratch with a different arch, workload, and mode mix —
    // larger and smaller shapes both, so stale lengths in every
    // direction — then evaluate the cell on it.
    let mut scratch = SweepScratch::new();
    kite.run_workload_dataflows_scratch(&wl4, &Dataflow::all(), &mut scratch);
    siam.run_workload_dataflows_scratch(&tiny_workload(), &modes, &mut scratch);
    let dirty = siam.run_workload_dataflows_scratch(&wl1, &modes, &mut scratch);
    assert_eq!(dirty, expect, "dirty scratch must change nothing");

    // And the scratch is still clean for the *other* platform.
    let kite_expect = kite.run_workload_dataflows_scratch(&wl4, &modes, &mut SweepScratch::new());
    let kite_dirty = kite.run_workload_dataflows_scratch(&wl4, &modes, &mut scratch);
    assert_eq!(kite_dirty, kite_expect);
}

#[test]
fn dirty_scratch_matches_fresh_under_searched() {
    // `--dataflow searched` runs the beam search plus all hand presets
    // through the same scratch; the resolved mapping and its report must
    // not depend on scratch history.
    let p = platform(NoiArch::Floret { lambda: 6 });
    let wl = tiny_workload();

    let (fresh_res, fresh_rep) = {
        let mut scratch = SweepScratch::new();
        let graphs = Platform25D::task_graphs(&wl);
        let outcome = p.churn_outcome_from_graphs(&graphs);
        p.resolve_searched_scratch(&wl, &graphs, &outcome, &mut scratch)
    };

    let mut scratch = SweepScratch::new();
    let wl3 = table2_workload("WL3").unwrap();
    p.run_workload_dataflows_scratch(&wl3, &[Dataflow::WeightStationary], &mut scratch);
    let graphs = Platform25D::task_graphs(&wl);
    let outcome = p.churn_outcome_from_graphs(&graphs);
    let (dirty_res, dirty_rep) = p.resolve_searched_scratch(&wl, &graphs, &outcome, &mut scratch);

    assert_eq!(
        dirty_res.fingerprint, fresh_res.fingerprint,
        "searched must resolve to the same mapping on dirty scratch"
    );
    assert_eq!(dirty_rep, fresh_rep);

    // Costing a resolution through dirty scratch is also history-free.
    let again =
        p.cost_searched_resolution_scratch(&wl, &graphs, &outcome, &fresh_res, &mut scratch);
    assert_eq!(again, fresh_rep);
}

//! Deterministic fault-injection model for the resilience layer.
//!
//! A [`FaultSpec`] describes failure *statistics* — per-chip MTBF/MTTR,
//! transient NoI link blackout rate and duration, optional periodic
//! thermal-throttle windows, plus the serving-side [`RetryPolicy`] and
//! degraded-mode shed fraction. [`FaultPlan::generate`] expands a spec
//! into a concrete, fully ordered event timeline once, single-threaded,
//! from per-component seeded ChaCha8 streams — so every consumer (the
//! resilient serving loop, the DES link-fault windows, the mapping
//! churn path) replays the *same* faults and the outcome is bit-identical
//! at any worker-thread count.
//!
//! The spec is exposed on [`crate::Scenario`] as a typed `faults` block
//! and at the CLI as `--set faults.<key> <value>` overrides, validated
//! by the typed [`FaultError`] (mirroring [`crate::ConfigError`]).

use std::fmt;

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Bounded exponential backoff plus a per-request timeout for requests
/// lost to a chip failure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retry attempts after the initial dispatch; a request lost more
    /// than this many times is dropped (counted as timed out).
    pub max_retries: u32,
    /// First-retry backoff, microseconds; attempt `k` waits
    /// `base * 2^(k-1)`, capped.
    pub backoff_base_us: f64,
    /// Backoff ceiling, microseconds.
    pub backoff_cap_us: f64,
    /// End-to-end deadline per request, milliseconds, measured from the
    /// original arrival; a retry that cannot be scheduled before the
    /// deadline times out instead.
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 200.0,
            backoff_cap_us: 3_200.0,
            timeout_ms: 24.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry attempt `attempt` (1-based), nanoseconds:
    /// `base * 2^(attempt-1)`, capped. A pure function of the policy and
    /// the attempt index — no randomness, so the schedule is identical
    /// across seeds and thread counts.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let exp = i32::try_from(attempt.saturating_sub(1).min(62)).expect("capped at 62");
        let factor = 2f64.powi(exp);
        let us = (self.backoff_base_us * factor).min(self.backoff_cap_us);
        (us * 1e3).round() as u64
    }

    /// The per-request deadline, nanoseconds after the original arrival.
    pub fn timeout_ns(&self) -> u64 {
        (self.timeout_ms * 1e6).round() as u64
    }
}

/// Statistical fault model of the fleet and its interconnect; expanded
/// into a concrete timeline by [`FaultPlan::generate`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Mean time between failures per chip, milliseconds; `0` disables
    /// chip faults entirely.
    pub chip_mtbf_ms: f64,
    /// Mean time to repair a failed chip, milliseconds.
    pub chip_mttr_ms: f64,
    /// Expected transient NoI link blackouts per millisecond across the
    /// whole fabric; `0` disables link faults.
    pub link_rate_per_ms: f64,
    /// Duration of one link blackout, microseconds.
    pub link_duration_us: f64,
    /// Thermal-throttle window period per chip, milliseconds; `0`
    /// disables throttling.
    pub throttle_period_ms: f64,
    /// Fraction of each period spent throttled, in `[0, 1)`.
    pub throttle_duty: f64,
    /// Service-time multiplier while throttled (≥ 1).
    pub throttle_slowdown: f64,
    /// Degraded-mode admission shedding: while any chip is down, each
    /// chip's admission queue depth shrinks by this fraction (`[0, 1)`),
    /// turning excess load away early instead of queueing it into
    /// timeouts.
    pub shed_fraction: f64,
    /// Retry/backoff/timeout policy for requests lost to chip failures.
    pub retry: RetryPolicy,
}

impl Default for FaultSpec {
    /// The reference fault climate pinned by the `resilience` golden:
    /// chips fail a couple of times over the default 60 ms serving
    /// horizon and repair quickly, links blackout transiently, and a
    /// mild periodic throttle stretches service inside its windows.
    fn default() -> Self {
        FaultSpec {
            chip_mtbf_ms: 40.0,
            chip_mttr_ms: 8.0,
            link_rate_per_ms: 0.25,
            link_duration_us: 40.0,
            throttle_period_ms: 20.0,
            throttle_duty: 0.2,
            throttle_slowdown: 1.5,
            shed_fraction: 0.25,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultSpec {
    /// The spec with every fault *rate* scaled by `scale`: chip failures
    /// `scale`× as frequent (MTBF divided), link blackouts `scale`× as
    /// frequent, throttle duty `scale`× as wide (capped below a full
    /// period). `scale = 0` is the healthy fleet — no chip, link or
    /// throttle events at all.
    pub fn scaled(&self, scale: f64) -> FaultSpec {
        let mut s = self.clone();
        if scale <= 0.0 {
            s.chip_mtbf_ms = 0.0;
            s.link_rate_per_ms = 0.0;
            s.throttle_period_ms = 0.0;
        } else {
            s.chip_mtbf_ms /= scale;
            s.link_rate_per_ms *= scale;
            s.throttle_duty = (s.throttle_duty * scale).min(0.9);
        }
        s
    }

    /// Checks the spec for structural validity.
    ///
    /// # Errors
    ///
    /// The first violated constraint as a typed [`FaultError`].
    pub fn validate(&self) -> Result<(), FaultError> {
        fn nonneg(field: &'static str, v: f64) -> Result<(), FaultError> {
            if v < 0.0 || v.is_nan() {
                return Err(FaultError::NegativeField { field, value: v });
            }
            Ok(())
        }
        nonneg("chip_mtbf_ms", self.chip_mtbf_ms)?;
        nonneg("link_rate_per_ms", self.link_rate_per_ms)?;
        nonneg("throttle_period_ms", self.throttle_period_ms)?;
        if self.chip_mtbf_ms > 0.0 && (self.chip_mttr_ms <= 0.0 || self.chip_mttr_ms.is_nan()) {
            return Err(FaultError::NonPositiveField {
                field: "chip_mttr_ms",
                value: self.chip_mttr_ms,
            });
        }
        if self.link_rate_per_ms > 0.0
            && (self.link_duration_us <= 0.0 || self.link_duration_us.is_nan())
        {
            return Err(FaultError::NonPositiveField {
                field: "link_duration_us",
                value: self.link_duration_us,
            });
        }
        if !(0.0..1.0).contains(&self.throttle_duty) {
            return Err(FaultError::FractionField {
                field: "throttle_duty",
                value: self.throttle_duty,
            });
        }
        if self.throttle_slowdown < 1.0 || self.throttle_slowdown.is_nan() {
            return Err(FaultError::SlowdownBelowOne(self.throttle_slowdown));
        }
        if !(0.0..1.0).contains(&self.shed_fraction) {
            return Err(FaultError::FractionField {
                field: "shed_fraction",
                value: self.shed_fraction,
            });
        }
        if self.retry.backoff_base_us < 0.0 || self.retry.backoff_base_us.is_nan() {
            return Err(FaultError::NegativeField {
                field: "backoff_base_us",
                value: self.retry.backoff_base_us,
            });
        }
        if self.retry.backoff_cap_us < self.retry.backoff_base_us
            || self.retry.backoff_cap_us.is_nan()
        {
            return Err(FaultError::CapBelowBase {
                base: self.retry.backoff_base_us,
                cap: self.retry.backoff_cap_us,
            });
        }
        if self.retry.timeout_ms <= 0.0 || self.retry.timeout_ms.is_nan() {
            return Err(FaultError::NonPositiveField {
                field: "timeout_ms",
                value: self.retry.timeout_ms,
            });
        }
        Ok(())
    }

    /// Applies one `--set faults.<key> <value>` override (key given
    /// without the `faults.` prefix).
    ///
    /// # Errors
    ///
    /// [`FaultError::UnknownKey`] for an unrecognized key,
    /// [`FaultError::InvalidValue`] when the value fails to parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), FaultError> {
        fn f64_of(key: &str, value: &str) -> Result<f64, FaultError> {
            value.parse().map_err(|_| FaultError::InvalidValue {
                key: format!("faults.{key}"),
                value: value.to_string(),
            })
        }
        match key {
            "chip_mtbf_ms" => self.chip_mtbf_ms = f64_of(key, value)?,
            "chip_mttr_ms" => self.chip_mttr_ms = f64_of(key, value)?,
            "link_rate_per_ms" => self.link_rate_per_ms = f64_of(key, value)?,
            "link_duration_us" => self.link_duration_us = f64_of(key, value)?,
            "throttle_period_ms" => self.throttle_period_ms = f64_of(key, value)?,
            "throttle_duty" => self.throttle_duty = f64_of(key, value)?,
            "throttle_slowdown" => self.throttle_slowdown = f64_of(key, value)?,
            "shed_fraction" => self.shed_fraction = f64_of(key, value)?,
            "max_retries" => {
                self.retry.max_retries = value.parse().map_err(|_| FaultError::InvalidValue {
                    key: "faults.max_retries".to_string(),
                    value: value.to_string(),
                })?
            }
            "backoff_base_us" => self.retry.backoff_base_us = f64_of(key, value)?,
            "backoff_cap_us" => self.retry.backoff_cap_us = f64_of(key, value)?,
            "timeout_ms" => self.retry.timeout_ms = f64_of(key, value)?,
            _ => return Err(FaultError::UnknownKey(format!("faults.{key}"))),
        }
        Ok(())
    }
}

/// Why a [`FaultSpec`] (or a `faults.*` override) was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// The `faults.*` override key is not recognized.
    UnknownKey(String),
    /// The override value failed to parse.
    InvalidValue {
        /// The full `faults.*` key.
        key: String,
        /// The unparseable value.
        value: String,
    },
    /// The field must be finite and nonnegative.
    NegativeField {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The field must be finite and strictly positive (given the
    /// feature it gates is enabled).
    NonPositiveField {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The field must be a fraction in `[0, 1)`.
    FractionField {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `backoff_cap_us` must be at least `backoff_base_us`.
    CapBelowBase {
        /// The configured base.
        base: f64,
        /// The offending cap.
        cap: f64,
    },
    /// `throttle_slowdown` must be at least 1.
    SlowdownBelowOne(f64),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownKey(key) => write!(f, "unknown fault key `{key}`"),
            FaultError::InvalidValue { key, value } => {
                write!(f, "invalid value `{value}` for `{key}`")
            }
            FaultError::NegativeField { field, value } => {
                write!(f, "{field} must be nonnegative, got {value}")
            }
            FaultError::NonPositiveField { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            FaultError::FractionField { field, value } => {
                write!(f, "{field} must be in [0, 1), got {value}")
            }
            FaultError::CapBelowBase { base, cap } => {
                write!(
                    f,
                    "backoff_cap_us {cap} must be at least backoff_base_us {base}"
                )
            }
            FaultError::SlowdownBelowOne(v) => {
                write!(f, "throttle_slowdown must be at least 1, got {v}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// One chip outage: the chip is down in `[down_ns, up_ns)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipFault {
    /// Fleet chip index.
    pub chip: u32,
    /// Failure instant, ns.
    pub down_ns: u64,
    /// Repair instant, ns (may exceed the horizon: a permanent loss for
    /// that run).
    pub up_ns: u64,
}

/// One transient NoI link blackout: the link drops header handshakes in
/// `[start_ns, end_ns)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFaultWindow {
    /// Dense link id in the NoI topology.
    pub link: u32,
    /// Blackout start, ns.
    pub start_ns: u64,
    /// Blackout end, ns.
    pub end_ns: u64,
}

/// One thermal-throttle window: batches launched on `chip` inside
/// `[start_ns, end_ns)` run `throttle_slowdown`× slower.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleWindow {
    /// Fleet chip index.
    pub chip: u32,
    /// Window start, ns.
    pub start_ns: u64,
    /// Window end, ns.
    pub end_ns: u64,
}

/// A concrete, fully ordered fault timeline expanded from a
/// [`FaultSpec`] — the single source of truth every layer (serving,
/// DES, mapping) replays.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Chip outages, ascending by `(down_ns, chip)`; per-chip outages
    /// never overlap.
    pub chip_faults: Vec<ChipFault>,
    /// Transient link blackouts, ascending by `(start_ns, link)`.
    pub link_faults: Vec<LinkFaultWindow>,
    /// Thermal-throttle windows, ascending by `(start_ns, chip)`;
    /// per-chip windows never overlap.
    pub throttles: Vec<ThrottleWindow>,
}

/// Seed-stream tweak for per-chip failure processes.
const CHIP_STREAM: u64 = 0xFA11_ED00;
/// Seed-stream tweak for the fabric-wide link blackout process.
const LINK_STREAM: u64 = 0x11AB_FA17;

fn sample_exp(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
    -mean * (1.0 - u).ln()
}

impl FaultPlan {
    /// A plan with no faults (the healthy fleet).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.chip_faults.is_empty() && self.link_faults.is_empty() && self.throttles.is_empty()
    }

    /// Expands `spec` into a concrete timeline over `[0, horizon_ns)`
    /// for a fleet of `fleet` chips and an NoI of `n_links` links.
    ///
    /// Deterministic and thread-count independent by construction: each
    /// chip's failure process and the fabric link process draw from
    /// their own `ChaCha8` streams derived from `seed`, generated here
    /// once, single-threaded. Chip failures are an MTBF/MTTR renewal
    /// process; link blackouts arrive Poisson across the fabric and pick
    /// a victim link per event; throttle windows are periodic with a
    /// per-chip phase stagger.
    pub fn generate(
        spec: &FaultSpec,
        fleet: usize,
        n_links: usize,
        horizon_ns: u64,
        seed: u64,
    ) -> FaultPlan {
        let mut plan = FaultPlan::empty();
        let horizon = horizon_ns as f64;

        if spec.chip_mtbf_ms > 0.0 && fleet > 1 {
            let mtbf_ns = spec.chip_mtbf_ms * 1e6;
            let mttr_ns = spec.chip_mttr_ms * 1e6;
            for chip in 0..fleet {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    seed ^ CHIP_STREAM ^ (chip as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut t = sample_exp(&mut rng, mtbf_ns);
                while t < horizon {
                    let down_ns = t as u64;
                    let repair = sample_exp(&mut rng, mttr_ns).max(1.0);
                    let up_ns = down_ns + repair as u64 + 1;
                    plan.chip_faults.push(ChipFault {
                        chip: topology::narrow::u32_idx(chip),
                        down_ns,
                        up_ns,
                    });
                    t = up_ns as f64 + sample_exp(&mut rng, mtbf_ns);
                }
            }
            plan.chip_faults.sort_by_key(|f| (f.down_ns, f.chip));
        }

        if spec.link_rate_per_ms > 0.0 && n_links > 0 {
            let mean_gap_ns = 1e6 / spec.link_rate_per_ms;
            let dur_ns = (spec.link_duration_us * 1e3).round().max(1.0) as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ LINK_STREAM);
            let mut t = sample_exp(&mut rng, mean_gap_ns);
            while t < horizon {
                let start_ns = t as u64;
                let link = topology::narrow::u32_idx(rng.random::<u64>() as usize % n_links);
                plan.link_faults.push(LinkFaultWindow {
                    link,
                    start_ns,
                    end_ns: start_ns + dur_ns,
                });
                t += sample_exp(&mut rng, mean_gap_ns);
            }
            plan.link_faults.sort_by_key(|f| (f.start_ns, f.link));
        }

        if spec.throttle_period_ms > 0.0 && spec.throttle_duty > 0.0 {
            let period_ns = (spec.throttle_period_ms * 1e6).round().max(1.0) as u64;
            let width_ns = ((period_ns as f64) * spec.throttle_duty).round() as u64;
            if width_ns > 0 {
                for chip in 0..fleet {
                    // Phase-stagger chips so the fleet never throttles in
                    // lockstep (deterministic, no randomness needed).
                    let phase = period_ns * chip as u64 / fleet.max(1) as u64;
                    let mut start = phase;
                    while start < horizon_ns {
                        plan.throttles.push(ThrottleWindow {
                            chip: topology::narrow::u32_idx(chip),
                            start_ns: start,
                            end_ns: start + width_ns,
                        });
                        start += period_ns;
                    }
                }
                plan.throttles.sort_by_key(|w| (w.start_ns, w.chip));
            }
        }

        plan
    }

    /// Fleet chips that fail at least once, ascending and deduplicated.
    pub fn distinct_down_chips(&self) -> Vec<u32> {
        let mut chips: Vec<u32> = self.chip_faults.iter().map(|f| f.chip).collect();
        chips.sort_unstable();
        chips.dedup();
        chips
    }

    /// Chips still down at `horizon_ns` (an outage that never repairs
    /// within the run — the permanent-loss set handed to the mapping
    /// churn path).
    pub fn permanent_down_chips(&self, horizon_ns: u64) -> Vec<u32> {
        let mut chips: Vec<u32> = self
            .chip_faults
            .iter()
            .filter(|f| f.up_ns >= horizon_ns)
            .map(|f| f.chip)
            .collect();
        chips.sort_unstable();
        chips.dedup();
        chips
    }

    /// The link blackouts as `(link, start, end)` tuples for
    /// [`netsim::LinkFaults::from_link_windows`], interpreting
    /// nanoseconds as DES cycles 1:1 (the 1 GHz convention shared with
    /// the serving horizon).
    pub fn link_windows(&self) -> Vec<(topology::LinkId, u64, u64)> {
        self.link_faults
            .iter()
            .map(|f| (topology::LinkId(f.link), f.start_ns, f.end_ns))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        assert_eq!(FaultSpec::default().validate(), Ok(()));
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(1), 200_000);
        assert_eq!(p.backoff_ns(2), 400_000);
        assert_eq!(p.backoff_ns(3), 800_000);
        // Capped at backoff_cap_us = 3200 µs from attempt 5 on.
        assert_eq!(p.backoff_ns(5), 3_200_000);
        assert_eq!(p.backoff_ns(40), 3_200_000);
        // Degenerate attempt 0 behaves like attempt 1.
        assert_eq!(p.backoff_ns(0), p.backoff_ns(1));
    }

    #[test]
    fn generation_is_reproducible_and_ordered() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(&spec, 4, 180, 60_000_000, 0xBEEF);
        let b = FaultPlan::generate(&spec, 4, 180, 60_000_000, 0xBEEF);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .chip_faults
            .windows(2)
            .all(|w| (w[0].down_ns, w[0].chip) <= (w[1].down_ns, w[1].chip)));
        assert!(a
            .link_faults
            .windows(2)
            .all(|w| (w[0].start_ns, w[0].link) <= (w[1].start_ns, w[1].link)));
        for f in &a.chip_faults {
            assert!(f.up_ns > f.down_ns);
            assert!(f.down_ns < 60_000_000);
        }
        let c = FaultPlan::generate(&spec, 4, 180, 60_000_000, 0xBEF0);
        assert_ne!(a, c, "a different seed must reshuffle the timeline");
    }

    #[test]
    fn per_chip_outages_never_overlap() {
        let spec = FaultSpec {
            chip_mtbf_ms: 5.0,
            chip_mttr_ms: 3.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(&spec, 3, 0, 200_000_000, 7);
        for chip in 0..3u32 {
            let mine: Vec<&ChipFault> =
                plan.chip_faults.iter().filter(|f| f.chip == chip).collect();
            for w in mine.windows(2) {
                assert!(w[0].up_ns <= w[1].down_ns, "overlapping outages on {chip}");
            }
        }
    }

    #[test]
    fn zero_scale_is_the_healthy_fleet() {
        let spec = FaultSpec::default().scaled(0.0);
        let plan = FaultPlan::generate(&spec, 4, 180, 60_000_000, 0xBEEF);
        assert!(plan.is_empty());
        // Scaling up makes chip faults at least as frequent.
        let one = FaultPlan::generate(&FaultSpec::default().scaled(1.0), 4, 180, 60_000_000, 5);
        let four = FaultPlan::generate(&FaultSpec::default().scaled(4.0), 4, 180, 60_000_000, 5);
        assert!(four.chip_faults.len() >= one.chip_faults.len());
        assert!(four.link_faults.len() >= one.link_faults.len());
    }

    #[test]
    fn single_chip_fleets_never_lose_their_only_chip() {
        let plan = FaultPlan::generate(&FaultSpec::default(), 1, 180, 60_000_000, 9);
        assert!(plan.chip_faults.is_empty());
    }

    #[test]
    fn permanent_losses_are_the_unrepaired_tail() {
        let plan = FaultPlan {
            chip_faults: vec![
                ChipFault {
                    chip: 0,
                    down_ns: 10,
                    up_ns: 20,
                },
                ChipFault {
                    chip: 1,
                    down_ns: 50,
                    up_ns: 2_000,
                },
            ],
            ..FaultPlan::empty()
        };
        assert_eq!(plan.distinct_down_chips(), vec![0, 1]);
        assert_eq!(plan.permanent_down_chips(1_000), vec![1]);
        assert_eq!(plan.permanent_down_chips(5_000), Vec::<u32>::new());
    }

    #[test]
    fn overrides_parse_and_reject() {
        let mut s = FaultSpec::default();
        s.set("chip_mtbf_ms", "12.5").unwrap();
        assert_eq!(s.chip_mtbf_ms, 12.5);
        s.set("max_retries", "7").unwrap();
        assert_eq!(s.retry.max_retries, 7);
        assert_eq!(
            s.set("chip_mtbf_ms", "fast"),
            Err(FaultError::InvalidValue {
                key: "faults.chip_mtbf_ms".to_string(),
                value: "fast".to_string()
            })
        );
        assert_eq!(
            s.set("nope", "1"),
            Err(FaultError::UnknownKey("faults.nope".to_string()))
        );
    }

    #[test]
    fn validation_rejects_each_degenerate_field() {
        let bad = |f: fn(&mut FaultSpec)| {
            let mut s = FaultSpec::default();
            f(&mut s);
            s.validate().unwrap_err()
        };
        assert!(matches!(
            bad(|s| s.chip_mtbf_ms = -1.0),
            FaultError::NegativeField {
                field: "chip_mtbf_ms",
                ..
            }
        ));
        assert!(matches!(
            bad(|s| s.chip_mttr_ms = 0.0),
            FaultError::NonPositiveField {
                field: "chip_mttr_ms",
                ..
            }
        ));
        assert!(matches!(
            bad(|s| s.link_duration_us = 0.0),
            FaultError::NonPositiveField {
                field: "link_duration_us",
                ..
            }
        ));
        assert!(matches!(
            bad(|s| s.throttle_duty = 1.0),
            FaultError::FractionField {
                field: "throttle_duty",
                ..
            }
        ));
        assert!(matches!(
            bad(|s| s.shed_fraction = -0.1),
            FaultError::FractionField {
                field: "shed_fraction",
                ..
            }
        ));
        assert!(matches!(
            bad(|s| s.throttle_slowdown = 0.5),
            FaultError::SlowdownBelowOne(_)
        ));
        assert!(matches!(
            bad(|s| s.retry.backoff_cap_us = 1.0),
            FaultError::CapBelowBase { .. }
        ));
        assert!(matches!(
            bad(|s| s.retry.timeout_ms = 0.0),
            FaultError::NonPositiveField {
                field: "timeout_ms",
                ..
            }
        ));
        // MTTR is only constrained while chip faults are enabled.
        let s = FaultSpec {
            chip_mtbf_ms: 0.0,
            chip_mttr_ms: 0.0,
            ..FaultSpec::default()
        };
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        // The vendored serde_json deserializes to a Value tree; the
        // round-trip contract is text → tree → identical text.
        let plan = FaultPlan::generate(&FaultSpec::default(), 3, 50, 60_000_000, 0xCAFE);
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("\"chip_faults\""), "{json}");
        assert!(json.contains("\"link_faults\""), "{json}");
        assert!(json.contains("\"throttles\""), "{json}");
        assert_eq!(serde_json::round_trip(&json).unwrap(), json);
        let json = serde_json::to_string(&FaultSpec::default()).unwrap();
        assert!(json.contains("\"chip_mtbf_ms\""), "{json}");
        assert!(json.contains("\"max_retries\""), "{json}");
        assert_eq!(serde_json::round_trip(&json).unwrap(), json);
    }
}

//! Per-cell evaluation scratch, pooled across sweep cells.
//!
//! Every (architecture, workload, dataflow) cell evaluation needs the
//! same family of working buffers: per-task transfer lists, the flow
//! concatenation of a resident-set snapshot, the sampled traffic fed to
//! the DES, and the simulator's own arena ([`netsim::SimScratch`]).
//! Allocating them per cell made the fig3/dataflows/mapping_search
//! sweeps pay the same alloc/free churn 80–160×. A [`SweepScratch`]
//! owns all of them; [`ScratchPool`] (owned by
//! [`crate::sweep::SweepRunner`]) hands scratches to whichever worker
//! thread asks next.
//!
//! # Keying rules
//!
//! The pool is deliberately unkeyed: a scratch carries **capacity only**,
//! never results. Every buffer is cleared (or fully overwritten) by the
//! next evaluation before it is read, so a scratch that last ran a
//! different architecture, workload, or dataflow — or the serving
//! simulator's traffic — produces bit-identical reports to a fresh one.
//! That invariant is pinned by the dirty-scratch equivalence tests in
//! `crates/core/tests/scratch_reuse.rs`; anything added to
//! [`SweepScratch`] must keep it.

use std::sync::Mutex;

use mapper::Transfer;
use netsim::{Flow, SimScratch};

/// Sentinel in [`SweepScratch::placement_slot`] for "task not placed".
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Reusable buffers for one cell evaluation (see the module docs).
pub struct SweepScratch {
    /// DES arena: packet SoA, wait queues, calendar, report buffers.
    pub(crate) sim: SimScratch,
    /// Transfer expansion output of one task.
    pub(crate) transfers: Vec<Transfer>,
    /// Per-task flow lists of the cell under evaluation.
    pub(crate) task_flows: Vec<Vec<Flow>>,
    /// Retired inner vectors of `task_flows`, kept for their capacity.
    pub(crate) spare_flows: Vec<Vec<Flow>>,
    /// Task id → index into `task_flows` ([`NO_SLOT`] when unmapped).
    pub(crate) placement_slot: Vec<u32>,
    /// Concatenated flows of one resident-set snapshot.
    pub(crate) snapshot_flows: Vec<Flow>,
    /// Sampled traffic handed to the DES.
    pub(crate) sampled_flows: Vec<Flow>,
}

impl SweepScratch {
    /// An empty scratch; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        SweepScratch {
            sim: SimScratch::new(),
            transfers: Vec::new(),
            task_flows: Vec::new(),
            spare_flows: Vec::new(),
            placement_slot: Vec::new(),
            snapshot_flows: Vec::new(),
            sampled_flows: Vec::new(),
        }
    }

    /// Clears every buffer while keeping capacity. The pool deliberately
    /// does **not** call this on `put` — the dirty-scratch equivalence
    /// tests pin that a *dirty* scratch already behaves like a fresh one
    /// — but the `scratch-reset` lint requires the full-coverage reset
    /// to exist so any new field must be added here, where the
    /// clear-before-read obligation is stated.
    pub fn reset(&mut self) {
        self.sim.reset();
        self.transfers.clear();
        self.spare_flows
            .extend(self.task_flows.drain(..).map(|mut v| {
                v.clear();
                v
            }));
        self.placement_slot.clear();
        self.snapshot_flows.clear();
        self.sampled_flows.clear();
    }
}

impl Default for SweepScratch {
    fn default() -> Self {
        SweepScratch::new()
    }
}

impl std::fmt::Debug for SweepScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepScratch").finish_non_exhaustive()
    }
}

/// A LIFO pool of [`SweepScratch`]es shared by the sweep workers. LIFO
/// keeps the warmest (largest-capacity) scratch in circulation, so a
/// steady-state sweep stops allocating after the first few cells.
#[derive(Default)]
pub(crate) struct ScratchPool {
    pool: Mutex<Vec<SweepScratch>>,
}

impl ScratchPool {
    /// Checks a scratch out (a fresh one when the pool is empty).
    pub(crate) fn take(&self) -> SweepScratch {
        self.pool
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch for the next worker.
    pub(crate) fn put(&self, scratch: SweepScratch) {
        self.pool.lock().expect("scratch pool lock").push(scratch);
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.pool.lock().map(|p| p.len()).unwrap_or(0);
        f.debug_struct("ScratchPool").field("pooled", &n).finish()
    }
}

//! Section IV: heterogeneous chiplet integration for end-to-end
//! Transformers.
//!
//! Self-attention recomputes its operand matrices for every input, which
//! an NVM crossbar would have to absorb as cell *writes* — millions per
//! inference against a 10⁶-cycle endurance. The feed-forward and
//! projection kernels, in contrast, are static and map perfectly onto the
//! SFC-connected PIM chiplets. This module quantifies the three design
//! points the paper discusses:
//!
//! * **all-PIM** — everything in ReRAM: best static-kernel efficiency but
//!   attention write traffic destroys the device in hours;
//! * **all-digital** — SRAM/MAC chiplets everywhere: no endurance limit
//!   but each static MAC costs several times the crossbar MAC;
//! * **heterogeneous** — static kernels on a PIM SFC macro, attention on
//!   digital chiplets spliced into the curve next to their encoder block.

use dnn::BertConfig;
use pim::PimConfig;
use serde::{Deserialize, Serialize};
use topology::HwParams;

/// Configuration of the heterogeneous transformer platform study.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeteroConfig {
    /// The transformer under study.
    pub bert: BertConfig,
    /// Sequence length per inference.
    pub seq: u32,
    /// PIM chiplet model (static kernels).
    pub pim: PimConfig,
    /// Interconnect model for the PIM-digital transfers.
    pub hw: HwParams,
    /// Energy of one 8-bit MAC on a digital chiplet (systolic array +
    /// SRAM operand fetch), pJ. Several times the crossbar MAC.
    pub digital_mac_pj: f64,
    /// MACs one digital chiplet retires per cycle (e.g. a 64x64 array).
    pub digital_macs_per_cycle: u64,
    /// Digital chiplet clock, GHz.
    pub digital_clock_ghz: f64,
    /// Bytes per activation element on the NoI.
    pub activation_bytes: u64,
}

impl Default for HeteroConfig {
    fn default() -> Self {
        HeteroConfig {
            bert: BertConfig::base(),
            seq: 512,
            pim: PimConfig::default(),
            hw: HwParams::default(),
            digital_mac_pj: 3.2,
            digital_macs_per_cycle: 4096,
            digital_clock_ghz: 1.0,
            activation_bytes: 1,
        }
    }
}

/// Which platform organization is evaluated.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TransformerPlatform {
    /// Everything on ReRAM crossbars (including attention intermediates).
    AllPim,
    /// Everything on digital SRAM/MAC chiplets.
    AllDigital,
    /// Static kernels on PIM, attention on digital chiplets (Section IV).
    Heterogeneous,
}

impl std::fmt::Display for TransformerPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TransformerPlatform::AllPim => "all-PIM",
            TransformerPlatform::AllDigital => "all-digital",
            TransformerPlatform::Heterogeneous => "heterogeneous",
        };
        f.write_str(s)
    }
}

/// Evaluation of one platform organization on one transformer inference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransformerEval {
    /// Platform organization.
    pub platform: TransformerPlatform,
    /// Latency of one inference, ns.
    pub latency_ns: f64,
    /// Energy of one inference, pJ.
    pub energy_pj: f64,
    /// PIM chiplets needed (weight storage).
    pub pim_chiplets: u64,
    /// Digital chiplets needed (attention throughput).
    pub digital_chiplets: u64,
    /// ReRAM cell writes per inference.
    pub crossbar_writes: u64,
    /// Inferences until endurance exhaustion (`u64::MAX` if no NVM
    /// writes occur).
    pub lifetime_inferences: u64,
    /// Inter-chiplet traffic per inference, bytes.
    pub noi_bytes: u64,
}

impl TransformerEval {
    /// Whether the platform can serve a datacenter lifetime (arbitrarily:
    /// at least one billion inferences before wear-out).
    pub fn sustainable(&self) -> bool {
        self.lifetime_inferences >= 1_000_000_000
    }
}

/// Static-kernel MACs per layer: QKV + output projections and the two FF
/// matrices, for a sequence of `seq` tokens.
fn static_macs_per_layer(bert: &BertConfig, seq: u32) -> u64 {
    let s = seq as u64;
    let h = bert.hidden as u64;
    let f = bert.ff as u64;
    s * (4 * h * h + 2 * h * f)
}

/// Dynamic (attention) MACs per layer: QK^T scores and scores x V.
fn dynamic_macs_per_layer(bert: &BertConfig, seq: u32) -> u64 {
    let s = seq as u64;
    let h = bert.hidden as u64;
    2 * s * s * h
}

/// Latency of `macs` on PIM crossbars holding an `rows x cols` matrix:
/// bit-serial input streaming, row/column tiles in parallel.
fn pim_latency_ns(macs: u64, rows: u32, cols: u32, pim: &PimConfig) -> f64 {
    let weights = rows as u64 * cols as u64;
    if weights == 0 {
        return 0.0;
    }
    let mvms = (macs / weights).max(1);
    mvms as f64 * pim.activation_bits as f64 * pim.read_ns
}

/// Latency of `macs` on `chiplets` digital chiplets, ns.
fn digital_latency_ns(macs: u64, chiplets: u64, cfg: &HeteroConfig) -> f64 {
    let rate = chiplets.max(1) as f64 * cfg.digital_macs_per_cycle as f64 * cfg.digital_clock_ghz;
    macs as f64 / rate
}

/// Evaluates one platform organization.
pub fn evaluate_transformer(platform: TransformerPlatform, cfg: &HeteroConfig) -> TransformerEval {
    let bert = &cfg.bert;
    let layers = bert.layers as u64;
    let s = cfg.seq as u64;
    let h = bert.hidden as u64;
    let static_macs = layers * static_macs_per_layer(bert, cfg.seq);
    let dynamic_macs = layers * dynamic_macs_per_layer(bert, cfg.seq);

    // PIM chiplets to hold the static weights.
    let static_weights = layers * (bert.weights_per_layer());
    let pim_chiplets_needed = static_weights.div_ceil(cfg.pim.weights_per_node());

    // Per-layer static latency: the widest matrix (FF1: H x F) dominates;
    // layers pipeline, so one inference pass costs the sum over kernels.
    let per_layer_static_ns = pim_latency_ns(
        static_macs_per_layer(bert, cfg.seq),
        bert.hidden,
        bert.hidden + bert.ff,
        &cfg.pim,
    );

    match platform {
        TransformerPlatform::AllPim => {
            // Attention operands must be programmed into crossbars: every
            // intermediate element is a cell write (bit-sliced).
            let writes =
                layers * bert.intermediates_per_layer(cfg.seq) * cfg.pim.cells_per_weight() as u64;
            let write_ns = writes as f64 / (bert.heads as f64) * cfg.pim.write_ns
                / cfg.pim.crossbars_per_node as f64; // head-/array-parallel programming
            let dyn_ns = pim_latency_ns(
                dynamic_macs_per_layer(bert, cfg.seq),
                cfg.seq,
                cfg.seq,
                &cfg.pim,
            );
            let latency_ns = layers as f64 * (per_layer_static_ns + dyn_ns) + write_ns;
            let energy_pj = (static_macs + dynamic_macs) as f64 * cfg.pim.e_mac_pj
                + writes as f64 * cfg.pim.write_energy_pj;
            let lifetime = dnn::lifetime_inferences(
                writes,
                pim_chiplets_needed
                    * cfg.pim.weights_per_node()
                    * cfg.pim.cells_per_weight() as u64,
                cfg.pim.endurance,
            );
            TransformerEval {
                platform,
                latency_ns,
                energy_pj,
                pim_chiplets: pim_chiplets_needed,
                digital_chiplets: 0,
                crossbar_writes: writes,
                lifetime_inferences: lifetime,
                noi_bytes: 0,
            }
        }
        TransformerPlatform::AllDigital => {
            // Match the hetero platform's digital provisioning per layer,
            // plus enough chiplets to stream the static kernels.
            let digital = layers * 2;
            let latency_ns = digital_latency_ns(static_macs + dynamic_macs, digital, cfg);
            let energy_pj = (static_macs + dynamic_macs) as f64 * cfg.digital_mac_pj;
            TransformerEval {
                platform,
                latency_ns,
                energy_pj,
                pim_chiplets: 0,
                digital_chiplets: digital,
                crossbar_writes: 0,
                lifetime_inferences: u64::MAX,
                noi_bytes: 0,
            }
        }
        TransformerPlatform::Heterogeneous => {
            // Static kernels on the PIM SFC macro; one digital chiplet per
            // encoder block handles its attention.
            let digital = layers;
            let dyn_ns = digital_latency_ns(dynamic_macs_per_layer(bert, cfg.seq), 1, cfg);
            // NoI: Q,K,V cross from PIM to the digital chiplet; context
            // comes back — 4*S*H elements per layer, single-hop (the
            // digital chiplet is spliced into the curve next to its block).
            let per_layer_bytes = 4 * s * h * cfg.activation_bytes;
            let noi_bytes = layers * per_layer_bytes;
            let hop_ns = cfg.hw.hop_cycles(1) as f64 * cfg.hw.cycle_ns();
            let per_layer_xfer_ns =
                hop_ns + cfg.hw.serialization_cycles(per_layer_bytes) as f64 * cfg.hw.cycle_ns();
            let latency_ns = layers as f64 * (per_layer_static_ns + dyn_ns + per_layer_xfer_ns);
            let xfer_bits = noi_bytes * 8;
            let energy_pj = static_macs as f64 * cfg.pim.e_mac_pj
                + dynamic_macs as f64 * cfg.digital_mac_pj
                + cfg.hw.hop_energy_pj(xfer_bits, 2, 1);
            TransformerEval {
                platform,
                latency_ns,
                energy_pj,
                pim_chiplets: pim_chiplets_needed,
                digital_chiplets: digital,
                crossbar_writes: 0,
                lifetime_inferences: u64::MAX,
                noi_bytes,
            }
        }
    }
}

/// Evaluates all three organizations.
pub fn transformer_design_points(cfg: &HeteroConfig) -> Vec<TransformerEval> {
    vec![
        evaluate_transformer(TransformerPlatform::AllPim, cfg),
        evaluate_transformer(TransformerPlatform::AllDigital, cfg),
        evaluate_transformer(TransformerPlatform::Heterogeneous, cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HeteroConfig {
        HeteroConfig::default()
    }

    #[test]
    fn all_pim_is_unsustainable() {
        let eval = evaluate_transformer(TransformerPlatform::AllPim, &cfg());
        assert!(eval.crossbar_writes > 0);
        assert!(!eval.sustainable(), "attention writes must wear ReRAM out");
    }

    #[test]
    fn hetero_and_digital_have_no_wearout() {
        for p in [
            TransformerPlatform::AllDigital,
            TransformerPlatform::Heterogeneous,
        ] {
            let eval = evaluate_transformer(p, &cfg());
            assert_eq!(eval.crossbar_writes, 0);
            assert!(eval.sustainable());
        }
    }

    #[test]
    fn hetero_beats_all_digital_on_energy() {
        // Crossbar MACs are cheaper than digital MACs, and static kernels
        // dominate the MAC count at 512 tokens.
        let d = evaluate_transformer(TransformerPlatform::AllDigital, &cfg());
        let het = evaluate_transformer(TransformerPlatform::Heterogeneous, &cfg());
        assert!(
            het.energy_pj < d.energy_pj,
            "hetero {} pJ must beat digital {} pJ",
            het.energy_pj,
            d.energy_pj
        );
    }

    #[test]
    fn hetero_beats_all_pim_on_latency_and_lifetime() {
        let p = evaluate_transformer(TransformerPlatform::AllPim, &cfg());
        let het = evaluate_transformer(TransformerPlatform::Heterogeneous, &cfg());
        assert!(
            het.latency_ns < p.latency_ns,
            "write stalls must hurt all-PIM"
        );
        assert!(het.lifetime_inferences > p.lifetime_inferences);
    }

    #[test]
    fn hetero_noi_traffic_is_accounted() {
        let het = evaluate_transformer(TransformerPlatform::Heterogeneous, &cfg());
        // 12 layers x 4 x 512 x 768 bytes.
        assert_eq!(het.noi_bytes, 12 * 4 * 512 * 768);
        assert_eq!(het.digital_chiplets, 12);
        assert!(het.pim_chiplets > 0);
    }

    #[test]
    fn tiny_needs_fewer_chiplets_than_base() {
        let tiny = HeteroConfig {
            bert: dnn::BertConfig::tiny(),
            seq: 128,
            ..cfg()
        };
        let t = evaluate_transformer(TransformerPlatform::Heterogeneous, &tiny);
        let b = evaluate_transformer(TransformerPlatform::Heterogeneous, &cfg());
        assert!(t.pim_chiplets < b.pim_chiplets);
        assert!(t.digital_chiplets < b.digital_chiplets);
    }

    #[test]
    fn design_points_cover_all_three() {
        let points = transformer_design_points(&cfg());
        assert_eq!(points.len(), 3);
        let platforms: Vec<_> = points.iter().map(|p| p.platform).collect();
        assert!(platforms.contains(&TransformerPlatform::AllPim));
        assert!(platforms.contains(&TransformerPlatform::AllDigital));
        assert!(platforms.contains(&TransformerPlatform::Heterogeneous));
    }
}

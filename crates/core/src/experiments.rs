//! One entry point per paper artifact (tables, figures, analyses). The
//! `pim-bench` binaries print these; the integration tests assert their
//! shape against the paper's claims.

use cost::CostModel;
use dnn::{
    build_model, storage_sweep, table1, table2, BertConfig, SegmentGraph, StorageRow, Table1Entry,
};
use opt::SaConfig;
use serde::{Deserialize, Serialize};
use topology::TopologySummary;

use crate::arch::NoiArch;
use crate::config::SystemConfig;
use crate::platform25::{Platform25D, WorkloadReport};
use crate::platform3d::{PlacementEval, Platform3D};
use crate::sweep::{default_threads, parallel_map, SweepRunner};

/// Table I row: paper's printed parameter count next to ours.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload id (`M1`..`M13`).
    pub id: String,
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Paper's printed parameter count, millions.
    pub paper_params_m: f64,
    /// Our computed parameter count, millions.
    pub computed_params_m: f64,
}

/// Regenerates Table I.
pub fn table1_rows() -> Vec<Table1Row> {
    table1()
        .into_iter()
        .map(|e: Table1Entry| {
            let g = build_model(e.kind, e.dataset).expect("table models build");
            Table1Row {
                id: e.id.to_string(),
                model: e.kind.to_string(),
                dataset: e.dataset.to_string(),
                paper_params_m: e.paper_params_m,
                computed_params_m: g.total_params() as f64 / 1e6,
            }
        })
        .collect()
}

/// Table II row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Mix name (`WL1`..`WL5`).
    pub name: String,
    /// Task instances in the mix.
    pub tasks: usize,
    /// Paper's printed total parameters, billions.
    pub paper_total_b: f64,
    /// Our computed total, billions.
    pub computed_total_b: f64,
}

/// Regenerates Table II.
pub fn table2_rows() -> Vec<Table2Row> {
    table2()
        .into_iter()
        .map(|wl| {
            let computed = wl.computed_total_params() as f64 / 1e9;
            Table2Row {
                tasks: wl.task_count(),
                paper_total_b: wl.paper_total_params_b,
                computed_total_b: computed,
                name: wl.name,
            }
        })
        .collect()
}

/// Fig. 2: structural summaries of the four NoIs (port histograms, link
/// counts, areas) for the 100-chiplet system.
pub fn fig2_summaries(cfg: &SystemConfig) -> Vec<TopologySummary> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .fig2_summaries()
}

/// Fig. 3/4/5: one workload executed on one architecture. For a single
/// cell the platform is built directly; grids should go through
/// [`SweepRunner`] so construction is paid once per architecture.
pub fn run_arch_workload(cfg: &SystemConfig, arch: NoiArch, wl_name: &str) -> WorkloadReport {
    let wl = dnn::table2_workload(wl_name).expect("table II workload");
    Platform25D::new(arch, cfg)
        .expect("paper architectures build")
        .run_workload(&wl)
}

/// Fig. 3/4/5: the full architecture x workload sweep on the shared
/// engine — each platform constructed once, cells fanned across scoped
/// threads, output bit-identical to the sequential per-cell loop it
/// replaced (workload-major, [`NoiArch::all`] order).
pub fn fig345_sweep(cfg: &SystemConfig) -> Vec<WorkloadReport> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .fig345_sweep()
}

/// The dataflow figure: every Table II mix × the four [`dnn::Dataflow`]
/// modes × the four architectures on the shared engine — workload-major,
/// then dataflow, then [`NoiArch::all`] order, so each chunk of 16 rows
/// is one mix and the weight-stationary rows reproduce [`fig345_sweep`]'s
/// cells exactly.
pub fn dataflow_sweep(cfg: &SystemConfig) -> Vec<WorkloadReport> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .dataflow_sweep()
}

/// Cost-comparison row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// Architecture name.
    pub arch: String,
    /// NoI silicon area, mm².
    pub noi_area_mm2: f64,
    /// Fabrication cost normalized to the AMD reference (Eq. 2).
    pub relative_cost: f64,
    /// Cost ratio over Floret (Eq. 5).
    pub ratio_vs_floret: f64,
}

/// Regenerates the Section II fabrication-cost comparison.
pub fn cost_rows(cfg: &SystemConfig) -> Vec<CostRow> {
    cost_rows_on(&SweepRunner::new(cfg).expect("paper architectures build"))
}

/// [`cost_rows`] on an already-built engine (no platform rebuilds).
pub fn cost_rows_on(runner: &SweepRunner) -> Vec<CostRow> {
    let model = CostModel::default();
    let areas: Vec<(String, f64)> = runner
        .platforms()
        .iter()
        .map(|p| (p.arch_name().to_string(), p.noi_area_mm2()))
        .collect();
    let floret_area = areas
        .iter()
        .find(|(n, _)| n == "Floret")
        .expect("floret present")
        .1;
    areas
        .into_iter()
        .map(|(arch, area)| CostRow {
            arch,
            noi_area_mm2: area,
            relative_cost: model.relative_cost(area),
            ratio_vs_floret: model.cost_ratio(area, floret_area),
        })
        .collect()
}

/// Fig. 6 row: one DNN on the 100-PE 3D system, Floret-enabled
/// (performance-only) vs joint performance-thermal optimized NoC.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload id (Table I).
    pub id: String,
    /// Model name.
    pub model: String,
    /// Performance-only (SFC order) evaluation.
    pub floret: PlacementEval,
    /// Joint performance-thermal evaluation.
    pub joint: PlacementEval,
}

/// The five DNNs of Figs. 6 (`W1..W5` = Table I `M9, M10, M11, M12, M13`,
/// the CIFAR-10 rows, which fit the 52M-weight 100-PE stack; the paper's
/// ImageNet M1-M5 need the 2.5D datacenter capacity).
pub fn fig6_models() -> Vec<Table1Entry> {
    table1()
        .into_iter()
        .filter(|e| ["M9", "M10", "M11", "M12", "M13"].contains(&e.id))
        .collect()
}

/// The default annealing schedule for the joint design point.
pub fn joint_sa_config() -> SaConfig {
    SaConfig {
        iterations: 400,
        t_start: 0.5,
        t_end: 1e-3,
        weights: vec![1.0, 0.5],
        seed: 0x3D_0C,
    }
}

/// Regenerates Fig. 6 (EDP, peak temperature, accuracy impact). The 3D
/// platform is built once and the per-model optimization runs (each a
/// pure function of its seeded annealing schedule) fan across scoped
/// workers; output order and values match the sequential loop exactly.
pub fn fig6_rows(cfg: &SystemConfig, sa: &SaConfig) -> Vec<Fig6Row> {
    let platform = Platform3D::new(cfg).expect("3d platform builds");
    let models = fig6_models();
    parallel_map(&models, default_threads(), |e| {
        let g = build_model(e.kind, e.dataset).expect("table models build");
        let sg = SegmentGraph::from_layer_graph(&g);
        let floret = platform
            .evaluate(&sg, &platform.sfc_order())
            .expect("fig6 models fit");
        let (_, joint) = platform.optimize(&sg, sa).expect("fig6 models fit");
        Fig6Row {
            id: e.id.to_string(),
            model: e.kind.to_string(),
            floret,
            joint,
        }
    })
}

/// Fig. 7 output: bottom-tier temperature maps for both mappings plus
/// their peaks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig7Maps {
    /// Bottom-tier temperatures under the Floret (performance-only) NoC.
    pub floret_bottom_tier: Vec<Vec<f64>>,
    /// Bottom-tier temperatures under the joint optimization.
    pub joint_bottom_tier: Vec<Vec<f64>>,
    /// Peak temperature, Floret NoC, K.
    pub floret_peak_k: f64,
    /// Peak temperature, joint NoC, K.
    pub joint_peak_k: f64,
    /// Hotspot cells (>= 330 K), Floret NoC.
    pub floret_hotspots: usize,
    /// Hotspot cells (>= 330 K), joint NoC.
    pub joint_hotspots: usize,
}

/// Regenerates Fig. 7 (ResNet-34 thermal maps on the 100-PE system).
pub fn fig7_maps(cfg: &SystemConfig, sa: &SaConfig) -> Fig7Maps {
    let platform = Platform3D::new(cfg).expect("3d platform builds");
    let g = build_model(dnn::ModelKind::ResNet34, dnn::Dataset::Cifar10).expect("resnet34 builds");
    let sg = SegmentGraph::from_layer_graph(&g);
    let bottom = cfg.tiers - 1;

    let sfc_placement = platform.place(&sg, &platform.sfc_order()).expect("fits");
    let sfc_map = platform.thermal_map(&sg, &sfc_placement);

    let (joint_order, _) = platform.optimize(&sg, sa).expect("fits");
    let joint_placement = platform.place(&sg, &joint_order).expect("fits");
    let joint_map = platform.thermal_map(&sg, &joint_placement);

    Fig7Maps {
        floret_bottom_tier: sfc_map.tier_slice(bottom),
        joint_bottom_tier: joint_map.tier_slice(bottom),
        floret_peak_k: sfc_map.peak_k(),
        joint_peak_k: joint_map.peak_k(),
        floret_hotspots: sfc_map.hotspot_count(330.0),
        joint_hotspots: joint_map.hotspot_count(330.0),
    }
}

/// Section IV: Transformer intermediate-storage sweep for BERT-Tiny and
/// BERT-Base.
pub fn transformer_rows() -> Vec<(String, Vec<StorageRow>)> {
    let seqs = [64, 128, 256, 384, 512, 1024];
    vec![
        (
            "BERT-Tiny".to_string(),
            storage_sweep(&BertConfig::tiny(), &seqs),
        ),
        (
            "BERT-Base".to_string(),
            storage_sweep(&BertConfig::base(), &seqs),
        ),
    ]
}

/// Section II activation analysis: ResNet-34 linear-vs-skip traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActivationRow {
    /// Model name.
    pub model: String,
    /// Linear (sequential) activation volume, elements.
    pub sequential: u64,
    /// Skip activation volume, elements.
    pub skip: u64,
    /// linear / skip ratio (paper: ~4.5x for ResNet-34).
    pub linear_over_skip: f64,
    /// Skip share of all propagated activations (paper: ~19%).
    pub skip_fraction: f64,
}

/// Regenerates the ResNet-34 activation-split claim.
pub fn activation_rows() -> Vec<ActivationRow> {
    [
        dnn::ModelKind::ResNet18,
        dnn::ModelKind::ResNet34,
        dnn::ModelKind::ResNet50,
    ]
    .into_iter()
    .map(|kind| {
        let g = build_model(kind, dnn::Dataset::ImageNet).expect("models build");
        let split = g.activation_split();
        ActivationRow {
            model: kind.to_string(),
            sequential: split.sequential,
            skip: split.skip,
            linear_over_skip: split.sequential as f64 / split.skip.max(1) as f64,
            skip_fraction: split.skip_fraction(),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_complete() {
        assert_eq!(table1_rows().len(), 13);
        assert_eq!(table2_rows().len(), 5);
    }

    #[test]
    fn fig2_has_four_architectures() {
        let cfg = SystemConfig::datacenter_25d();
        let rows = fig2_summaries(&cfg);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.routers, 100);
        }
    }

    #[test]
    fn cost_rows_normalized_to_floret() {
        let cfg = SystemConfig::datacenter_25d();
        let rows = cost_rows(&cfg);
        let floret = rows.iter().find(|r| r.arch == "Floret").unwrap();
        assert!((floret.ratio_vs_floret - 1.0).abs() < 1e-12);
        for r in &rows {
            if r.arch != "Floret" {
                assert!(r.ratio_vs_floret > 1.0, "{} must cost more", r.arch);
            }
        }
    }

    #[test]
    fn fig6_models_fit_the_3d_system() {
        let cfg = SystemConfig::stacked_3d();
        let capacity = cfg.node_capacity() * cfg.node_count() as u64;
        for e in fig6_models() {
            let g = build_model(e.kind, e.dataset).unwrap();
            assert!(
                g.total_params() < capacity,
                "{} does not fit the 3D stack",
                e.id
            );
        }
    }

    #[test]
    fn transformer_rows_cover_both_models() {
        let rows = transformer_rows();
        assert_eq!(rows.len(), 2);
        for (_, sweep) in &rows {
            assert_eq!(sweep.len(), 6);
        }
    }

    #[test]
    fn fig345_single_run_is_complete() {
        let cfg = SystemConfig::datacenter_25d();
        let r = run_arch_workload(&cfg, NoiArch::Floret { lambda: 6 }, "WL1");
        assert_eq!(r.arch, "Floret");
        assert_eq!(r.workload, "WL1");
        assert!(r.total_traffic_bytes > 0);
        assert!(
            r.noi_energy_pj > r.noi_dynamic_energy_pj,
            "static share present"
        );
    }

    #[test]
    fn activation_rows_cover_resnets() {
        let rows = activation_rows();
        assert_eq!(rows.len(), 3);
        let r34 = &rows[1];
        assert!(r34.skip_fraction > 0.05 && r34.skip_fraction < 0.3);
    }
}

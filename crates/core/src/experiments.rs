//! One entry point per paper artifact (tables, figures, analyses), plus
//! the standard [`ExperimentRegistry`] ([`registry`]) where every
//! artifact is registered once — name, description, run function — and
//! returns a uniform [`ExperimentOutput`]. The `pim-bench` CLI resolves
//! [`crate::Scenario`] specs against it; the integration tests assert
//! the entry points' shape against the paper's claims.

use std::sync::OnceLock;

use cost::CostModel;
use dnn::{
    build_model, lifetime_inferences, storage_sweep, table1, table2, BertConfig, Dataset,
    ModelKind, SegmentGraph, StorageRow, Table1Entry, Workload,
};
use mapper::{run_poisson, ArrivalConfig};
use netsim::{
    analyze, analyze_with_table, generate_pattern, generate_pipeline, simulate_faulty_with_scratch,
    simulate_with_table, LinkFaults, RouteTable, SimConfig, SimScratch, TrafficPattern,
};
use opt::{NsgaConfig, SaConfig};
use serde::{Deserialize, Serialize};
use thermal::ThermalConfig;
use topology::{kite, kite_with_skips, NodeId, TopologySummary};

use crate::arch::NoiArch;
use crate::config::SystemConfig;
use crate::faults::FaultPlan;
use crate::hetero::{transformer_design_points, HeteroConfig};
use crate::platform25::{Platform25D, WorkloadReport};
use crate::platform3d::{PlacementEval, Platform3D};
use crate::scenario::{
    CellValue, Column, ExperimentOutput, ExperimentRegistry, ExperimentSpec, Histogram,
    ResolvedScenario, RunContext, ScenarioError, Table,
};
use crate::serving::{simulate_resilient_serving, simulate_serving, ResilienceParams, ServingSpec};
use crate::sweep::{default_threads, parallel_map, SweepRunner};

/// Table I row: paper's printed parameter count next to ours.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload id (`M1`..`M13`).
    pub id: String,
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Paper's printed parameter count, millions.
    pub paper_params_m: f64,
    /// Our computed parameter count, millions.
    pub computed_params_m: f64,
}

/// Regenerates Table I.
pub fn table1_rows() -> Vec<Table1Row> {
    table1()
        .into_iter()
        .map(|e: Table1Entry| {
            let g = build_model(e.kind, e.dataset).expect("table models build");
            Table1Row {
                id: e.id.to_string(),
                model: e.kind.to_string(),
                dataset: e.dataset.to_string(),
                paper_params_m: e.paper_params_m,
                computed_params_m: g.total_params() as f64 / 1e6,
            }
        })
        .collect()
}

/// Table II row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Mix name (`WL1`..`WL5`).
    pub name: String,
    /// Task instances in the mix.
    pub tasks: usize,
    /// Paper's printed total parameters, billions.
    pub paper_total_b: f64,
    /// Our computed total, billions.
    pub computed_total_b: f64,
}

/// Regenerates Table II.
pub fn table2_rows() -> Vec<Table2Row> {
    table2()
        .into_iter()
        .map(|wl| {
            let computed = wl.computed_total_params() as f64 / 1e9;
            Table2Row {
                tasks: wl.task_count(),
                paper_total_b: wl.paper_total_params_b,
                computed_total_b: computed,
                name: wl.name,
            }
        })
        .collect()
}

/// Fig. 2: structural summaries of the four NoIs (port histograms, link
/// counts, areas) for the 100-chiplet system.
pub fn fig2_summaries(cfg: &SystemConfig) -> Vec<TopologySummary> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .fig2_summaries()
}

/// Fig. 3/4/5: one workload executed on one architecture. For a single
/// cell the platform is built directly; grids should go through
/// [`SweepRunner`] so construction is paid once per architecture.
pub fn run_arch_workload(cfg: &SystemConfig, arch: NoiArch, wl_name: &str) -> WorkloadReport {
    let wl = dnn::table2_workload(wl_name).expect("table II workload");
    Platform25D::new(arch, cfg)
        .expect("paper architectures build")
        .run_workload(&wl)
}

/// Fig. 3/4/5: the full architecture x workload sweep on the shared
/// engine — each platform constructed once, cells fanned across scoped
/// threads, output bit-identical to the sequential per-cell loop it
/// replaced (workload-major, [`NoiArch::all`] order).
pub fn fig345_sweep(cfg: &SystemConfig) -> Vec<WorkloadReport> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .fig345_sweep()
}

/// The dataflow figure: every Table II mix × the four [`dnn::Dataflow`]
/// modes × the four architectures on the shared engine — workload-major,
/// then dataflow, then [`NoiArch::all`] order, so each chunk of 16 rows
/// is one mix and the weight-stationary rows reproduce [`fig345_sweep`]'s
/// cells exactly.
pub fn dataflow_sweep(cfg: &SystemConfig) -> Vec<WorkloadReport> {
    SweepRunner::new(cfg)
        .expect("paper architectures build")
        .dataflow_sweep()
}

/// Cost-comparison row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// Architecture name.
    pub arch: String,
    /// NoI silicon area, mm².
    pub noi_area_mm2: f64,
    /// Fabrication cost normalized to the AMD reference (Eq. 2).
    pub relative_cost: f64,
    /// Cost ratio over Floret (Eq. 5).
    pub ratio_vs_floret: f64,
}

/// Regenerates the Section II fabrication-cost comparison.
pub fn cost_rows(cfg: &SystemConfig) -> Vec<CostRow> {
    cost_rows_on(&SweepRunner::new(cfg).expect("paper architectures build"))
}

/// [`cost_rows`] on an already-built engine (no platform rebuilds).
/// Ratios are normalized to Floret, or to the engine's first
/// architecture when a scenario's subset excludes Floret.
pub fn cost_rows_on(runner: &SweepRunner) -> Vec<CostRow> {
    let model = CostModel::default();
    let areas: Vec<(String, f64)> = runner
        .platforms()
        .iter()
        .map(|p| (p.arch_name().to_string(), p.noi_area_mm2()))
        .collect();
    let floret_area = areas
        .iter()
        .find(|(n, _)| n == "Floret")
        .unwrap_or(&areas[0])
        .1;
    areas
        .into_iter()
        .map(|(arch, area)| CostRow {
            arch,
            noi_area_mm2: area,
            relative_cost: model.relative_cost(area),
            ratio_vs_floret: model.cost_ratio(area, floret_area),
        })
        .collect()
}

/// Fig. 6 row: one DNN on the 100-PE 3D system, Floret-enabled
/// (performance-only) vs joint performance-thermal optimized NoC.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload id (Table I).
    pub id: String,
    /// Model name.
    pub model: String,
    /// Performance-only (SFC order) evaluation.
    pub floret: PlacementEval,
    /// Joint performance-thermal evaluation.
    pub joint: PlacementEval,
}

/// The five DNNs of Figs. 6 (`W1..W5` = Table I `M9, M10, M11, M12, M13`,
/// the CIFAR-10 rows, which fit the 52M-weight 100-PE stack; the paper's
/// ImageNet M1-M5 need the 2.5D datacenter capacity).
pub fn fig6_models() -> Vec<Table1Entry> {
    table1()
        .into_iter()
        .filter(|e| ["M9", "M10", "M11", "M12", "M13"].contains(&e.id))
        .collect()
}

/// The default annealing schedule for the joint design point.
pub fn joint_sa_config() -> SaConfig {
    SaConfig {
        iterations: 400,
        t_start: 0.5,
        t_end: 1e-3,
        weights: vec![1.0, 0.5],
        seed: 0x3D_0C,
    }
}

/// Regenerates Fig. 6 (EDP, peak temperature, accuracy impact). The 3D
/// platform is built once and the per-model optimization runs (each a
/// pure function of its seeded annealing schedule) fan across scoped
/// workers; output order and values match the sequential loop exactly.
pub fn fig6_rows(cfg: &SystemConfig, sa: &SaConfig) -> Vec<Fig6Row> {
    fig6_rows_on(cfg, sa, default_threads())
}

/// [`fig6_rows`] with an explicit worker count (the scenario `--threads`
/// surface; values are identical for any count).
pub fn fig6_rows_on(cfg: &SystemConfig, sa: &SaConfig, threads: usize) -> Vec<Fig6Row> {
    let platform = Platform3D::new(cfg).expect("3d platform builds");
    let models = fig6_models();
    parallel_map(&models, threads, |e| {
        let g = build_model(e.kind, e.dataset).expect("table models build");
        let sg = SegmentGraph::from_layer_graph(&g);
        let floret = platform
            .evaluate(&sg, &platform.sfc_order())
            .expect("fig6 models fit");
        let (_, joint) = platform.optimize(&sg, sa).expect("fig6 models fit");
        Fig6Row {
            id: e.id.to_string(),
            model: e.kind.to_string(),
            floret,
            joint,
        }
    })
}

/// Fig. 7 output: bottom-tier temperature maps for both mappings plus
/// their peaks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig7Maps {
    /// Bottom-tier temperatures under the Floret (performance-only) NoC.
    pub floret_bottom_tier: Vec<Vec<f64>>,
    /// Bottom-tier temperatures under the joint optimization.
    pub joint_bottom_tier: Vec<Vec<f64>>,
    /// Peak temperature, Floret NoC, K.
    pub floret_peak_k: f64,
    /// Peak temperature, joint NoC, K.
    pub joint_peak_k: f64,
    /// Hotspot cells (>= 330 K), Floret NoC.
    pub floret_hotspots: usize,
    /// Hotspot cells (>= 330 K), joint NoC.
    pub joint_hotspots: usize,
}

/// Regenerates Fig. 7 (ResNet-34 thermal maps on the 100-PE system).
pub fn fig7_maps(cfg: &SystemConfig, sa: &SaConfig) -> Fig7Maps {
    let platform = Platform3D::new(cfg).expect("3d platform builds");
    let g = build_model(dnn::ModelKind::ResNet34, dnn::Dataset::Cifar10).expect("resnet34 builds");
    let sg = SegmentGraph::from_layer_graph(&g);
    let bottom = cfg.tiers - 1;

    let sfc_placement = platform.place(&sg, &platform.sfc_order()).expect("fits");
    let sfc_map = platform.thermal_map(&sg, &sfc_placement);

    let (joint_order, _) = platform.optimize(&sg, sa).expect("fits");
    let joint_placement = platform.place(&sg, &joint_order).expect("fits");
    let joint_map = platform.thermal_map(&sg, &joint_placement);

    Fig7Maps {
        floret_bottom_tier: sfc_map.tier_slice(bottom),
        joint_bottom_tier: joint_map.tier_slice(bottom),
        floret_peak_k: sfc_map.peak_k(),
        joint_peak_k: joint_map.peak_k(),
        floret_hotspots: sfc_map.hotspot_count(330.0),
        joint_hotspots: joint_map.hotspot_count(330.0),
    }
}

/// Section IV: Transformer intermediate-storage sweep for BERT-Tiny and
/// BERT-Base.
pub fn transformer_rows() -> Vec<(String, Vec<StorageRow>)> {
    let seqs = [64, 128, 256, 384, 512, 1024];
    vec![
        (
            "BERT-Tiny".to_string(),
            storage_sweep(&BertConfig::tiny(), &seqs),
        ),
        (
            "BERT-Base".to_string(),
            storage_sweep(&BertConfig::base(), &seqs),
        ),
    ]
}

/// Section II activation analysis: ResNet-34 linear-vs-skip traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActivationRow {
    /// Model name.
    pub model: String,
    /// Linear (sequential) activation volume, elements.
    pub sequential: u64,
    /// Skip activation volume, elements.
    pub skip: u64,
    /// linear / skip ratio (paper: ~4.5x for ResNet-34).
    pub linear_over_skip: f64,
    /// Skip share of all propagated activations (paper: ~19%).
    pub skip_fraction: f64,
}

/// Regenerates the ResNet-34 activation-split claim.
pub fn activation_rows() -> Vec<ActivationRow> {
    [
        dnn::ModelKind::ResNet18,
        dnn::ModelKind::ResNet34,
        dnn::ModelKind::ResNet50,
    ]
    .into_iter()
    .map(|kind| {
        let g = build_model(kind, dnn::Dataset::ImageNet).expect("models build");
        let split = g.activation_split();
        ActivationRow {
            model: kind.to_string(),
            sequential: split.sequential,
            skip: split.skip,
            linear_over_skip: split.sequential as f64 / split.skip.max(1) as f64,
            skip_fraction: split.skip_fraction(),
        }
    })
    .collect()
}

/// Normalizes a metric across workload reports to the Floret row and
/// returns `(arch, value, normalized)` triples in the input order.
/// When a scenario's architecture subset excludes Floret, the first row
/// anchors the ratios instead (so the column stays a ratio, never a raw
/// value masquerading as one).
pub fn normalize_to_floret<F>(rows: &[WorkloadReport], metric: F) -> Vec<(String, f64, f64)>
where
    F: Fn(&WorkloadReport) -> f64,
{
    let floret = rows
        .iter()
        .find(|r| r.arch == "Floret")
        .or_else(|| rows.first())
        .map(&metric)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    rows.iter()
        .map(|r| {
            let v = metric(r);
            (r.arch.clone(), v, v / floret)
        })
        .collect()
}

/// Renders a tier temperature slice as an ASCII heat map (one char per
/// PE, `.:oO#@` buckets relative to the given range).
///
/// # Examples
///
/// ```
/// let map = pim_core::experiments::ascii_heatmap(&[vec![300.0, 399.0]], 300.0, 400.0);
/// assert_eq!(map, ". @ \n");
/// ```
pub fn ascii_heatmap(slice: &[Vec<f64>], lo: f64, hi: f64) -> String {
    let chars = ['.', ':', 'o', 'O', '#', '@'];
    let mut out = String::new();
    for row in slice {
        for &t in row {
            let f = ((t - lo) / (hi - lo)).clamp(0.0, 0.999);
            let idx = (f * chars.len() as f64) as usize;
            out.push(chars[idx]);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

// ====================================================================
// The standard experiment registry: every paper artifact registered
// once, each run function a pure map from RunContext to the uniform
// ExperimentOutput shape. The `pim-bench` CLI (and the thin per-figure
// bin shims) are the only printers.
// ====================================================================

macro_rules! cells {
    ($($v:expr),* $(,)?) => {
        vec![$(crate::scenario::CellValue::from($v)),*]
    };
}

/// The standard registry: every table, figure and ablation of the paper
/// registered once. Built on first use and shared for the process
/// lifetime.
pub fn registry() -> &'static ExperimentRegistry {
    static REGISTRY: OnceLock<ExperimentRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = ExperimentRegistry::new();
        let specs: [(&'static str, &'static str, crate::scenario::RunFn); 22] = [
            (
                "table1",
                "Table I: the thirteen DNN workloads, paper-printed vs computed parameters",
                run_table1,
            ),
            (
                "table2",
                "Table II: the five concurrent-DNN mixes and their total parameters",
                run_table2,
            ),
            (
                "fig2",
                "Fig. 2: router-port histograms, link counts and wiring per NoI",
                run_fig2,
            ),
            (
                "fig3",
                "Fig. 3: NoI latency per (mix, architecture) through the DES, normalized to Floret",
                run_fig3,
            ),
            (
                "fig4",
                "Fig. 4: chiplet utilization under the hard-contiguity admission model",
                run_fig4,
            ),
            (
                "fig5",
                "Fig. 5: NoI energy per (mix, architecture), normalized to Floret",
                run_fig5,
            ),
            (
                "fig6",
                "Fig. 6: EDP, peak temperature and accuracy, Floret vs joint 3D NoC",
                run_fig6,
            ),
            (
                "fig7",
                "Fig. 7: ResNet-34 bottom-tier thermal maps, Floret vs thermal-aware NoC",
                run_fig7,
            ),
            (
                "dataflows",
                "Dataflow sweep: (mix x dataflow x arch) NoI traffic, latency, compute energy",
                run_dataflows,
            ),
            (
                "mapping_search",
                "Mapping search: searched per-layer loop nests vs the four hand dataflows \
                 on report-level EDP",
                run_mapping_search,
            ),
            (
                "cost",
                "Section II: Eq. (2)-(5) fabrication-cost comparison",
                run_cost,
            ),
            (
                "activations",
                "Section II: linear-vs-skip activation traffic in residual networks",
                run_activations,
            ),
            (
                "transformer",
                "Section IV: BERT intermediate-storage pressure and ReRAM endurance",
                run_transformer,
            ),
            (
                "hetero",
                "Section IV: all-PIM vs all-digital vs heterogeneous BERT platforms",
                run_hetero,
            ),
            (
                "patterns",
                "NoC ablation: synthetic traffic patterns and pipeline traffic per NoI",
                run_patterns,
            ),
            (
                "poisson",
                "Service-model ablation: Poisson arrivals over an offered-load sweep",
                run_poisson_experiment,
            ),
            (
                "faults",
                "Fault-injection ablation: SFC re-stitching over dead chiplets",
                run_faults,
            ),
            (
                "serving",
                "Datacenter serving: multi-tenant request streams over a chip fleet, \
                 latency percentiles and SLO attainment vs offered load",
                run_serving_experiment,
            ),
            (
                "resilience",
                "Resilience: serving under a seeded fault plan (chip outages, link \
                 blackouts, throttling) with retry/backoff, failover and load shedding",
                run_resilience,
            ),
            (
                "pareto",
                "Ablation: EDP vs peak-temperature placement Pareto front (NSGA-II)",
                run_pareto,
            ),
            (
                "ablation_kite",
                "Ablation: Kite skip-link family structure, area and uniform-traffic latency",
                run_ablation_kite,
            ),
            (
                "ablation_thermal",
                "Ablation: M3D vs TSV vertical conduction and spreading sensitivity",
                run_ablation_thermal,
            ),
        ];
        for (name, description, run) in specs {
            reg.register(ExperimentSpec {
                name,
                description,
                run,
            });
        }
        reg
    })
}

/// The paper-pinned SA seed for the Fig. 6/7 joint design point.
const JOINT_SA_SEED: u64 = 0x3D_0C;

/// The architecture the normalized columns anchor to: Floret when the
/// scenario includes it, otherwise the subset's first architecture (and
/// the rendered titles/headers say which).
fn norm_anchor(runner: &SweepRunner) -> &str {
    runner
        .platforms()
        .iter()
        .find(|p| p.arch_name() == "Floret")
        .unwrap_or(&runner.platforms()[0])
        .arch_name()
}

fn scenario_sa_config(ctx: &RunContext) -> SaConfig {
    SaConfig {
        seed: ctx.scenario().seed_or(JOINT_SA_SEED),
        ..joint_sa_config()
    }
}

fn run_table1(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let mut out = ExperimentOutput::new("table1", "");
    let mut t = Table::new(
        "Table I: DNN inference workloads, trainable parameters",
        vec![
            Column::str("id"),
            Column::str("model"),
            Column::str("dataset"),
            Column::float("paper (M)", 2),
            Column::float("computed (M)", 2),
        ],
    );
    for r in table1_rows() {
        t.push(cells![
            r.id,
            r.model,
            r.dataset,
            r.paper_params_m,
            r.computed_params_m
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "Note: several printed values are inconsistent with the standard architectures \
         (see EXPERIMENTS.md); the CIFAR-10 rows match within 6%."
            .to_string(),
    );
    Ok(out)
}

fn run_table2(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let mut out = ExperimentOutput::new("table2", "");
    let mut t = Table::new(
        "Table II: concurrent DNN task mixes (100-chiplet system)",
        vec![
            Column::str("mix"),
            Column::uint("tasks"),
            Column::float("paper (B)", 1),
            Column::float("computed (B)", 2),
        ],
    );
    for r in table2_rows() {
        t.push(cells![r.name, r.tasks, r.paper_total_b, r.computed_total_b]);
    }
    out.tables.push(t);
    Ok(out)
}

fn run_fig2(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let rows = ctx.runner()?.fig2_summaries();
    let mut out = ExperimentOutput::new("fig2", "");

    let mut ports = Table::new(
        "Fig. 2(a): router-port histogram (ports -> routers)",
        vec![Column::str("arch"), Column::str("histogram")],
    );
    for r in &rows {
        let hist: Vec<String> = r
            .port_histogram
            .iter()
            .map(|(p, c)| format!("{p}p:{c}"))
            .collect();
        ports.push(cells![r.name.clone(), hist.join("  ")]);
    }
    out.tables.push(ports);

    let mut links = Table::new(
        "Fig. 2(b): links and wiring",
        vec![
            Column::str("arch"),
            Column::uint("links"),
            Column::uint("wire(hops)"),
            Column::float("area(mm2)", 1),
            Column::float("avg hops", 2),
            Column::uint("bisection"),
        ],
    );
    for r in &rows {
        links.push(cells![
            r.name.clone(),
            r.links,
            r.total_wire_hops,
            r.noi_area_mm2,
            r.avg_hops,
            r.bisection_links
        ]);
    }
    out.tables.push(links);

    let mut lengths = Table::new(
        "link-length histogram (hops -> links)",
        vec![Column::str("arch"), Column::str("histogram")],
    );
    for r in &rows {
        let hist: Vec<String> = r
            .link_length_histogram
            .iter()
            .map(|(l, c)| format!("{l}h:{c}"))
            .collect();
        lengths.push(cells![r.name.clone(), hist.join("  ")]);
    }
    out.tables.push(lengths);
    Ok(out)
}

fn run_fig3(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let runner = ctx.runner()?;
    let reports = runner.run_workloads(&ctx.scenario().workload_set());
    let mut out = ExperimentOutput::new("fig3", "");
    let mut t = Table::new(
        &format!(
            "Fig. 3: NoI latency (DES on co-resident traffic), normalized to {}",
            norm_anchor(runner)
        ),
        vec![
            Column::str("mix"),
            Column::str("arch"),
            Column::float("latency(cyc)", 0),
            Column::ratio("norm"),
            Column::float("hops", 2),
        ],
    );
    for rows in reports.chunks(runner.platforms().len()) {
        let norm = normalize_to_floret(rows, |r| r.sim_latency_cycles as f64);
        for (r, (_, v, n)) in rows.iter().zip(norm) {
            t.push(cells![
                r.workload.clone(),
                r.arch.clone(),
                v,
                n,
                r.mean_weighted_hops
            ]);
        }
    }
    out.tables.push(t);
    out.notes.push(
        "Paper: Kite/SIAM up to 2.24x worse than Floret; we reproduce the ordering with \
         milder ratios (see EXPERIMENTS.md)."
            .to_string(),
    );
    Ok(out)
}

fn run_fig4(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let runner = ctx.runner()?;
    let workloads = ctx.scenario().workload_set();
    let cells_in: Vec<(&Workload, &Platform25D)> = workloads
        .iter()
        .flat_map(|wl| runner.platforms().iter().map(move |p| (wl, p)))
        .collect();
    let outcomes = parallel_map(&cells_in, runner.threads(), |&(wl, p)| p.map_workload(wl));
    let mut out = ExperimentOutput::new("fig4", "");
    let mut t = Table::new(
        "Fig. 4: chiplet utilization (wave admission, radius-2 contiguity)",
        vec![
            Column::str("mix"),
            Column::str("arch"),
            Column::uint("waves"),
            Column::float("mean util", 2),
            Column::uint("failed"),
        ],
    );
    for ((wl, p), o) in cells_in.iter().zip(&outcomes) {
        t.push(cells![
            wl.name.clone(),
            p.arch_name(),
            o.waves.len(),
            o.mean_utilization(),
            o.failed.len()
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "Paper: greedy mapping on SWAP leaves many unmapped (NM) chiplets; Floret's SFC \
         mapping keeps utilization high."
            .to_string(),
    );
    Ok(out)
}

fn run_fig5(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let runner = ctx.runner()?;
    let reports = runner.run_workloads(&ctx.scenario().workload_set());
    let mut out = ExperimentOutput::new("fig5", "");
    let mut t = Table::new(
        &format!(
            "Fig. 5: NoI energy (dynamic + static), normalized to {}",
            norm_anchor(runner)
        ),
        vec![
            Column::str("mix"),
            Column::str("arch"),
            Column::sci("energy(pJ)", 3),
            Column::ratio("norm"),
        ],
    );
    let mut sums: std::collections::BTreeMap<String, (f64, u32)> = Default::default();
    for rows in reports.chunks(runner.platforms().len()) {
        let norm = normalize_to_floret(rows, |r| r.noi_energy_pj);
        for (r, (arch, v, n)) in rows.iter().zip(norm) {
            t.push(cells![r.workload.clone(), arch.clone(), v, n]);
            let e = sums.entry(arch).or_insert((0.0, 0));
            e.0 += n;
            e.1 += 1;
        }
    }
    out.tables.push(t);
    let mut avg = Table::new(
        "average normalized energy (paper: SIAM 1.65x, Kite 2.8x)",
        vec![Column::str("arch"), Column::ratio("avg norm")],
    );
    for (arch, (sum, count)) in sums {
        avg.push(cells![arch, sum / f64::from(count)]);
    }
    out.tables.push(avg);
    Ok(out)
}

fn run_fig6(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let sa = scenario_sa_config(ctx);
    let rows = fig6_rows_on(&s.cfg3d, &sa, s.threads);
    let mut out = ExperimentOutput::new("fig6", "");

    let mut edp = Table::new(
        "Fig. 6(a): EDP (J*s); Floret-NoC is performance-only",
        vec![
            Column::str("id"),
            Column::str("model"),
            Column::sci("Floret", 3),
            Column::sci("Joint", 3),
            Column::float("Floret better %", 1),
        ],
    );
    for r in &rows {
        edp.push(cells![
            r.id.clone(),
            r.model.clone(),
            r.floret.edp_js,
            r.joint.edp_js,
            (r.joint.edp_js / r.floret.edp_js - 1.0) * 100.0
        ]);
    }
    out.tables.push(edp);

    let mut temp = Table::new(
        "Fig. 6(b): peak temperature (K)",
        vec![
            Column::str("id"),
            Column::str("model"),
            Column::float("Floret", 1),
            Column::float("Joint", 1),
            Column::float("delta", 1),
        ],
    );
    for r in &rows {
        temp.push(cells![
            r.id.clone(),
            r.model.clone(),
            r.floret.peak_k,
            r.joint.peak_k,
            r.floret.peak_k - r.joint.peak_k
        ]);
    }
    out.tables.push(temp);

    let mut acc = Table::new(
        "Fig. 6(c): top-1 accuracy under thermal noise",
        vec![
            Column::str("id"),
            Column::str("model"),
            Column::float("baseline", 3),
            Column::float("Floret", 3),
            Column::float("Joint", 3),
            Column::float("drop(F) %", 1),
        ],
    );
    for r in &rows {
        let entry = dnn::table1_entry(&r.id).expect("table entry");
        let base = pim::baseline_top1(entry.kind, entry.dataset);
        acc.push(cells![
            r.id.clone(),
            r.model.clone(),
            base,
            base - r.floret.accuracy_drop,
            base - r.joint.accuracy_drop,
            r.floret.accuracy_drop * 100.0
        ]);
    }
    out.tables.push(acc);
    out.notes
        .push("Paper: Floret-NoC ~9% lower EDP, ~13K hotter, up to 11% accuracy loss.".to_string());
    Ok(out)
}

fn run_fig7(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let sa = scenario_sa_config(ctx);
    let maps = fig7_maps(&s.cfg3d, &sa);
    let lo = 300.0;
    let hi = maps.floret_peak_k.max(maps.joint_peak_k);
    let mut out = ExperimentOutput::new("fig7", "");

    let mut summary = Table::new(
        "Fig. 7: bottom-tier hotspots, ResNet-34 on the 100-PE 3D system",
        vec![
            Column::str("NoC"),
            Column::float("peak(K)", 1),
            Column::uint("hotspots(>=330K)"),
        ],
    );
    summary.push(cells![
        "Floret (performance-only)",
        maps.floret_peak_k,
        maps.floret_hotspots
    ]);
    summary.push(cells![
        "Joint (thermal-aware)",
        maps.joint_peak_k,
        maps.joint_hotspots
    ]);
    out.tables.push(summary);

    for (title, slice) in [
        (
            "Fig. 7(a): raw bottom-tier temperatures (K), Floret NoC",
            &maps.floret_bottom_tier,
        ),
        (
            "Fig. 7(b): raw bottom-tier temperatures (K), joint NoC",
            &maps.joint_bottom_tier,
        ),
    ] {
        let width = slice.first().map_or(0, Vec::len);
        let cols = (0..width)
            .map(|x| Column::float(&format!("x{x}"), 1))
            .collect();
        let mut t = Table::new(title, cols);
        for row in slice {
            t.push(row.iter().map(|&v| v.into()).collect());
        }
        out.tables.push(t);
    }

    out.notes.push(format!(
        "Floret NoC heat map (. cold -> @ hot):\n{}",
        ascii_heatmap(&maps.floret_bottom_tier, lo, hi)
    ));
    out.notes.push(format!(
        "Joint NoC heat map:\n{}",
        ascii_heatmap(&maps.joint_bottom_tier, lo, hi)
    ));
    out.notes.push(format!(
        "peak delta = {:.1} K (paper: 17 K for ResNet-34)",
        maps.floret_peak_k - maps.joint_peak_k
    ));
    Ok(out)
}

fn run_dataflows(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    let reports = runner.run_workloads_dataflows(&s.workload_set(), &s.dataflows);
    let n_arch = runner.platforms().len();
    let n_df = s.dataflows.len();
    let base_name = s.dataflows[0].name();
    let last_name = s.dataflows[n_df - 1].name();

    let mut out = ExperimentOutput::new("dataflows", "");
    let mut t = Table::new(
        "Dataflow sweep: NoI traffic, DES latency and compute energy vs the baseline mode",
        vec![
            Column::str("mix"),
            Column::str("df"),
            Column::str("arch"),
            Column::float("traffic(MB)", 2),
            Column::ratio("traffic norm"),
            Column::float("latency(cyc)", 0),
            Column::ratio("latency norm"),
            Column::float("compute(mJ)", 2),
            Column::ratio("compute norm"),
        ],
    );
    let mut last_wins = 0usize;
    let mut grid_cells = 0usize;
    for wl_rows in reports.chunks(n_df * n_arch) {
        let base_rows = &wl_rows[..n_arch]; // first dataflow of the set
        for (di, df_rows) in wl_rows.chunks(n_arch).enumerate() {
            for (r, base) in df_rows.iter().zip(base_rows) {
                let tr = r.total_traffic_bytes as f64;
                let tr_base = (base.total_traffic_bytes as f64).max(1.0);
                let l = r.sim_latency_cycles as f64;
                let l_base = (base.sim_latency_cycles as f64).max(1.0);
                let e = r.compute_energy_pj;
                let e_base = base.compute_energy_pj.max(f64::MIN_POSITIVE);
                t.push(cells![
                    r.workload.clone(),
                    r.dataflow.clone(),
                    r.arch.clone(),
                    tr / 1e6,
                    tr / tr_base,
                    l,
                    l / l_base,
                    e / 1e9,
                    e / e_base
                ]);
                grid_cells += 1;
                if di == n_df - 1 && r.total_traffic_bytes < base.total_traffic_bytes {
                    last_wins += 1;
                }
            }
        }
    }
    out.tables.push(t);
    if n_df > 1 {
        out.notes.push(format!(
            "{grid_cells} grid cells; {last_name} moved strictly fewer inter-chiplet bytes \
             than {base_name} in {last_wins}/{} (mix, arch) cells.",
            grid_cells / n_df
        ));
    }
    if s.dataflows[0] == dnn::Dataflow::WeightStationary {
        // The no-mode-exceeds-WS claim only holds against the WS
        // baseline; a scenario that normalizes to another mode would
        // contradict it.
        out.notes.push(
            "Re-stationing only ever replaces a larger activation slice, so no mode exceeds \
             the WS baseline; OS/IS trade activation slices for staged weight tiles, FL \
             elides fusible chain edges to halo bands."
                .to_string(),
        );
    }
    Ok(out)
}

fn run_mapping_search(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    // The axis is the experiment: the four hand modes plus the searched
    // pseudo-mode, regardless of the scenario's dataflow filter.
    let axis = dnn::Dataflow::all_with_searched();
    let reports = runner.run_workloads_dataflows(&s.workload_set(), &axis);
    let n_arch = runner.platforms().len();
    let n_df = axis.len();
    // Same cycle time on every platform of a runner, so any one prices
    // the EDP; scale pJ*ns down to mJ*ms for the table.
    let edp = |r: &WorkloadReport| runner.platforms()[0].report_edp(r) / 1e15;

    let mut out = ExperimentOutput::new("mapping_search", "");
    let mut t = Table::new(
        "Mapping search: report-level EDP (mJ*ms, NoI+compute) per hand dataflow vs the \
         searched per-layer loop nests",
        vec![
            Column::str("mix"),
            Column::str("arch"),
            Column::float("WS", 3),
            Column::float("OS", 3),
            Column::float("IS", 3),
            Column::float("FL", 3),
            Column::float("best hand", 3),
            Column::float("SRCH", 3),
            Column::ratio("srch/best"),
        ],
    );
    let mut cells_total = 0usize;
    let mut bounded = 0usize;
    let mut strict = 0usize;
    for wl_rows in reports.chunks(n_df * n_arch) {
        for a in 0..n_arch {
            let per_mode: Vec<&WorkloadReport> =
                (0..n_df).map(|d| &wl_rows[d * n_arch + a]).collect();
            let hand: Vec<f64> = per_mode[..n_df - 1].iter().map(|r| edp(r)).collect();
            let srch = edp(per_mode[n_df - 1]);
            let best = hand.iter().copied().fold(f64::INFINITY, f64::min);
            cells_total += 1;
            if srch <= best {
                bounded += 1;
            }
            if srch < best {
                strict += 1;
            }
            t.push(cells![
                per_mode[0].workload.clone(),
                per_mode[0].arch.clone(),
                hand[0],
                hand[1],
                hand[2],
                hand[3],
                best,
                srch,
                srch / best.max(f64::MIN_POSITIVE)
            ]);
        }
    }
    out.tables.push(t);
    out.notes.push(format!(
        "searched EDP <= best hand mode in {bounded}/{cells_total} cells ({strict} strict \
         wins); the resolver anchors on the uniform presets, so the bound holds by \
         construction."
    ));
    out.notes.push(
        "Resolution is a deterministic per-cell function (beam search + preset anchoring) \
         and is memoized in the eval cache under the resolved-mapping fingerprint."
            .to_string(),
    );
    Ok(out)
}

fn run_cost(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let runner = ctx.runner()?;
    let rows = cost_rows_on(runner);
    let mut out = ExperimentOutput::new("cost", "");
    let mut t = Table::new(
        "Section II cost analysis (Eq. 2-5, AMD 864mm2/64-chiplet reference)",
        vec![
            Column::str("arch"),
            Column::float("area(mm2)", 1),
            Column::float("rel. cost", 3),
            Column::ratio(&format!("ratio vs {}", norm_anchor(runner))),
        ],
    );
    for r in rows {
        t.push(cells![
            r.arch,
            r.noi_area_mm2,
            r.relative_cost,
            r.ratio_vs_floret
        ]);
    }
    out.tables.push(t);
    Ok(out)
}

fn run_activations(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let mut out = ExperimentOutput::new("activations", "");
    let mut t = Table::new(
        "Section II: linear vs skip activation traffic (ImageNet)",
        vec![
            Column::str("model"),
            Column::uint("linear(elems)"),
            Column::uint("skip(elems)"),
            Column::float("linear/skip", 2),
            Column::float("skip share %", 1),
        ],
    );
    for r in activation_rows() {
        t.push(cells![
            r.model,
            r.sequential,
            r.skip,
            r.linear_over_skip,
            r.skip_fraction * 100.0
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "Paper (ResNet-34): linear 4.5x skip; skips ~19% of propagated activations.".to_string(),
    );
    Ok(out)
}

fn run_transformer(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let mut out = ExperimentOutput::new("transformer", "");
    for (name, rows) in transformer_rows() {
        let mut t = Table::new(
            &format!("Section IV: intermediate-matrix storage vs weights, {name}"),
            vec![
                Column::uint("seq"),
                Column::uint("inter/layer"),
                Column::float("vs attn W (fp16/int8)", 2),
                Column::float("vs layer W (same prec)", 2),
            ],
        );
        for r in rows {
            t.push(cells![
                u64::from(r.seq),
                r.intermediates_per_layer,
                r.ratio_attention_fp16_int8,
                r.ratio_layer_same_precision
            ]);
        }
        out.tables.push(t);
    }
    let mut life = Table::new(
        "write-endurance lifetime if intermediates lived in ReRAM",
        vec![
            Column::str("model"),
            Column::uint("cell-writes/inference"),
            Column::uint("lifetime (inferences)"),
        ],
    );
    for (name, cfg) in [
        ("BERT-Tiny", BertConfig::tiny()),
        ("BERT-Base", BertConfig::base()),
    ] {
        let writes = cfg.writes_per_inference(512);
        life.push(cells![
            name,
            writes,
            lifetime_inferences(writes, 100_000_000, 1_000_000)
        ]);
    }
    out.tables.push(life);
    out.notes.push(
        "Paper: BERT-Base 8.98x, BERT-Tiny 2.06x. Our fp16/int8 attention-weight accounting \
         reproduces the BERT-Base regime at seq=512 (~9.3x)."
            .to_string(),
    );
    out.notes.push(
        "A datacenter accelerator serves billions of inferences: NVM-PIM is unsuitable for \
         attention intermediates, motivating heterogeneous integration."
            .to_string(),
    );
    Ok(out)
}

fn run_hetero(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let mut out = ExperimentOutput::new("hetero", "");
    for (name, bert, seq) in [
        ("BERT-Tiny", BertConfig::tiny(), 128u32),
        ("BERT-Base", BertConfig::base(), 512u32),
    ] {
        let cfg = HeteroConfig {
            bert,
            seq,
            ..HeteroConfig::default()
        };
        let mut t = Table::new(
            &format!("{name} @ seq={seq}: platform design points"),
            vec![
                Column::str("platform"),
                Column::sci("latency(ns)", 3),
                Column::sci("energy(pJ)", 3),
                Column::uint("PIM"),
                Column::uint("dig"),
                Column::uint("writes/inf"),
                Column::str("lifetime(inf)"),
            ],
        );
        for eval in transformer_design_points(&cfg) {
            let lifetime = if eval.lifetime_inferences == u64::MAX {
                "unlimited".to_string()
            } else {
                format!("{:.1e}", eval.lifetime_inferences as f64)
            };
            t.push(cells![
                eval.platform.to_string(),
                eval.latency_ns,
                eval.energy_pj,
                eval.pim_chiplets,
                eval.digital_chiplets,
                eval.crossbar_writes,
                lifetime
            ]);
        }
        out.tables.push(t);
    }
    out.notes.push(
        "All-PIM dies on ReRAM endurance within ~1e6 inferences; all-digital pays 3-4x the \
         energy on the static kernels. The heterogeneous platform keeps the SFC PIM macro \
         for FF/projections and splices digital chiplets in for attention — the Section IV \
         proposal, quantified."
            .to_string(),
    );
    Ok(out)
}

fn run_patterns(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    let hw = &s.cfg25.hw;
    let seed = s.seed_or(7);
    let mut out = ExperimentOutput::new("patterns", "");

    let mut synth = Table::new(
        "synthetic traffic characterization (4 KB/flow)",
        vec![
            Column::str("pattern"),
            Column::str("arch"),
            Column::float("avg hops", 2),
            Column::uint("makespan"),
            Column::sci("energy(pJ)", 3),
        ],
    );
    for pattern in netsim::all_patterns() {
        for p in runner.platforms() {
            let flows = generate_pattern(p.topology(), pattern, 4096, seed);
            let ana = analyze_with_table(p.topology(), hw, &flows, p.route_table());
            let des = simulate_with_table(
                p.topology(),
                hw,
                &flows,
                &SimConfig::default(),
                p.route_table(),
            );
            synth.push(cells![
                pattern.to_string(),
                p.arch_name(),
                ana.mean_weighted_hops,
                des.makespan_cycles,
                ana.total_energy_pj
            ]);
        }
    }
    out.tables.push(synth);

    let mut pipe = Table::new(
        "pipeline traffic along each architecture's own mapping order",
        vec![
            Column::str("arch"),
            Column::float("avg hops", 2),
            Column::uint("makespan"),
            Column::sci("energy(pJ)", 3),
        ],
    );
    for p in runner.platforms() {
        // Floret streams along its curve; the others along id (row-major)
        // order — each architecture's natural dataflow mapping.
        let order: Vec<NodeId> = match p.layout() {
            Some(layout) => layout.global_order(),
            None => (0..topology::narrow::u32_idx(p.topology().node_count()))
                .map(NodeId)
                .collect(),
        };
        let flows = generate_pipeline(&order, 4096);
        let ana = analyze_with_table(p.topology(), hw, &flows, p.route_table());
        let des = simulate_with_table(
            p.topology(),
            hw,
            &flows,
            &SimConfig::default(),
            p.route_table(),
        );
        pipe.push(cells![
            p.arch_name(),
            ana.mean_weighted_hops,
            des.makespan_cycles,
            ana.total_energy_pj
        ]);
    }
    out.tables.push(pipe);
    out.notes.push(
        "Mapped along its own curve, Floret's pipeline is pure single-hop — the \
         dataflow-aware premise. Random/complement traffic is where low-bisection chains \
         pay, which is why Floret is a co-design of topology AND mapping."
            .to_string(),
    );
    Ok(out)
}

fn run_poisson_experiment(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    // WL3 (the largest mix) is the paper-pinned population; honor a
    // scenario's workload subset when it excludes WL3.
    let wl_name = if s.workloads.iter().any(|n| n == "WL3") {
        "WL3".to_string()
    } else {
        s.workloads[0].clone()
    };
    let wl = dnn::table2_workload(&wl_name).expect("resolved workload");
    let graphs = Platform25D::task_graphs(&wl);

    let mut out = ExperimentOutput::new("poisson", "");
    let mut t = Table::new(
        &format!(
            "Poisson arrivals, {wl_name} task population ({} DNNs)",
            graphs.len()
        ),
        vec![
            Column::str("arch"),
            Column::float("load", 1),
            Column::float("utilization", 2),
            Column::float("mean wait", 2),
            Column::float("mean tasks", 1),
            Column::uint("failed"),
        ],
    );
    for mean_interarrival in [2.0, 1.0, 0.5] {
        let arr = ArrivalConfig {
            mean_interarrival,
            mean_service: 8.0,
            seed: s.seed_or(0xA221),
        };
        for platform in runner.platforms() {
            // The strategy axis: paper default per architecture, or the
            // scenario's forced `--strategy` selection.
            let strategy = platform.strategy_for(s.strategy, true)?;
            let o = run_poisson(
                &graphs,
                s.cfg25.node_count(),
                s.cfg25.node_capacity(),
                &strategy,
                &arr,
            );
            t.push(cells![
                platform.arch_name(),
                8.0 / mean_interarrival,
                o.utilization,
                o.mean_wait,
                o.mean_resident,
                o.failed.len()
            ]);
        }
    }
    out.tables.push(t);
    out.notes.push(
        "Higher offered load raises utilization and admission waits; the SFC mapping \
         sustains the same load with contiguous placements throughout."
            .to_string(),
    );
    Ok(out)
}

/// Per-tenant single-request service latency from the PIM compute cost
/// model under the scenario's first dataflow. Shared by the `serving`
/// and `resilience` experiments, so the resilience golden's zero-fault
/// row stays cell-identical to `serving`.
fn tenant_service_ns(s: &ResolvedScenario, spec: &ServingSpec) -> Vec<u64> {
    let dataflow = s.dataflows[0];
    spec.tenants
        .iter()
        .map(|t| {
            let e = dnn::table1_entry(&t.model).expect("resolve() validated tenant models");
            let g = build_model(e.kind, e.dataset).expect("table models build");
            let sg = SegmentGraph::from_layer_graph(&g);
            let cost = pim::model_cost_with(&sg, &s.cfg25.pim, dataflow);
            (cost.latency_ns.round() as u64).max(1)
        })
        .collect()
}

/// The paper-pinned serving/resilience seed (shared so the two
/// experiments generate identical request streams).
const SERVING_SEED: u64 = 0x5E41;

fn run_serving_experiment(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let spec = s.serving.clone().unwrap_or_default();
    // `resolve()` validates an explicit block; the default is validated
    // here so a future default regression cannot slip through.
    spec.validate().map_err(ScenarioError::Serving)?;

    let service_ns = tenant_service_ns(s, &spec);
    let outcome = simulate_serving(&spec, &service_ns, s.seed_or(SERVING_SEED), s.threads);

    let mut out = ExperimentOutput::new("serving", "");
    let mut lat = Table::new(
        &format!(
            "Serving latency vs offered load ({} chips, {} tenants, {} ms horizon)",
            spec.fleet,
            spec.tenants.len(),
            spec.horizon_ms
        ),
        vec![
            Column::float("load", 2),
            Column::float("offered rps", 0),
            Column::uint("requests"),
            Column::uint("completed"),
            Column::uint("rejected"),
            Column::percentile("p50"),
            Column::percentile("p95"),
            Column::percentile("p99"),
            Column::float("slo attain", 4),
            Column::float("mean batch", 2),
        ],
    );
    let mut util = Table::new(
        "Per-chip utilization over time (busy fraction per horizon quarter)",
        vec![
            Column::float("load", 2),
            Column::uint("chip"),
            Column::float("q1", 3),
            Column::float("q2", 3),
            Column::float("q3", 3),
            Column::float("q4", 3),
        ],
    );
    let slo_ns = spec.slo_ms * 1e6;
    for lp in &outcome.per_load {
        lat.push(vec![
            CellValue::Float(lp.load),
            CellValue::Float(lp.offered_rps),
            CellValue::UInt(lp.offered),
            CellValue::UInt(lp.completed),
            CellValue::UInt(lp.rejected),
            CellValue::Duration(lp.p50_ns as f64),
            CellValue::Duration(lp.p95_ns as f64),
            CellValue::Duration(lp.p99_ns as f64),
            CellValue::Float(lp.slo_attainment),
            CellValue::Float(lp.mean_batch),
        ]);
        for (chip, slices) in lp.chip_util.iter().enumerate() {
            let mut row = vec![CellValue::Float(lp.load), CellValue::UInt(chip as u64)];
            row.extend(slices.iter().map(|&u| CellValue::Float(u)));
            util.push(row);
        }
        let mut h = Histogram::new(
            &format!("End-to-end latency distribution at load {:.2}", lp.load),
            "ns",
            vec![
                0.0,
                slo_ns / 4.0,
                slo_ns / 2.0,
                slo_ns,
                2.0 * slo_ns,
                4.0 * slo_ns,
                8.0 * slo_ns,
            ],
        );
        for &l in &lp.latencies_ns {
            h.record(l as f64);
        }
        out.histograms.push(h);
    }
    out.tables.push(lat);
    out.tables.push(util);
    out.notes.push(format!(
        "{} requests, {} calendar-queue events across the fleet; SLO {} ms; rejections \
         count against attainment.",
        outcome.requests, outcome.events, spec.slo_ms
    ));
    out.notes.push(
        "Deterministic at any thread count: streams are seeded per (tenant, load), chips \
         simulate disjoint shards, and results merge in (load, chip) order."
            .to_string(),
    );
    Ok(out)
}

/// Nanoseconds of re-mapping stall charged to every surviving chip per
/// task the mapper had to move off a lost chip.
const REMAP_NS_PER_TASK: u64 = 50_000;

fn run_resilience(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    let spec = s.serving.clone().unwrap_or_default();
    spec.validate().map_err(ScenarioError::Serving)?;
    let fspec = s.faults.clone().unwrap_or_default();
    fspec.validate().map_err(ScenarioError::Faults)?;
    let service_ns = tenant_service_ns(s, &spec);
    let seed = s.seed_or(SERVING_SEED);

    // The mapping/DES side runs on Floret when the scenario includes
    // it (the paper's architecture), like the `faults` experiment.
    let floret = NoiArch::Floret { lambda: 6 };
    let platform = if s.archs.contains(&floret) {
        runner.platform(&floret)
    } else {
        &runner.platforms()[0]
    };
    let wl_name = if s.workloads.iter().any(|n| n == "WL1") {
        "WL1".to_string()
    } else {
        s.workloads[0].clone()
    };
    let wl = dnn::table2_workload(&wl_name).expect("resolved workload");
    let topo = platform.topology();
    let hw = &s.cfg25.hw;
    let node_count = s.cfg25.node_count();
    let horizon_ns = (spec.horizon_ms * 1e6).round() as u64;

    let mut out = ExperimentOutput::new("resilience", "");
    let mut lat = Table::new(
        &format!(
            "resilience vs fault scale ({} chips, {} tenants, {} ms horizon)",
            spec.fleet,
            spec.tenants.len(),
            spec.horizon_ms
        ),
        vec![
            Column::float("scale", 2),
            Column::float("load", 2),
            Column::uint("requests"),
            Column::uint("completed"),
            Column::uint("rejected"),
            Column::uint("timed out"),
            Column::uint("retries"),
            Column::uint("failovers"),
            Column::percentile("p50"),
            Column::percentile("p99"),
            Column::float("slo attain", 4),
            Column::float("mean batch", 2),
        ],
    );
    let mut acct = Table::new(
        &format!(
            "fault-plan accounting on {} ({wl_name}): remapping and NoI detours",
            platform.arch_name()
        ),
        vec![
            Column::float("scale", 2),
            Column::uint("chip downs"),
            Column::uint("link faults"),
            Column::uint("remapped tasks"),
            Column::duration("remap penalty"),
            Column::uint("fault wait cyc"),
            Column::uint("faulted hops"),
            Column::float("mean hop lat", 2),
        ],
    );

    let mut des_scratch = SimScratch::new();
    // One fault-free replay fixes the DES cycle budget; every scale's
    // blackout onsets then map proportionally onto it so the windows
    // land inside the replay rather than past its makespan.
    let flows = generate_pattern(topo, TrafficPattern::UniformRandom, 4096, seed);
    let base_makespan = simulate_with_table(
        topo,
        hw,
        &flows,
        &SimConfig::default(),
        platform.route_table(),
    )
    .makespan_cycles;
    for &scale in &[0.0, 0.5, 1.0, 2.0] {
        let scaled = fspec.scaled(scale);
        let plan = FaultPlan::generate(
            &scaled,
            spec.fleet,
            topo.link_count(),
            horizon_ns,
            seed ^ 0xFA17,
        );

        // Permanent chip loss re-maps the lost chips' share of the
        // workload; the churn departures price the serving-side stall.
        let downs = plan.distinct_down_chips();
        let departures = if downs.is_empty() {
            0
        } else {
            // Each fleet chip owns a deterministic slab of chiplets;
            // losing it takes those chiplets out of the mapping.
            let failed: Vec<NodeId> = (0..downs.len() * 3)
                .map(|i| NodeId(topology::narrow::u32_idx((i * 37 + 13) % node_count)))
                .collect();
            platform
                .map_workload_churn_with_faults(&wl, &failed)
                .departures
        };
        let remap_penalty_ns = departures as u64 * REMAP_NS_PER_TASK;

        let params = ResilienceParams::from_spec(&scaled, plan.clone(), remap_penalty_ns);
        let outcome = simulate_resilient_serving(&spec, &params, &service_ns, seed, s.threads);
        for lp in &outcome.per_load {
            lat.push(vec![
                CellValue::Float(scale),
                CellValue::Float(lp.load),
                CellValue::UInt(lp.offered),
                CellValue::UInt(lp.completed),
                CellValue::UInt(lp.rejected),
                CellValue::UInt(lp.timed_out),
                CellValue::UInt(lp.retries),
                CellValue::UInt(lp.failovers),
                CellValue::Duration(lp.p50_ns as f64),
                CellValue::Duration(lp.p99_ns as f64),
                CellValue::Float(lp.slo_attainment),
                CellValue::Float(lp.mean_batch),
            ]);
        }

        // The same plan's link blackouts replay in the packet DES:
        // each onset maps proportionally from the serving horizon onto
        // the baseline makespan, and the blackout lasts its wall-clock
        // duration at the 1 us = 1 cycle compression. Uniform
        // background traffic then measures the per-hop stall.
        let windows: Vec<(topology::LinkId, u64, u64)> = plan
            .link_windows()
            .iter()
            .map(|&(l, s0, e0)| {
                let start =
                    ((s0 as u128 * base_makespan as u128) / horizon_ns.max(1) as u128) as u64;
                (l, start, start + ((e0 - s0) / 1000).max(1))
            })
            .collect();
        let faults = LinkFaults::from_link_windows(topo, &windows);
        let report = simulate_faulty_with_scratch(
            topo,
            hw,
            &flows,
            &SimConfig::default(),
            platform.route_table(),
            &faults,
            &mut des_scratch,
        );
        acct.push(vec![
            CellValue::Float(scale),
            CellValue::UInt(plan.chip_faults.len() as u64),
            CellValue::UInt(plan.link_faults.len() as u64),
            CellValue::UInt(departures as u64),
            CellValue::Duration(remap_penalty_ns as f64),
            CellValue::UInt(report.total_fault_wait_cycles),
            CellValue::UInt(report.faulted_traversals),
            CellValue::Float(report.mean_hop_header_latency_cycles),
        ]);
    }
    out.tables.push(lat);
    out.tables.push(acct);
    out.notes.push(format!(
        "Fault plan: seeded per-chip MTBF/MTTR renewal + fabric link blackouts, scaled \
         0/0.5/1/2x; retry backoff {}us base capped {}us, {} retries, {} ms timeout.",
        fspec.retry.backoff_base_us,
        fspec.retry.backoff_cap_us,
        fspec.retry.max_retries,
        fspec.retry.timeout_ms
    ));
    out.notes.push(
        "Deterministic at any thread count; request conservation (injected = completed + \
         rejected + timed out) holds at every point; the 0.00-scale row replays the \
         `serving` experiment exactly."
            .to_string(),
    );
    Ok(out)
}

fn run_faults(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let runner = ctx.runner()?;
    let floret = NoiArch::Floret { lambda: 6 };
    let platform = if s.archs.contains(&floret) {
        runner.platform(&floret)
    } else {
        &runner.platforms()[0]
    };
    let wl_name = if s.workloads.iter().any(|n| n == "WL1") {
        "WL1".to_string()
    } else {
        s.workloads[0].clone()
    };
    let wl = dnn::table2_workload(&wl_name).expect("resolved workload");
    let node_count = s.cfg25.node_count();
    let topo = platform.topology();
    let hw = &s.cfg25.hw;
    let seed = s.seed_or(7);

    let mut out = ExperimentOutput::new("faults", "");
    let mut t = Table::new(
        &format!(
            "fault injection on {} ({wl_name}): SFC re-stitching",
            platform.arch_name()
        ),
        vec![
            Column::uint("faults"),
            Column::uint("mapped"),
            Column::uint("failed"),
            Column::float("mean hops", 2),
            Column::uint("departures"),
            Column::uint("live flows"),
            Column::float("des hop lat", 2),
        ],
    );
    let fault_counts = [0usize, 2, 5, 10, 15, 20, 30];
    let rows = parallel_map(&fault_counts, runner.threads(), |&n_faults| {
        // Deterministic fault pattern: every k-th chiplet of the grid.
        let failed: Vec<NodeId> = (0..n_faults)
            .map(|i| NodeId(topology::narrow::u32_idx((i * 37 + 13) % node_count)))
            .collect();
        let outcome = platform.map_workload_churn_with_faults(&wl, &failed);
        let (hops, _) = platform.degraded_hops(&wl, &failed);
        // Replay uniform background traffic through the packet DES on a
        // detour table that prices every link touching a dead chiplet
        // at infinity: the post-fault per-hop header latency.
        let dead: Vec<topology::LinkId> = topo
            .links()
            .iter()
            .filter(|l| failed.contains(&l.a) || failed.contains(&l.b))
            .map(|l| l.id)
            .collect();
        let detour = RouteTable::build_excluding(topo, hw, &dead);
        let flows: Vec<netsim::Flow> =
            generate_pattern(topo, TrafficPattern::UniformRandom, 4096, seed)
                .into_iter()
                .filter(|f| f.src != f.dst && detour.next_link(f.src, f.dst).is_some())
                .collect();
        let des = simulate_with_table(topo, hw, &flows, &SimConfig::default(), &detour);
        (
            n_faults,
            outcome.placements.len(),
            outcome.failed.len(),
            hops,
            outcome.departures,
            flows.len(),
            des.mean_hop_header_latency_cycles,
        )
    });
    for (n_faults, mapped, failed, hops, departures, live, hop_lat) in rows {
        t.push(cells![
            n_faults, mapped, failed, hops, departures, live, hop_lat
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "The curve re-stitches over dead chiplets: hop counts grow gracefully with the \
         fault count and every task still completes (no task loss until capacity itself \
         is exhausted)."
            .to_string(),
    );
    out.notes.push(
        "`des hop lat` replays uniform traffic through the packet DES on a detour table \
         that avoids every link touching a dead chiplet; flows with an unreachable \
         endpoint are dropped from the replay (`live flows`)."
            .to_string(),
    );
    Ok(out)
}

fn run_pareto(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let platform = Platform3D::new(&s.cfg3d).expect("3d platform builds");
    let net = build_model(ModelKind::ResNet34, Dataset::Cifar10).expect("resnet34 builds");
    let sg = SegmentGraph::from_layer_graph(&net);
    let nsga = NsgaConfig {
        population: 32,
        generations: 30,
        seed: s.seed_or(0xFACE),
    };
    let front = platform.pareto_front(&sg, &nsga).expect("resnet34 fits");

    let mut out = ExperimentOutput::new("pareto", "");
    let mut t = Table::new(
        "ResNet-34 placement Pareto front (EDP vs peak temperature)",
        vec![
            Column::float("EDP(norm)", 3),
            Column::float("peak(K)", 1),
            Column::uint("hotspots"),
            Column::float("acc drop %", 1),
        ],
    );
    for p in &front {
        t.push(cells![
            p.edp_norm,
            p.peak_k,
            p.eval.hotspots,
            p.eval.accuracy_drop * 100.0
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "The SFC order anchors EDP = 1.0; the paper's joint design point sits on the knee \
         of this front."
            .to_string(),
    );
    Ok(out)
}

fn run_ablation_kite(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let (w, h) = (s.cfg25.width, s.cfg25.height);
    let hw = &s.cfg25.hw;
    let seed = s.seed_or(11);
    let base = kite(w, h).map_err(ScenarioError::Topology)?;

    let mut out = ExperimentOutput::new("ablation_kite", "");
    let mut t = Table::new(
        &format!("Kite skip-link sweep ({w}x{h}): structure, area, uniform traffic"),
        vec![
            Column::uint("skips"),
            Column::uint("links"),
            Column::uint("max ports"),
            Column::float("area(mm2)", 1),
            Column::float("avg hops", 2),
            Column::sci("energy(pJ)", 3),
        ],
    );
    for skips in [0usize, 4, 8, 16, 32] {
        let topo = if skips == 0 {
            base.clone()
        } else {
            kite_with_skips(w, h, skips, 7).map_err(ScenarioError::Topology)?
        };
        let max_ports = topo
            .nodes()
            .iter()
            .map(|n| topo.ports(n.id))
            .max()
            .unwrap_or(0);
        let flows = generate_pattern(&topo, TrafficPattern::UniformRandom, 4096, seed);
        let ana = analyze(&topo, hw, &flows);
        t.push(cells![
            skips,
            topo.link_count(),
            max_ports,
            hw.noi_area_mm2(&topo),
            ana.mean_weighted_hops,
            ana.total_energy_pj
        ]);
    }
    out.tables.push(t);
    out.notes.push(
        "Skips trade area (bigger routers, more wire) for shorter random-traffic paths — \
         the Kite family's design space. For DNN pipeline traffic the skips are dead \
         weight, which is the paper's core argument against them."
            .to_string(),
    );
    Ok(out)
}

fn run_ablation_thermal(ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
    let s = ctx.scenario();
    let net = build_model(ModelKind::ResNet34, Dataset::Cifar10).expect("resnet34 builds");
    let sg = SegmentGraph::from_layer_graph(&net);
    let mut out = ExperimentOutput::new("ablation_thermal", "");

    let mut stacks = Table::new(
        "M3D vs TSV: same workload, same SFC placement",
        vec![
            Column::str("stack"),
            Column::float("peak(K)", 1),
            Column::float("mean(K)", 1),
            Column::uint("hotspots"),
            Column::float("acc drop %", 1),
        ],
    );
    for (name, thermal) in [("M3D", ThermalConfig::m3d()), ("TSV", ThermalConfig::tsv())] {
        let cfg = SystemConfig {
            thermal,
            ..s.cfg3d.clone()
        };
        let platform = Platform3D::new(&cfg).expect("3d platform builds");
        let eval = platform.evaluate(&sg, &platform.sfc_order()).expect("fits");
        stacks.push(cells![
            name,
            eval.peak_k,
            eval.mean_k,
            eval.hotspots,
            eval.accuracy_drop * 100.0
        ]);
    }
    out.tables.push(stacks);

    let mut sweep = Table::new(
        "vertical-conductance sweep (W/K) on the SFC placement",
        vec![
            Column::float("g_vert", 1),
            Column::float("peak(K)", 1),
            Column::float("acc drop %", 1),
        ],
    );
    for g in [0.3, 0.6, 1.0, 2.0, 4.0] {
        let cfg = SystemConfig {
            thermal: ThermalConfig {
                g_vertical: g,
                ..ThermalConfig::m3d()
            },
            ..s.cfg3d.clone()
        };
        let platform = Platform3D::new(&cfg).expect("3d platform builds");
        let eval = platform.evaluate(&sg, &platform.sfc_order()).expect("fits");
        sweep.push(cells![g, eval.peak_k, eval.accuracy_drop * 100.0]);
    }
    out.tables.push(sweep);
    out.notes.push(
        "M3D's thin inter-layer dielectric conducts heat to the sink far better than TSV \
         bonding layers (Section I), so the same mapping runs cooler."
            .to_string(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_complete() {
        assert_eq!(table1_rows().len(), 13);
        assert_eq!(table2_rows().len(), 5);
    }

    #[test]
    fn fig2_has_four_architectures() {
        let cfg = SystemConfig::datacenter_25d();
        let rows = fig2_summaries(&cfg);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.routers, 100);
        }
    }

    #[test]
    fn cost_rows_normalized_to_floret() {
        let cfg = SystemConfig::datacenter_25d();
        let rows = cost_rows(&cfg);
        let floret = rows.iter().find(|r| r.arch == "Floret").unwrap();
        assert!((floret.ratio_vs_floret - 1.0).abs() < 1e-12);
        for r in &rows {
            if r.arch != "Floret" {
                assert!(r.ratio_vs_floret > 1.0, "{} must cost more", r.arch);
            }
        }
    }

    #[test]
    fn fig6_models_fit_the_3d_system() {
        let cfg = SystemConfig::stacked_3d();
        let capacity = cfg.node_capacity() * cfg.node_count() as u64;
        for e in fig6_models() {
            let g = build_model(e.kind, e.dataset).unwrap();
            assert!(
                g.total_params() < capacity,
                "{} does not fit the 3D stack",
                e.id
            );
        }
    }

    #[test]
    fn transformer_rows_cover_both_models() {
        let rows = transformer_rows();
        assert_eq!(rows.len(), 2);
        for (_, sweep) in &rows {
            assert_eq!(sweep.len(), 6);
        }
    }

    #[test]
    fn fig345_single_run_is_complete() {
        let cfg = SystemConfig::datacenter_25d();
        let r = run_arch_workload(&cfg, NoiArch::Floret { lambda: 6 }, "WL1");
        assert_eq!(r.arch, "Floret");
        assert_eq!(r.workload, "WL1");
        assert!(r.total_traffic_bytes > 0);
        assert!(
            r.noi_energy_pj > r.noi_dynamic_energy_pj,
            "static share present"
        );
    }

    #[test]
    fn activation_rows_cover_resnets() {
        let rows = activation_rows();
        assert_eq!(rows.len(), 3);
        let r34 = &rows[1];
        assert!(r34.skip_fraction > 0.05 && r34.skip_fraction < 0.3);
    }

    #[test]
    fn registry_covers_every_paper_artifact() {
        let names = registry().names();
        assert_eq!(names.len(), 22);
        for expected in [
            "table1",
            "table2",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "dataflows",
            "mapping_search",
            "cost",
            "activations",
            "transformer",
            "hetero",
            "patterns",
            "poisson",
            "faults",
            "serving",
            "resilience",
            "pareto",
            "ablation_kite",
            "ablation_thermal",
        ] {
            assert!(names.contains(&expected), "missing experiment `{expected}`");
        }
        for spec in registry().specs() {
            assert!(!spec.description.is_empty(), "{} undescribed", spec.name);
        }
    }

    #[test]
    fn mapping_search_never_loses_a_cell_to_the_hand_modes() {
        use crate::scenario::{CellValue, Scenario};
        let mut s = Scenario::new("mapping_search");
        s.archs = vec![NoiArch::Floret { lambda: 6 }, NoiArch::Kite];
        s.workloads = vec!["WL3".to_string()];
        let out = registry().run_scenario(&s).unwrap();
        out.validate().unwrap();
        let t = &out.tables[0];
        assert_eq!(t.rows.len(), 2, "one row per (mix, arch) cell");
        for row in &t.rows {
            let (best, srch, ratio) = match (&row[6], &row[7], &row[8]) {
                (CellValue::Float(b), CellValue::Float(s), CellValue::Float(r)) => (*b, *s, *r),
                other => panic!("unexpected cell types {other:?}"),
            };
            assert!(
                srch <= best,
                "searched EDP {srch} must not exceed the best hand mode {best}"
            );
            assert!(ratio <= 1.0, "srch/best ratio {ratio} > 1");
        }
        assert!(out.notes.iter().any(|n| n.contains("by construction")));
    }

    #[test]
    fn cheap_experiments_produce_schema_valid_output() {
        use crate::scenario::Scenario;
        for name in [
            "table1",
            "table2",
            "cost",
            "activations",
            "transformer",
            "hetero",
            "fig2",
        ] {
            let out = registry()
                .run_scenario(&Scenario::new(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.experiment, name);
            assert!(!out.tables.is_empty(), "{name} produced no tables");
            out.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            for table in &out.tables {
                assert!(
                    !table.rows.is_empty(),
                    "{name}: empty table `{}`",
                    table.title
                );
            }
        }
    }

    #[test]
    fn serving_experiment_reports_percentiles_and_slo() {
        use crate::scenario::Scenario;
        let out = registry().run_scenario(&Scenario::new("serving")).unwrap();
        out.validate().unwrap();
        assert_eq!(out.tables.len(), 2);
        // Two offered-load points on the default 2-chip fleet.
        assert_eq!(out.tables[0].rows.len(), 2);
        assert_eq!(out.tables[1].rows.len(), 4);
        assert_eq!(out.histograms.len(), 2);
        for h in &out.histograms {
            assert!(h.total() > 0, "histogram `{}` is empty", h.title);
        }
    }

    #[test]
    fn resilience_experiment_replays_serving_at_zero_fault_scale() {
        use crate::scenario::Scenario;
        let reg = registry();
        let res = reg.run_scenario(&Scenario::new("resilience")).unwrap();
        res.validate().unwrap();
        assert_eq!(res.tables.len(), 2);
        // Four fault scales x two offered-load points.
        assert_eq!(res.tables[0].rows.len(), 8);
        assert_eq!(res.tables[1].rows.len(), 4);

        let srv = reg.run_scenario(&Scenario::new("serving")).unwrap();
        // The 0.00-scale rows are cell-identical to the serving
        // experiment on every shared column, with no fault activity.
        // lat columns: scale, load, requests, completed, rejected,
        // timed out, retries, failovers, p50, p99, slo attain, mean batch.
        for (row, srow) in res.tables[0].rows[..2].iter().zip(&srv.tables[0].rows) {
            assert_eq!(row[0], CellValue::Float(0.0));
            assert_eq!(row[1], srow[0], "load");
            assert_eq!(row[2], srow[2], "requests");
            assert_eq!(row[3], srow[3], "completed");
            assert_eq!(row[4], srow[4], "rejected");
            assert_eq!(row[5], CellValue::UInt(0), "timed out");
            assert_eq!(row[6], CellValue::UInt(0), "retries");
            assert_eq!(row[7], CellValue::UInt(0), "failovers");
            assert_eq!(row[8], srow[5], "p50");
            assert_eq!(row[9], srow[7], "p99");
            assert_eq!(row[10], srow[8], "slo attain");
            assert_eq!(row[11], srow[9], "mean batch");
        }
        // At full fault scale the plan is non-empty and the fleet
        // actually degrades: some fault activity must be visible.
        let active: u64 = res.tables[0].rows[4..]
            .iter()
            .map(|r| {
                let mut sum = 0;
                for cell in &r[5..8] {
                    if let CellValue::UInt(v) = cell {
                        sum += v;
                    }
                }
                sum
            })
            .sum();
        assert!(active > 0, "no retries/timeouts/failovers at scale >= 1");
    }

    #[test]
    fn scenario_arch_subset_narrows_the_grid() {
        use crate::scenario::Scenario;
        let mut s = Scenario::new("fig3");
        s.archs = vec![NoiArch::Floret { lambda: 6 }, NoiArch::Kite];
        s.workloads = vec!["WL1".to_string()];
        let out = registry().run_scenario(&s).unwrap();
        // One workload x two architectures.
        assert_eq!(out.tables[0].rows.len(), 2);
        out.validate().unwrap();
    }

    #[test]
    fn registry_rejects_unknown_experiments() {
        use crate::scenario::{Scenario, ScenarioError};
        assert_eq!(
            registry()
                .run_scenario(&Scenario::new("fig99"))
                .unwrap_err(),
            ScenarioError::UnknownExperiment("fig99".to_string())
        );
    }
}

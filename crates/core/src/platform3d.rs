//! The 3D PIM platform of Section III: a Floret-inspired SFC NoC over a
//! stacked PE grid, with performance-only and joint performance-thermal
//! layer placement.

use dnn::SegmentGraph;
use mapper::{map_task_sfc, CapacityLedger, MapError, TaskId, TaskPlacement};
use netsim::{analyze_with_table, Flow, RouteTable};
use opt::{simulated_annealing, Problem, SaConfig};
use pim::{segment_cost, ThermalNoiseModel};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use thermal::{solve, PowerMap, ThermalMap};
use topology::{FloretLayout, NodeId, Topology, TopologyError};

use crate::config::SystemConfig;

/// A 3D-stacked PIM system with an SFC NoC.
#[derive(Debug)]
pub struct Platform3D {
    cfg: SystemConfig,
    topo: Topology,
    layout: FloretLayout,
    route: RouteTable,
    noise: ThermalNoiseModel,
}

/// Evaluation of one layer-to-PE placement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacementEval {
    /// Communication makespan (analytical), cycles.
    pub comm_cycles: u64,
    /// NoC energy per inference, pJ.
    pub comm_energy_pj: f64,
    /// Compute latency of one inference pass (sum of stage latencies), ns.
    pub compute_ns: f64,
    /// Compute energy per inference, pJ.
    pub compute_energy_pj: f64,
    /// End-to-end delay per inference, ns.
    pub delay_ns: f64,
    /// Total energy per inference, pJ.
    pub energy_pj: f64,
    /// Energy-delay product, joule-seconds (Fig. 6(a) metric).
    pub edp_js: f64,
    /// Peak steady-state temperature, K (Fig. 6(b) metric).
    pub peak_k: f64,
    /// Mean temperature, K.
    pub mean_k: f64,
    /// Cells at or above 330 K (conductance-collapse onset).
    pub hotspots: usize,
    /// Top-1 accuracy drop induced by thermal noise (Fig. 6(c) metric).
    pub accuracy_drop: f64,
}

impl Platform3D {
    /// Builds the 3D platform.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the SFC NoC generator.
    pub fn new(cfg: &SystemConfig) -> Result<Self, TopologyError> {
        let (topo, layout) = topology::sfc3d(cfg.width, cfg.height, cfg.tiers)?;
        let route = RouteTable::build(&topo, &cfg.hw);
        Ok(Platform3D {
            cfg: cfg.clone(),
            topo,
            layout,
            route,
            noise: ThermalNoiseModel::default(),
        })
    }

    /// The underlying NoC topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Performance-only placement order: the 3D SFC itself (Floret-enabled
    /// NoC of Figs. 6-7).
    pub fn sfc_order(&self) -> Vec<NodeId> {
        self.layout.global_order()
    }

    /// Places one DNN along the given PE order (capacity-packed, layers in
    /// topological order).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InsufficientCapacity`] when the model does not
    /// fit the system.
    pub fn place(&self, sg: &SegmentGraph, order: &[NodeId]) -> Result<TaskPlacement, MapError> {
        let mut ledger = CapacityLedger::new(self.cfg.node_count(), self.cfg.node_capacity());
        map_task_sfc(&mut ledger, order, TaskId(0), sg)
    }

    /// Pipeline inference rate (inferences/s), bounded by the slowest
    /// pipeline stage. Batched streams interleave through the same
    /// bottleneck crossbars, so the rate is stage-limited regardless of
    /// batch size.
    pub fn pipeline_rate_hz(&self, sg: &SegmentGraph) -> f64 {
        let bottleneck_ns = sg
            .segments()
            .iter()
            .map(|s| segment_cost(s, &self.cfg.pim).latency_ns)
            .fold(0.0f64, f64::max);
        if bottleneck_ns <= 0.0 {
            return 0.0;
        }
        1e9 / bottleneck_ns
    }

    /// Builds the PE power map for a placement under streaming inference.
    /// Every PE pays its static power; each segment's dynamic power is
    /// split across its PE shares by weight fraction. When
    /// [`SystemConfig::dynamic_power_budget_w`] is set, the streaming rate
    /// is throttled (DVFS-style) so the aggregate dynamic power matches
    /// the budget — every workload then runs in the same thermal envelope
    /// and the temperature differences of Figs. 6-7 isolate placement
    /// quality.
    pub fn power_map(&self, sg: &SegmentGraph, placement: &TaskPlacement) -> PowerMap {
        let mut map = PowerMap::new(self.cfg.width, self.cfg.height, self.cfg.tiers)
            .expect("validated dimensions");
        // Baseline static power on every PE.
        for n in self.topo.nodes() {
            let c = n.coord;
            map.add(c.x, c.y, c.z, self.cfg.pim.static_power_w)
                .expect("in-bounds");
        }
        let rate = self.pipeline_rate_hz(sg);
        let raw_dynamic_w: f64 = sg
            .segments()
            .iter()
            .map(|seg| segment_cost(seg, &self.cfg.pim).energy_pj * 1e-12 * rate)
            .sum();
        let scale = if self.cfg.dynamic_power_budget_w > 0.0 && raw_dynamic_w > 0.0 {
            self.cfg.dynamic_power_budget_w / raw_dynamic_w
        } else {
            1.0
        };
        for (seg, sp) in sg.segments().iter().zip(&placement.segments) {
            let cost = segment_cost(seg, &self.cfg.pim);
            if cost.nodes == 0 || sp.shares.is_empty() {
                continue;
            }
            let dynamic_w = cost.energy_pj * 1e-12 * rate * scale;
            let total: u64 = sp.total_weights();
            for share in &sp.shares {
                let frac = share.weights as f64 / total as f64;
                let c = self.topo.node(share.node).coord;
                map.add(c.x, c.y, c.z, dynamic_w * frac).expect("in-bounds");
            }
        }
        map
    }

    /// Inter-PE activation flows of a placement (per inference).
    pub fn flows(&self, sg: &SegmentGraph, placement: &TaskPlacement) -> Vec<Flow> {
        mapper::placement_transfers(placement, sg, self.cfg.activation_bytes)
            .into_iter()
            .map(|t| Flow::new(t.src, t.dst, t.bytes))
            .collect()
    }

    /// Solves the thermal field for a placement.
    pub fn thermal_map(&self, sg: &SegmentGraph, placement: &TaskPlacement) -> ThermalMap {
        solve(&self.power_map(sg, placement), &self.cfg.thermal)
    }

    /// Full evaluation of a placement order: performance, energy, EDP,
    /// temperature and accuracy impact.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InsufficientCapacity`] when the model does not
    /// fit the system.
    pub fn evaluate(&self, sg: &SegmentGraph, order: &[NodeId]) -> Result<PlacementEval, MapError> {
        let placement = self.place(sg, order)?;
        let flows = self.flows(sg, &placement);
        let ana = analyze_with_table(&self.topo, &self.cfg.hw, &flows, &self.route);

        let mut compute_ns = 0.0;
        let mut compute_energy = 0.0;
        for seg in sg.segments() {
            let c = segment_cost(seg, &self.cfg.pim);
            compute_ns += c.latency_ns;
            compute_energy += c.energy_pj;
        }
        let comm_ns = ana.makespan_cycles as f64 * self.cfg.hw.cycle_ns();
        let delay_ns = compute_ns + comm_ns;
        let energy_pj = compute_energy + ana.total_energy_pj;
        let edp_js = energy_pj * 1e-12 * delay_ns * 1e-9;

        let tmap = self.thermal_map(sg, &placement);
        let peak_k = tmap.peak_k();
        Ok(PlacementEval {
            comm_cycles: ana.makespan_cycles,
            comm_energy_pj: ana.total_energy_pj,
            compute_ns,
            compute_energy_pj: compute_energy,
            delay_ns,
            energy_pj,
            edp_js,
            peak_k,
            mean_k: tmap.mean_k(),
            hotspots: tmap.hotspot_count(330.0),
            accuracy_drop: self.noise.accuracy_drop(peak_k),
        })
    }

    /// Jointly optimizes performance and temperature by simulated
    /// annealing over PE orders, starting from the SFC order. Objectives
    /// are `[edp / edp_sfc, (peak_k - ambient) / 10]`, scalarized by
    /// `sa.weights` (use `[1.0, w_thermal]`).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InsufficientCapacity`] when the model does not
    /// fit the system.
    ///
    /// # Panics
    ///
    /// Panics if `sa.weights.len() != 2`.
    pub fn optimize(
        &self,
        sg: &SegmentGraph,
        sa: &SaConfig,
    ) -> Result<(Vec<NodeId>, PlacementEval), MapError> {
        let sfc = self.sfc_order();
        let base = self.evaluate(sg, &sfc)?;
        let problem = PlacementProblem {
            platform: self,
            sg,
            base_order: &sfc,
            edp_ref: base.edp_js.max(1e-30),
        };
        let result = simulated_annealing(&problem, sa);
        let order: Vec<NodeId> = result.solution.iter().map(|&i| sfc[i]).collect();
        let eval = self.evaluate(sg, &order)?;
        Ok((order, eval))
    }
}

/// One point of the EDP-vs-temperature Pareto front.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Normalized EDP (1.0 = the SFC order's EDP).
    pub edp_norm: f64,
    /// Peak temperature, K.
    pub peak_k: f64,
    /// Full evaluation of the placement.
    pub eval: PlacementEval,
}

impl Platform3D {
    /// Explores the EDP-vs-peak-temperature Pareto front of layer
    /// placements with NSGA-II (the design-space view behind the single
    /// "joint" point of Figs. 6-7).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InsufficientCapacity`] when the model does not
    /// fit the system.
    pub fn pareto_front(
        &self,
        sg: &SegmentGraph,
        cfg: &opt::NsgaConfig,
    ) -> Result<Vec<ParetoPoint>, MapError> {
        let sfc = self.sfc_order();
        let base = self.evaluate(sg, &sfc)?;
        let problem = PlacementProblem {
            platform: self,
            sg,
            base_order: &sfc,
            edp_ref: base.edp_js.max(1e-30),
        };
        let front = opt::nsga2(&problem, cfg);
        let mut points = Vec::with_capacity(front.len());
        for fp in front {
            let order: Vec<NodeId> = fp.solution.iter().map(|&i| sfc[i]).collect();
            let eval = self.evaluate(sg, &order)?;
            points.push(ParetoPoint {
                edp_norm: eval.edp_js / base.edp_js,
                peak_k: eval.peak_k,
                eval,
            });
        }
        points.sort_by(|a, b| {
            a.edp_norm
                .partial_cmp(&b.edp_norm)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(points)
    }
}

/// SA problem over permutations of the SFC order (indices into it).
struct PlacementProblem<'a> {
    platform: &'a Platform3D,
    sg: &'a SegmentGraph,
    base_order: &'a [NodeId],
    edp_ref: f64,
}

impl PlacementProblem<'_> {
    fn eval_indices(&self, idx: &[usize]) -> Vec<f64> {
        let order: Vec<NodeId> = idx.iter().map(|&i| self.base_order[i]).collect();
        match self.platform.evaluate(self.sg, &order) {
            // Thermal objective: excess over the 330 K conductance-collapse
            // onset, scaled so ~10 K of excess weighs like the whole EDP
            // baseline — the regime where the accuracy loss of Fig. 6(c)
            // starts to bite.
            Ok(e) => vec![
                e.edp_js / self.edp_ref,
                ((e.peak_k - 330.0).max(0.0)) / 10.0,
            ],
            Err(_) => vec![f64::INFINITY, f64::INFINITY],
        }
    }
}

impl Problem for PlacementProblem<'_> {
    type Solution = Vec<usize>;

    fn random_solution(&self, rng: &mut ChaCha8Rng) -> Vec<usize> {
        // Start near the SFC order: a lightly perturbed identity keeps the
        // annealer in the performance-competitive region.
        let mut idx: Vec<usize> = (0..self.base_order.len()).collect();
        for _ in 0..4 {
            idx = opt::permutation::reverse_mutate(&idx, rng);
        }
        idx
    }

    fn neighbor(&self, s: &Vec<usize>, rng: &mut ChaCha8Rng) -> Vec<usize> {
        if rng.random::<f64>() < 0.5 {
            opt::permutation::swap_mutate(s, rng)
        } else {
            opt::permutation::reverse_mutate(s, rng)
        }
    }

    fn objectives(&self, s: &Vec<usize>) -> Vec<f64> {
        self.eval_indices(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataset, ModelKind};

    fn resnet34_cifar() -> SegmentGraph {
        // CIFAR ResNet-34 (Table I M10) fits the 100-PE 3D system.
        let g = build_model(ModelKind::ResNet34, Dataset::Cifar10).unwrap();
        SegmentGraph::from_layer_graph(&g)
    }

    #[test]
    fn sfc_placement_evaluates() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let sg = resnet34_cifar();
        let eval = p.evaluate(&sg, &p.sfc_order()).unwrap();
        assert!(eval.comm_cycles > 0);
        assert!(eval.edp_js > 0.0);
        assert!(eval.peak_k > cfg.thermal.ambient_k);
        assert!(eval.delay_ns > eval.compute_ns);
    }

    #[test]
    fn early_layers_heat_the_bottom_tier() {
        // The SFC starts at the bottom tier, so the power-hungry early
        // layers heat the tier farthest from the sink (Fig. 7 pathology).
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let sg = resnet34_cifar();
        let placement = p.place(&sg, &p.sfc_order()).unwrap();
        let tmap = p.thermal_map(&sg, &placement);
        let (_, _, z) = tmap.argmax();
        assert_eq!(z, cfg.tiers - 1, "hotspot must sit in the bottom tier");
    }

    #[test]
    fn model_too_big_is_rejected() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let g = build_model(ModelKind::Vgg19, Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g); // 143M >> 52M capacity
        assert!(matches!(
            p.evaluate(&sg, &p.sfc_order()),
            Err(MapError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn joint_optimization_cools_the_stack() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let sg = resnet34_cifar();
        let base = p.evaluate(&sg, &p.sfc_order()).unwrap();
        let sa = SaConfig {
            iterations: 120, // small for test speed; benches use more
            t_start: 0.5,
            t_end: 1e-3,
            weights: vec![1.0, 1.0],
            seed: 42,
        };
        let (_, joint) = p.optimize(&sg, &sa).unwrap();
        assert!(
            joint.peak_k < base.peak_k,
            "joint {} K must beat SFC {} K",
            joint.peak_k,
            base.peak_k
        );
        assert!(
            joint.accuracy_drop <= base.accuracy_drop,
            "cooler stack cannot degrade accuracy more"
        );
    }

    #[test]
    fn pareto_front_spans_the_tradeoff() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let sg = resnet34_cifar();
        let nsga = opt::NsgaConfig {
            population: 12,
            generations: 8,
            seed: 5,
        };
        let front = p.pareto_front(&sg, &nsga).unwrap();
        assert!(!front.is_empty());
        // Mutually non-dominated: sorted by EDP, temperatures descend.
        for pair in front.windows(2) {
            assert!(pair[0].edp_norm <= pair[1].edp_norm);
            assert!(
                pair[0].peak_k >= pair[1].peak_k - 1e-9,
                "front must trade EDP for temperature"
            );
        }
    }

    #[test]
    fn pipeline_rate_positive() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let rate = p.pipeline_rate_hz(&resnet34_cifar());
        assert!(rate > 0.0);
    }

    #[test]
    fn power_map_conserves_power() {
        let cfg = SystemConfig::stacked_3d();
        let p = Platform3D::new(&cfg).unwrap();
        let sg = resnet34_cifar();
        let placement = p.place(&sg, &p.sfc_order()).unwrap();
        let map = p.power_map(&sg, &placement);
        let static_total = cfg.pim.static_power_w * cfg.node_count() as f64;
        assert!(map.total_w() > static_total, "dynamic power must appear");
        assert!(
            map.total_w() < static_total + 200.0,
            "power must be bounded"
        );
    }
}

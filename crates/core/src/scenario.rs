//! The declarative Scenario API: experiment specs as *data*, resolved
//! against a central [`ExperimentRegistry`], producing a uniform
//! [`ExperimentOutput`].
//!
//! Historically every paper artifact was a hand-rolled binary owning its
//! own config construction, sweep loop and `println!` format — adding a
//! scenario axis meant touching twenty `main` functions. This module
//! inverts that: a [`Scenario`] names an experiment plus the axes to
//! sweep (architecture set × workload set × dataflow set ×
//! [`SystemConfig`] overrides × thread count × seed), the registry maps
//! the experiment name to a run function, and every run function returns
//! the same structured shape — a typed column schema with rows and
//! notes — that the `pim-bench` CLI renders as a table, JSON or CSV.
//!
//! ```text
//!  Scenario ──resolve()──▶ ResolvedScenario ──RunContext──▶ run fn
//!  (data: name, axes,      (validated configs,  (lazy shared   │
//!   overrides, threads)     concrete axis sets)   SweepRunner)  ▼
//!                                                       ExperimentOutput
//!                                                  (tables + notes, format-free)
//! ```
//!
//! # Examples
//!
//! ```
//! use pim_core::{experiments, Scenario};
//!
//! let registry = experiments::registry();
//! assert!(registry.get("table1").is_some());
//!
//! let out = registry.run_scenario(&Scenario::new("table1"))?;
//! assert_eq!(out.experiment, "table1");
//! assert_eq!(out.tables[0].rows.len(), 13);
//! for table in &out.tables {
//!     table.validate().expect("typed rows match the column schema");
//! }
//! # Ok::<(), pim_core::ScenarioError>(())
//! ```

use std::cell::OnceCell;
use std::fmt;

use dnn::{Dataflow, Workload};
use mapper::StrategyKind;
use serde::{Deserialize, Serialize};
use topology::TopologyError;

use crate::arch::NoiArch;
use crate::config::{ConfigError, SystemConfig};
use crate::faults::{FaultError, FaultSpec};
use crate::serving::{ServingError, ServingSpec};
use crate::sweep::{default_threads, CacheStats, SweepRunner};

/// A declarative experiment specification: *which* artifact to
/// regenerate and along *which* axes, with no imperative wiring.
///
/// Empty axis vectors mean "the paper default set" (all four
/// architectures, all five Table II mixes, all four dataflow modes).
/// `overrides` are `(key, value)` pairs applied through the validating
/// [`SystemConfig::builder`] to **both** base configs (2.5D and 3D), so
/// a degenerate spec fails fast with a typed [`ConfigError`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name of the experiment (`"table1"`, `"fig3"`, ... or
    /// `"all"` at the CLI layer).
    pub experiment: String,
    /// Architecture subset; empty = [`NoiArch::all`].
    pub archs: Vec<NoiArch>,
    /// Table II workload-mix subset by name; empty = all five mixes.
    pub workloads: Vec<String>,
    /// Dataflow subset; empty = [`Dataflow::all`].
    pub dataflows: Vec<Dataflow>,
    /// `(key, value)` [`SystemConfig`] overrides (the `--set` surface).
    pub overrides: Vec<(String, String)>,
    /// Worker-thread count; `None` = one per hardware thread. Results
    /// are bit-identical for any value (the engine's determinism
    /// contract) — this only changes wall-clock time.
    pub threads: Option<usize>,
    /// Override for the stochastic components' seeds (synthetic traffic,
    /// Poisson arrivals, annealing, NSGA-II); `None` = the paper-pinned
    /// defaults.
    pub seed: Option<u64>,
    /// Mapping-strategy override for experiments that place tasks;
    /// `None` = each experiment's paper default (SFC where a chiplet
    /// layout exists, greedy otherwise).
    pub strategy: Option<StrategyKind>,
    /// Typed serving-scenario block for the `serving` experiment;
    /// `None` = [`ServingSpec::default`]. Validated by
    /// [`Scenario::resolve`].
    pub serving: Option<ServingSpec>,
    /// Typed fault-model block for the `resilience` experiment; `None` =
    /// [`FaultSpec::default`]. `--set faults.<key>` overrides apply on
    /// top (starting from this block or the default), validated by
    /// [`Scenario::resolve`].
    pub faults: Option<FaultSpec>,
}

impl Scenario {
    /// The default scenario for one experiment: paper axis sets, paper
    /// configs, paper seeds.
    pub fn new(experiment: impl Into<String>) -> Self {
        Scenario {
            experiment: experiment.into(),
            archs: Vec::new(),
            workloads: Vec::new(),
            dataflows: Vec::new(),
            overrides: Vec::new(),
            threads: None,
            seed: None,
            strategy: None,
            serving: None,
            faults: None,
        }
    }

    /// Validates the spec and materializes every axis: defaults filled
    /// in, workload names checked against Table II, overrides applied
    /// through the validating builder to both base configs.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownWorkload`] for a name outside Table II,
    /// [`ScenarioError::Config`] when an override is unknown, fails to
    /// parse, or produces a degenerate config,
    /// [`ScenarioError::Serving`] when the serving block is structurally
    /// invalid, [`ScenarioError::Faults`] when the fault block or a
    /// `faults.*` override is.
    pub fn resolve(&self) -> Result<ResolvedScenario, ScenarioError> {
        if let Some(spec) = &self.serving {
            spec.validate()?;
        }
        let archs = if self.archs.is_empty() {
            NoiArch::all()
        } else {
            self.archs.clone()
        };
        let workloads = if self.workloads.is_empty() {
            dnn::table2().into_iter().map(|wl| wl.name).collect()
        } else {
            for name in &self.workloads {
                if dnn::table2_workload(name).is_none() {
                    return Err(ScenarioError::UnknownWorkload(name.clone()));
                }
            }
            self.workloads.clone()
        };
        let dataflows = if self.dataflows.is_empty() {
            Dataflow::all().to_vec()
        } else {
            self.dataflows.clone()
        };
        // `faults.*` overrides route to the fault spec, everything else
        // through the validating config builder.
        let mut cfg_overrides: Vec<(&str, &str)> = Vec::new();
        let mut fault_overrides: Vec<(&str, &str)> = Vec::new();
        for (k, v) in &self.overrides {
            match k.strip_prefix("faults.") {
                Some(fk) => fault_overrides.push((fk, v.as_str())),
                None => cfg_overrides.push((k.as_str(), v.as_str())),
            }
        }
        let faults = if self.faults.is_some() || !fault_overrides.is_empty() {
            let mut spec = self.faults.clone().unwrap_or_default();
            for (fk, v) in &fault_overrides {
                spec.set(fk, v)?;
            }
            spec.validate()?;
            Some(spec)
        } else {
            None
        };
        let apply = |base: SystemConfig| -> Result<SystemConfig, ConfigError> {
            base.builder().apply(cfg_overrides.iter().copied())?.build()
        };
        Ok(ResolvedScenario {
            experiment: self.experiment.clone(),
            archs,
            workloads,
            dataflows,
            cfg25: apply(SystemConfig::datacenter_25d())?,
            cfg3d: apply(SystemConfig::stacked_3d())?,
            threads: self.threads.unwrap_or_else(default_threads).max(1),
            seed: self.seed,
            strategy: self.strategy,
            serving: self.serving.clone(),
            faults,
        })
    }
}

/// A fully materialized [`Scenario`]: every axis concrete, both configs
/// validated. This is what run functions and [`SweepRunner::from_scenario`]
/// consume.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ResolvedScenario {
    /// Registry name of the experiment.
    pub experiment: String,
    /// Concrete architecture set (never empty).
    pub archs: Vec<NoiArch>,
    /// Concrete Table II mix names (never empty, all valid).
    pub workloads: Vec<String>,
    /// Concrete dataflow set (never empty).
    pub dataflows: Vec<Dataflow>,
    /// Validated 2.5D datacenter config with overrides applied.
    pub cfg25: SystemConfig,
    /// Validated 3D stacked config with overrides applied.
    pub cfg3d: SystemConfig,
    /// Effective worker-thread count (≥ 1).
    pub threads: usize,
    /// Seed override for stochastic components; `None` = paper defaults.
    pub seed: Option<u64>,
    /// Mapping-strategy override; `None` = per-experiment paper default.
    pub strategy: Option<StrategyKind>,
    /// Validated serving block; `None` = [`ServingSpec::default`] for
    /// the `serving` experiment, unused elsewhere.
    pub serving: Option<ServingSpec>,
    /// Validated fault block (`faults.*` overrides applied); `None` =
    /// [`FaultSpec::default`] for the `resilience` experiment, unused
    /// elsewhere.
    pub faults: Option<FaultSpec>,
}

impl ResolvedScenario {
    /// The resolved Table II workloads, in scenario order.
    pub fn workload_set(&self) -> Vec<Workload> {
        self.workloads
            .iter()
            .map(|n| dnn::table2_workload(n).expect("resolve() validated the names"))
            .collect()
    }

    /// The scenario's seed, or `default` (the paper-pinned value) when
    /// no override was given.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

/// Why a scenario could not be resolved or run.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The experiment name is not in the registry.
    UnknownExperiment(String),
    /// A workload name is not a Table II mix.
    UnknownWorkload(String),
    /// A config override was rejected.
    Config(ConfigError),
    /// The overridden config produced an unbuildable topology.
    Topology(TopologyError),
    /// The serving block is structurally invalid (bad fleet, loads,
    /// tenant model, ...).
    Serving(ServingError),
    /// The fault block or a `faults.*` override is structurally invalid.
    Faults(FaultError),
    /// A forced mapping strategy cannot apply to the selected
    /// architecture.
    Strategy(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownExperiment(name) => {
                write!(f, "unknown experiment `{name}` (see `pim-bench list`)")
            }
            ScenarioError::UnknownWorkload(name) => {
                write!(f, "unknown workload `{name}` (Table II: WL1..WL5)")
            }
            ScenarioError::Config(e) => write!(f, "invalid config: {e}"),
            ScenarioError::Topology(e) => write!(f, "topology build failed: {e}"),
            ScenarioError::Serving(e) => write!(f, "invalid serving spec: {e}"),
            ScenarioError::Faults(e) => write!(f, "invalid fault spec: {e}"),
            ScenarioError::Strategy(msg) => write!(f, "invalid strategy: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

impl From<TopologyError> for ScenarioError {
    fn from(e: TopologyError) -> Self {
        ScenarioError::Topology(e)
    }
}

impl From<ServingError> for ScenarioError {
    fn from(e: ServingError) -> Self {
        ScenarioError::Serving(e)
    }
}

impl From<FaultError> for ScenarioError {
    fn from(e: FaultError) -> Self {
        ScenarioError::Faults(e)
    }
}

/// One cell of an experiment table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CellValue {
    /// A label (workload, architecture, model, ...).
    Str(String),
    /// An unsigned count.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A measurement (also used by ratio columns).
    Float(f64),
    /// A time span in nanoseconds; tables render it humanized
    /// (`ns`/`µs`/`ms`/`s`), JSON and CSV keep the raw nanosecond value.
    Duration(f64),
}

impl From<&str> for CellValue {
    fn from(v: &str) -> Self {
        CellValue::Str(v.to_string())
    }
}
impl From<String> for CellValue {
    fn from(v: String) -> Self {
        CellValue::Str(v)
    }
}
impl From<u64> for CellValue {
    fn from(v: u64) -> Self {
        CellValue::UInt(v)
    }
}
impl From<usize> for CellValue {
    fn from(v: usize) -> Self {
        CellValue::UInt(v as u64)
    }
}
impl From<u32> for CellValue {
    fn from(v: u32) -> Self {
        CellValue::UInt(u64::from(v))
    }
}
impl From<i64> for CellValue {
    fn from(v: i64) -> Self {
        CellValue::Int(v)
    }
}
impl From<f64> for CellValue {
    fn from(v: f64) -> Self {
        CellValue::Float(v)
    }
}

impl CellValue {
    /// True when the cell's variant matches the column type.
    pub fn matches(&self, ty: &ColumnType) -> bool {
        matches!(
            (self, ty),
            (CellValue::Str(_), ColumnType::Str)
                | (CellValue::UInt(_), ColumnType::UInt)
                | (CellValue::Int(_), ColumnType::Int)
                | (CellValue::Float(_), ColumnType::Float { .. })
                | (CellValue::Float(_), ColumnType::Ratio)
                | (CellValue::Duration(_), ColumnType::Duration)
        )
    }
}

/// The type (and table-rendering hint) of one experiment column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Label column, left-aligned.
    Str,
    /// Unsigned count, right-aligned.
    UInt,
    /// Signed integer, right-aligned.
    Int,
    /// Floating-point measurement.
    Float {
        /// Digits after the decimal point in table rendering.
        precision: u8,
        /// Render as `{:e}` scientific notation.
        scientific: bool,
    },
    /// A ratio rendered `x.xx×`-style (`"1.32x"`) in tables, raw `f64`
    /// in JSON/CSV.
    Ratio,
    /// A nanosecond time span, humanized in tables (`1.234 ms`), raw
    /// nanoseconds in JSON/CSV.
    Duration,
}

/// One column of an experiment table: name plus [`ColumnType`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Header label.
    pub name: String,
    /// Cell type and rendering hint.
    pub ty: ColumnType,
}

impl Column {
    /// A label column.
    pub fn str(name: &str) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Str,
        }
    }

    /// An unsigned-count column.
    pub fn uint(name: &str) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::UInt,
        }
    }

    /// A signed-integer column.
    pub fn int(name: &str) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Int,
        }
    }

    /// A fixed-precision float column.
    pub fn float(name: &str, precision: u8) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Float {
                precision,
                scientific: false,
            },
        }
    }

    /// A scientific-notation float column.
    pub fn sci(name: &str, precision: u8) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Float {
                precision,
                scientific: true,
            },
        }
    }

    /// A ratio column (`"1.32x"` in tables).
    pub fn ratio(name: &str) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Ratio,
        }
    }

    /// A duration column (nanoseconds, humanized in tables).
    pub fn duration(name: &str) -> Column {
        Column {
            name: name.to_string(),
            ty: ColumnType::Duration,
        }
    }

    /// A latency-percentile column: a [`ColumnType::Duration`] column
    /// conventionally named `p50`/`p95`/`p99`.
    pub fn percentile(name: &str) -> Column {
        Column::duration(name)
    }
}

/// One titled table of an [`ExperimentOutput`]: a typed column schema
/// plus rows of [`CellValue`]s.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Section title (what the old binaries printed as `=== ... ===`).
    pub title: String,
    /// Typed column schema.
    pub columns: Vec<Column>,
    /// Data rows; every row has one cell per column, variant matching
    /// the column type ([`Table::validate`]).
    pub rows: Vec<Vec<CellValue>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(title: &str, columns: Vec<Column>) -> Table {
        Table {
            title: title.to_string(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the column count (a
    /// programming error in a run function, caught in tests).
    pub fn push(&mut self, cells: Vec<CellValue>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in table `{}`",
            self.title
        );
        self.rows.push(cells);
    }

    /// Checks every row against the column schema (arity and variant).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn validate(&self) -> Result<(), String> {
        for (ri, row) in self.rows.iter().enumerate() {
            if row.len() != self.columns.len() {
                return Err(format!(
                    "table `{}` row {ri}: {} cells for {} columns",
                    self.title,
                    row.len(),
                    self.columns.len()
                ));
            }
            for (cell, col) in row.iter().zip(&self.columns) {
                if !cell.matches(&col.ty) {
                    return Err(format!(
                        "table `{}` row {ri} column `{}`: {cell:?} does not match {:?}",
                        self.title, col.name, col.ty
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A titled distribution section of an [`ExperimentOutput`]: fixed bin
/// edges plus counts. All three `pim_bench::output` formats render it —
/// ASCII bars in tables, structured arrays in JSON, bin rows in CSV.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Section title.
    pub title: String,
    /// Unit label of the binned quantity (e.g. `"ns"`).
    pub unit: String,
    /// Ascending bin edges; `edges.len() == counts.len() + 1`. Samples
    /// outside the range clamp into the first/last bin.
    pub edges: Vec<f64>,
    /// Sample count per bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over the given ascending bin edges.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two edges or non-ascending edges.
    pub fn new(title: &str, unit: &str, edges: Vec<f64>) -> Histogram {
        assert!(edges.len() >= 2, "histogram `{title}` needs ≥ 2 edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram `{title}` edges must be strictly ascending"
        );
        let bins = edges.len() - 1;
        Histogram {
            title: title.to_string(),
            unit: unit.to_string(),
            edges,
            counts: vec![0; bins],
        }
    }

    /// Records one sample, clamping out-of-range values into the
    /// first/last bin.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        // First edge ≤ value < next edge; partition_point gives the
        // count of edges ≤ value.
        let idx = self.edges.partition_point(|&e| e <= value);
        self.counts[idx.saturating_sub(1).min(bins - 1)] += 1;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Checks the edge/count arity invariant.
    ///
    /// # Errors
    ///
    /// A human-readable description of the mismatch.
    pub fn validate(&self) -> Result<(), String> {
        if self.edges.len() != self.counts.len() + 1 {
            return Err(format!(
                "histogram `{}`: {} edges for {} bins",
                self.title,
                self.edges.len(),
                self.counts.len()
            ));
        }
        Ok(())
    }
}

/// The uniform result of running one experiment: tables, optional
/// distribution histograms, plus free-form notes (the commentary the
/// old binaries printed after their tables). Rendering to
/// table/JSON/CSV lives in `pim_bench::output`; this type is
/// format-free.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// Registry name of the experiment that produced this.
    pub experiment: String,
    /// The experiment's registry description.
    pub description: String,
    /// Result tables, in presentation order.
    pub tables: Vec<Table>,
    /// Distribution sections, rendered after the tables.
    pub histograms: Vec<Histogram>,
    /// Commentary and context lines.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// An empty output shell for `experiment`.
    pub fn new(experiment: &str, description: &str) -> Self {
        ExperimentOutput {
            experiment: experiment.to_string(),
            description: description.to_string(),
            tables: Vec::new(),
            histograms: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Validates every table against its schema and every histogram's
    /// arity invariant.
    ///
    /// # Errors
    ///
    /// The first schema mismatch, as text.
    pub fn validate(&self) -> Result<(), String> {
        self.tables.iter().try_for_each(Table::validate)?;
        self.histograms.iter().try_for_each(Histogram::validate)
    }
}

/// The signature every registered experiment implements.
pub type RunFn = fn(&RunContext) -> Result<ExperimentOutput, ScenarioError>;

/// One registered experiment: name, description, run function.
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Registry key (also the legacy binary name).
    pub name: &'static str,
    /// One-line description shown by `pim-bench list`/`describe`.
    pub description: &'static str,
    /// The run function.
    pub run: RunFn,
}

impl fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

/// The central experiment registry: every paper artifact registered
/// once, by name. The standard instance ([`crate::experiments::registry`])
/// covers every table, figure and ablation; the type is public so tests
/// and downstream tools can assemble their own.
#[derive(Debug, Default)]
pub struct ExperimentRegistry {
    specs: Vec<ExperimentSpec>,
}

impl ExperimentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one experiment.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — every artifact is registered once.
    pub fn register(&mut self, spec: ExperimentSpec) {
        assert!(
            self.get(spec.name).is_none(),
            "experiment `{}` registered twice",
            spec.name
        );
        self.specs.push(spec);
    }

    /// All specs, in registration (presentation) order.
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// All experiment names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Looks up one experiment by name.
    pub fn get(&self, name: &str) -> Option<&ExperimentSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Runs one registered experiment against an existing context (so
    /// `run all` shares one lazily-built [`SweepRunner`] across every
    /// 2.5D experiment).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownExperiment`] for an unregistered name;
    /// otherwise whatever the run function reports.
    pub fn run(&self, ctx: &RunContext, name: &str) -> Result<ExperimentOutput, ScenarioError> {
        let spec = self
            .get(name)
            .ok_or_else(|| ScenarioError::UnknownExperiment(name.to_string()))?;
        let before = ctx.cache_stats().unwrap_or_default();
        let mut out = (spec.run)(ctx)?;
        out.experiment = spec.name.to_string();
        out.description = spec.description.to_string();
        // Surface this experiment's evaluation-cache traffic when asked.
        // Opt-in (PIM_BENCH_CACHE_STATS=1) so default renderings — and
        // the byte-pinned goldens — are unchanged; `pim-bench perf`
        // reads the counters directly instead.
        if crate::envknobs::flag("PIM_BENCH_CACHE_STATS") {
            if let Some(stats) = ctx.cache_stats() {
                let delta = stats.since(before);
                out.notes.push(format!(
                    "eval cache: {} hits, {} misses (config fingerprint {:016x})",
                    delta.hits,
                    delta.misses,
                    ctx.cache_fingerprint().unwrap_or(0),
                ));
            }
        }
        Ok(out)
    }

    /// Resolves `scenario` and runs its experiment.
    ///
    /// # Errors
    ///
    /// Resolution errors ([`Scenario::resolve`]) or run errors
    /// ([`ExperimentRegistry::run`]).
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<ExperimentOutput, ScenarioError> {
        let ctx = RunContext::new(scenario.resolve()?);
        self.run(&ctx, &scenario.experiment)
    }
}

/// Everything a run function needs: the resolved scenario plus a shared,
/// lazily-constructed [`SweepRunner`] so consecutive 2.5D experiments
/// (`pim-bench run all`) build the four platforms exactly once.
#[derive(Debug)]
pub struct RunContext {
    scenario: ResolvedScenario,
    runner: OnceCell<SweepRunner>,
    cache_override: Option<bool>,
}

impl RunContext {
    /// Wraps a resolved scenario; the engine is built on first use.
    pub fn new(scenario: ResolvedScenario) -> Self {
        RunContext {
            scenario,
            runner: OnceCell::new(),
            cache_override: None,
        }
    }

    /// [`RunContext::new`] with the evaluation cache explicitly forced on
    /// or off, overriding `PIM_BENCH_NO_CACHE` — the `pim-bench perf`
    /// harness measures the cached and uncached paths of the same
    /// process this way.
    pub fn new_with_cache(scenario: ResolvedScenario, cache_enabled: bool) -> Self {
        RunContext {
            scenario,
            runner: OnceCell::new(),
            cache_override: Some(cache_enabled),
        }
    }

    /// The resolved scenario.
    pub fn scenario(&self) -> &ResolvedScenario {
        &self.scenario
    }

    /// The shared 2.5D engine for this scenario, built once on first
    /// call ([`SweepRunner::from_scenario`]).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Topology`] when the (possibly overridden) config
    /// cannot build the scenario's architectures.
    pub fn runner(&self) -> Result<&SweepRunner, ScenarioError> {
        if self.runner.get().is_none() {
            let mut built = SweepRunner::from_scenario(&self.scenario)?;
            if let Some(enabled) = self.cache_override {
                built = built.with_cache_enabled(enabled);
            }
            // A concurrent set is impossible (&self, single thread);
            // ignore the Err(built) case the API forces us to cover.
            let _ = self.runner.set(built);
        }
        Ok(self.runner.get().expect("just initialized"))
    }

    /// Evaluation-cache counters of the shared engine, or `None` while no
    /// engine has been built (3D-only experiments never build one).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.runner.get().map(|r| r.cache().stats())
    }

    /// The shared engine's config fingerprint (the cache key prefix), if
    /// an engine has been built.
    pub fn cache_fingerprint(&self) -> Option<u64> {
        self.runner.get().map(|r| r.cache().fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_resolves_to_paper_axes() {
        let s = Scenario::new("fig3").resolve().unwrap();
        assert_eq!(s.archs, NoiArch::all());
        assert_eq!(s.workloads, vec!["WL1", "WL2", "WL3", "WL4", "WL5"]);
        assert_eq!(s.dataflows, Dataflow::all());
        assert_eq!(s.cfg25, SystemConfig::datacenter_25d());
        assert_eq!(s.cfg3d, SystemConfig::stacked_3d());
        assert!(s.threads >= 1);
        assert_eq!(s.seed, None);
        assert_eq!(s.seed_or(0xFACE), 0xFACE);
    }

    #[test]
    fn overrides_flow_through_the_validating_builder() {
        let mut s = Scenario::new("fig3");
        s.overrides.push(("batch".into(), "4".into()));
        s.overrides.push(("sim_sampling".into(), "32".into()));
        let r = s.resolve().unwrap();
        assert_eq!(r.cfg25.batch, 4);
        assert_eq!(r.cfg3d.batch, 4);
        assert_eq!(r.cfg25.sim_sampling, 32);

        s.overrides.push(("snapshot_every".into(), "0".into()));
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroField("snapshot_every"))
        );
    }

    #[test]
    fn unknown_workloads_are_rejected() {
        let mut s = Scenario::new("fig3");
        s.workloads = vec!["WL1".into(), "WL9".into()];
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::UnknownWorkload("WL9".to_string())
        );
    }

    #[test]
    fn table_schema_validation_catches_mismatches() {
        let mut t = Table::new("t", vec![Column::str("a"), Column::float("b", 2)]);
        t.push(vec!["x".into(), 1.5.into()]);
        assert!(t.validate().is_ok());
        t.rows.push(vec!["y".into(), CellValue::UInt(3)]);
        let err = t.validate().unwrap_err();
        assert!(err.contains("column `b`"), "{err}");
        t.rows.pop();
        t.rows.push(vec!["z".into()]);
        assert!(t.validate().unwrap_err().contains("1 cells"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_push_asserts_arity() {
        let mut t = Table::new("t", vec![Column::str("a")]);
        t.push(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn registry_rejects_unknown_and_runs_registered() {
        let mut reg = ExperimentRegistry::new();
        fn ok(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
            Ok(ExperimentOutput::new("", ""))
        }
        reg.register(ExperimentSpec {
            name: "demo",
            description: "a demo",
            run: ok,
        });
        let ctx = RunContext::new(Scenario::new("demo").resolve().unwrap());
        let out = reg.run(&ctx, "demo").unwrap();
        assert_eq!(out.experiment, "demo");
        assert_eq!(out.description, "a demo");
        assert_eq!(
            reg.run(&ctx, "nope").unwrap_err(),
            ScenarioError::UnknownExperiment("nope".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicate_names() {
        let mut reg = ExperimentRegistry::new();
        fn ok(_ctx: &RunContext) -> Result<ExperimentOutput, ScenarioError> {
            Ok(ExperimentOutput::new("", ""))
        }
        let spec = ExperimentSpec {
            name: "demo",
            description: "",
            run: ok,
        };
        reg.register(spec.clone());
        reg.register(spec);
    }

    #[test]
    fn scenario_serializes_to_json() {
        let mut s = Scenario::new("dataflows");
        s.archs = vec![NoiArch::Floret { lambda: 6 }];
        s.overrides.push(("batch".into(), "2".into()));
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"experiment\":\"dataflows\""), "{json}");
        assert!(json.contains("Floret"), "{json}");
        // The spec is valid JSON end to end.
        serde_json::from_str(&json).unwrap();
    }

    #[test]
    fn serving_scenario_round_trips_through_json() {
        let mut s = Scenario::new("serving");
        s.serving = Some(ServingSpec::default());
        s.strategy = Some(StrategyKind::Greedy);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"experiment\":\"serving\""), "{json}");
        assert!(json.contains("\"fleet\":2"), "{json}");
        assert!(json.contains("Bursty"), "{json}");
        assert!(json.contains("Diurnal"), "{json}");
        assert!(json.contains("Greedy"), "{json}");
        // Valid JSON end to end, with the typed block nested intact.
        serde_json::from_str(&json).unwrap();
    }

    #[test]
    fn invalid_serving_blocks_are_rejected_at_resolve() {
        let mut s = Scenario::new("serving");
        let mut spec = ServingSpec::default();
        spec.tenants[0].model = "M42".into();
        s.serving = Some(spec);
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::Serving(crate::serving::ServingError::UnknownModel(
                "M42".to_string()
            ))
        );
        let mut s = Scenario::new("serving");
        s.serving = Some(ServingSpec {
            loads: Vec::new(),
            ..ServingSpec::default()
        });
        assert!(matches!(
            s.resolve().unwrap_err(),
            ScenarioError::Serving(_)
        ));
        // The resolved scenario carries the block and strategy through.
        let mut s = Scenario::new("serving");
        s.serving = Some(ServingSpec::default());
        s.strategy = Some(StrategyKind::Sfc);
        let r = s.resolve().unwrap();
        assert_eq!(r.serving, Some(ServingSpec::default()));
        assert_eq!(r.strategy, Some(StrategyKind::Sfc));
    }

    #[test]
    fn fault_overrides_route_to_the_fault_spec() {
        // No block, no overrides: resolves to no fault spec at all.
        assert_eq!(Scenario::new("resilience").resolve().unwrap().faults, None);
        // A `faults.*` override alone materializes the default block
        // with the override applied; config overrides still flow to the
        // builder alongside it.
        let mut s = Scenario::new("resilience");
        s.overrides
            .push(("faults.chip_mtbf_ms".into(), "10".into()));
        s.overrides.push(("batch".into(), "4".into()));
        let r = s.resolve().unwrap();
        let f = r.faults.expect("override materializes the block");
        assert_eq!(f.chip_mtbf_ms, 10.0);
        assert_eq!(f.chip_mttr_ms, FaultSpec::default().chip_mttr_ms);
        assert_eq!(r.cfg25.batch, 4);
        // Unknown and unparseable fault keys are typed errors.
        let mut s = Scenario::new("resilience");
        s.overrides.push(("faults.bogus".into(), "1".into()));
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::Faults(FaultError::UnknownKey("faults.bogus".to_string()))
        );
        let mut s = Scenario::new("resilience");
        s.overrides
            .push(("faults.throttle_duty".into(), "1.5".into()));
        assert!(matches!(
            s.resolve().unwrap_err(),
            ScenarioError::Faults(FaultError::FractionField { .. })
        ));
        // An explicit block resolves through and round-trips as JSON.
        let mut s = Scenario::new("resilience");
        s.faults = Some(FaultSpec::default());
        assert_eq!(s.resolve().unwrap().faults, Some(FaultSpec::default()));
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"chip_mtbf_ms\""), "{json}");
        assert!(json.contains("\"backoff_base_us\""), "{json}");
        assert_eq!(serde_json::round_trip(&json).unwrap(), json);
    }

    #[test]
    fn duration_cells_match_only_duration_columns() {
        assert!(CellValue::Duration(5.0).matches(&ColumnType::Duration));
        assert!(!CellValue::Duration(5.0).matches(&ColumnType::Float {
            precision: 2,
            scientific: false
        }));
        assert!(!CellValue::Float(5.0).matches(&ColumnType::Duration));
        let mut t = Table::new(
            "lat",
            vec![Column::percentile("p50"), Column::duration("p99")],
        );
        t.push(vec![
            CellValue::Duration(1_000.0),
            CellValue::Duration(2_000.0),
        ]);
        assert!(t.validate().is_ok());
        t.rows
            .push(vec![CellValue::Float(1.0), CellValue::Duration(2.0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn histogram_records_with_edge_clamping() {
        let mut h = Histogram::new("lat", "ns", vec![0.0, 10.0, 20.0, 40.0]);
        h.record(-5.0); // clamps into the first bin
        h.record(0.0);
        h.record(9.9);
        h.record(10.0);
        h.record(39.9);
        h.record(40.0); // clamps into the last bin
        h.record(1e9); // clamps into the last bin
        assert_eq!(h.counts, vec![3, 1, 3]);
        assert_eq!(h.total(), 7);
        assert!(h.validate().is_ok());
        h.counts.pop();
        assert!(h.validate().unwrap_err().contains("edges"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        Histogram::new("bad", "ns", vec![0.0, 5.0, 5.0]);
    }
}

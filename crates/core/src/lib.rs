//! Platform façade for the dataflow-aware PIM-enabled manycore
//! architecture (DATE 2024 reproduction).
//!
//! Combines the substrate crates into the two systems the paper
//! evaluates:
//!
//! * [`Platform25D`] — a 100-chiplet 2.5D interposer system with a choice
//!   of NoI architecture ([`NoiArch`]: Floret, SIAM mesh, Kite, SWAP),
//!   dataflow-aware SFC or greedy mapping, and full workload execution
//!   (Figs. 2-5, Table II, cost analysis);
//! * [`Platform3D`] — a 100-PE 3D-stacked system with an SFC NoC,
//!   streaming power model, thermal solver and joint performance-thermal
//!   placement optimization (Figs. 6-7).
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper and registers each one in the central [`ExperimentRegistry`]
//! ([`experiments::registry`]); a declarative [`Scenario`] spec
//! ([`scenario`]) selects an experiment plus its axes (architectures ×
//! workloads × dataflows × config overrides × threads × seed) and every
//! run returns a uniform [`ExperimentOutput`] that the `pim-bench` CLI
//! renders as a table, JSON or CSV. The figure grids run on the
//! [`SweepRunner`] experiment engine ([`sweep`]), which builds each
//! platform once and fans independent cells across scoped threads with a
//! bit-deterministic, order-stable merge.
//!
//! # Examples
//!
//! ```no_run
//! use pim_core::{NoiArch, Platform25D, SystemConfig};
//!
//! let cfg = SystemConfig::datacenter_25d();
//! let wl = dnn::table2_workload("WL1").expect("table workload");
//! for arch in NoiArch::all() {
//!     let platform = Platform25D::new(arch, &cfg)?;
//!     let report = platform.run_workload(&wl);
//!     println!("{}: {} cycles", report.arch, report.sim_latency_cycles);
//! }
//! # Ok::<(), topology::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod config;
pub mod experiments;
pub mod faults;
pub mod hetero;
mod platform25;
mod platform3d;
pub mod scenario;
mod scratch;
pub mod serving;
pub mod sweep;

pub use arch::NoiArch;
pub use config::{ConfigError, SystemConfig, SystemConfigBuilder};
pub use faults::{
    ChipFault, FaultError, FaultPlan, FaultSpec, LinkFaultWindow, RetryPolicy, ThrottleWindow,
};
pub use platform25::{Platform25D, SearchedResolution, WorkloadReport};
pub use platform3d::{ParetoPoint, PlacementEval, Platform3D};
pub use scenario::{
    CellValue, Column, ColumnType, ExperimentOutput, ExperimentRegistry, ExperimentSpec, Histogram,
    ResolvedScenario, RunContext, Scenario, ScenarioError, Table,
};
pub use scratch::SweepScratch;
pub use serving::{
    simulate_resilient_serving, simulate_serving, LoadPointOutcome, ResilienceOutcome,
    ResilienceParams, ResiliencePointOutcome, ServingError, ServingOutcome, ServingSpec,
    TenantSpec, UTIL_SLICES,
};
pub use sweep::{
    default_threads, parallel_map, CacheStats, EvalCache, SweepRunner, CACHE_MIN_TASKS,
};
pub use topology::envknobs;

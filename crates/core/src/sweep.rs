//! The shared experiment engine behind the figure sweeps.
//!
//! The paper's headline results (Figs. 3-7) are grids: 4 NoI
//! architectures × 5 Table II mixes through the packet-level DES, and 5
//! DNN models through the 3D joint-optimization flow. [`SweepRunner`]
//! constructs each [`Platform25D`] (topology + route table) exactly once,
//! then fans independent grid cells across [`std::thread::scope`] workers
//! with a work-stealing index.
//!
//! # Determinism guarantee
//!
//! Every grid cell is a pure, seeded function of its inputs, and results
//! are reassembled by cell index — so a sweep's output is bit-identical
//! to the sequential loop it replaces, for any worker count (including
//! one). [`parallel_map`] preserves input order; nothing about thread
//! scheduling can reach the reported numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use dnn::{table2, Dataflow, Workload};
use topology::{TopologyError, TopologySummary};

use crate::arch::NoiArch;
use crate::config::SystemConfig;
use crate::platform25::{Platform25D, WorkloadReport};

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on up to `threads` scoped workers and
/// returns the results **in input order**, regardless of which worker
/// computed what. Workers pull items off a shared atomic index
/// (work-stealing), so uneven cell costs don't serialize the sweep.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            indexed.extend(w.join().expect("sweep worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// The experiment engine: the four paper platforms built once (route
/// tables cached inside), plus a parallel grid executor.
///
/// # Examples
///
/// ```no_run
/// use pim_core::{SweepRunner, SystemConfig};
///
/// let runner = SweepRunner::new(&SystemConfig::datacenter_25d())?;
/// let reports = runner.fig345_sweep(); // 5 mixes x 4 archs, stable order
/// assert_eq!(reports.len(), 20);
/// # Ok::<(), topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    cfg: SystemConfig,
    threads: usize,
    platforms: Vec<Platform25D>, // NoiArch::all() order
}

impl SweepRunner {
    /// Builds all four [`NoiArch`] platforms once (in parallel) and
    /// defaults the worker count to [`default_threads`].
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn new(cfg: &SystemConfig) -> Result<Self, TopologyError> {
        Self::for_archs(cfg, &NoiArch::all())
    }

    /// Builds the platforms for an explicit architecture subset (in the
    /// given order) — the engine behind scenario `--arch` filters.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn for_archs(cfg: &SystemConfig, archs: &[NoiArch]) -> Result<Self, TopologyError> {
        let threads = default_threads();
        let built = parallel_map(archs, threads, |arch| Platform25D::new(arch.clone(), cfg));
        let mut platforms = Vec::with_capacity(built.len());
        for p in built {
            platforms.push(p?);
        }
        Ok(SweepRunner {
            cfg: cfg.clone(),
            threads,
            platforms,
        })
    }

    /// Builds the engine a resolved [`crate::scenario::Scenario`] asks
    /// for: its (possibly overridden) 2.5D config, its architecture
    /// subset, its worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn from_scenario(s: &crate::scenario::ResolvedScenario) -> Result<Self, TopologyError> {
        Ok(Self::for_archs(&s.cfg25, &s.archs)?.with_threads(s.threads))
    }

    /// Overrides the worker count (clamped to at least one). Output is
    /// identical for any value; this only changes wall-clock time.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The system configuration the platforms were built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The cached platforms, in [`NoiArch::all`] order.
    pub fn platforms(&self) -> &[Platform25D] {
        &self.platforms
    }

    /// The cached platform for one architecture.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is not one of the four paper architectures.
    pub fn platform(&self, arch: &NoiArch) -> &Platform25D {
        self.platforms
            .iter()
            .find(|p| p.arch() == arch)
            .expect("SweepRunner caches every paper architecture")
    }

    /// Runs one (architecture, workload) cell on the cached platform.
    pub fn run_arch_workload(&self, arch: &NoiArch, wl_name: &str) -> WorkloadReport {
        let wl = dnn::table2_workload(wl_name).expect("table II workload");
        self.platform(arch).run_workload(&wl)
    }

    /// The (workload × architecture) grid over the cached platforms:
    /// workload-major, [`NoiArch::all`] order within each workload —
    /// exactly the sequential seed ordering.
    pub fn run_workloads(&self, workloads: &[Workload]) -> Vec<WorkloadReport> {
        let cells: Vec<(&Workload, usize)> = workloads
            .iter()
            .flat_map(|wl| (0..self.platforms.len()).map(move |pi| (wl, pi)))
            .collect();
        parallel_map(&cells, self.threads, |&(wl, pi)| {
            self.platforms[pi].run_workload(wl)
        })
    }

    /// Fig. 3/4/5: the full Table II × architecture sweep.
    pub fn fig345_sweep(&self) -> Vec<WorkloadReport> {
        self.run_workloads(&table2())
    }

    /// The (workload × dataflow × architecture) grid over the cached
    /// platforms: workload-major, then `dataflows` order, then
    /// [`NoiArch::all`] order — so each consecutive chunk of
    /// `dataflows.len() * platforms.len()` rows is one workload, and the
    /// [`Dataflow::WeightStationary`] rows reproduce [`Self::run_workloads`]
    /// exactly.
    ///
    /// The churned placement is dataflow-independent, so each
    /// (workload, architecture) cell maps once and costs every dataflow
    /// from the shared outcome
    /// ([`Platform25D::run_workload_dataflows`]) — the reports are still
    /// bit-identical to per-mode [`Platform25D::run_workload_with`]
    /// calls, just without redundant mapping work.
    pub fn run_workloads_dataflows(
        &self,
        workloads: &[Workload],
        dataflows: &[Dataflow],
    ) -> Vec<WorkloadReport> {
        let cells: Vec<(&Workload, usize)> = workloads
            .iter()
            .flat_map(|wl| (0..self.platforms.len()).map(move |pi| (wl, pi)))
            .collect();
        let per_cell = parallel_map(&cells, self.threads, |&(wl, pi)| {
            self.platforms[pi].run_workload_dataflows(wl, dataflows)
        });
        // Reassemble (workload, arch)[dataflow] into workload-major,
        // dataflow, architecture order.
        let n_arch = self.platforms.len();
        let mut out = Vec::with_capacity(per_cell.len() * dataflows.len());
        for wl_cells in per_cell.chunks(n_arch) {
            for d in 0..dataflows.len() {
                for cell in wl_cells {
                    out.push(cell[d].clone());
                }
            }
        }
        out
    }

    /// The dataflow figure: all Table II mixes × the four [`Dataflow`]
    /// modes × the four architectures.
    pub fn dataflow_sweep(&self) -> Vec<WorkloadReport> {
        self.run_workloads_dataflows(&table2(), &Dataflow::all())
    }

    /// Fig. 2: structural summaries of the cached platforms.
    pub fn fig2_summaries(&self) -> Vec<TopologySummary> {
        self.platforms.iter().map(Platform25D::structure).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8, 200] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), seq);
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(parallel_map(&empty, 8, |x| *x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        parallel_map(&items, 4, |x| {
            assert!(*x != 5, "boom");
            *x
        });
    }

    #[test]
    fn runner_caches_all_four_platforms() {
        let cfg = SystemConfig::datacenter_25d();
        let runner = SweepRunner::new(&cfg).unwrap();
        assert_eq!(runner.platforms().len(), 4);
        for (p, arch) in runner.platforms().iter().zip(NoiArch::all()) {
            assert_eq!(p.arch(), &arch);
            assert!(std::ptr::eq(runner.platform(&arch), p));
        }
    }

    #[test]
    fn engine_grid_is_bit_identical_to_sequential_rebuild() {
        // The hoisted-construction + parallel-fan-out path must reproduce
        // the seed's rebuild-every-cell sequential loop exactly, cell for
        // cell, in the same order.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let engine = runner.run_workloads(std::slice::from_ref(&wl));

        let sequential: Vec<WorkloadReport> = NoiArch::all()
            .into_iter()
            .map(|arch| {
                Platform25D::new(arch, &cfg)
                    .expect("paper architectures build")
                    .run_workload(&wl)
            })
            .collect();
        assert_eq!(engine, sequential);
    }

    #[test]
    fn dataflow_grid_ws_rows_match_the_plain_grid() {
        // The dataflow axis is a strict superset: its weight-stationary
        // rows must be bit-identical to the pre-axis workload grid.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let plain = runner.run_workloads(std::slice::from_ref(&wl));
        let grid = runner.run_workloads_dataflows(
            std::slice::from_ref(&wl),
            &[Dataflow::WeightStationary, Dataflow::FusedLayer],
        );
        assert_eq!(grid.len(), 2 * runner.platforms().len());
        assert_eq!(&grid[..runner.platforms().len()], &plain[..]);
        for (r, arch) in grid[runner.platforms().len()..].iter().zip(NoiArch::all()) {
            assert_eq!(r.dataflow, "FL");
            assert_eq!(r.arch, arch.name());
        }
    }

    #[test]
    fn dataflow_grid_independent_of_thread_count() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let dataflows = Dataflow::all();
        let runner = SweepRunner::new(&cfg).unwrap();
        let wide = runner.run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);
        let narrow = runner
            .with_threads(1)
            .run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);
        assert_eq!(wide, narrow);
    }

    #[test]
    fn engine_output_independent_of_thread_count() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let wide = runner.run_workloads(std::slice::from_ref(&wl));
        let narrow = runner
            .with_threads(1)
            .run_workloads(std::slice::from_ref(&wl));
        assert_eq!(wide, narrow);
    }
}

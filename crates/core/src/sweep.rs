//! The shared experiment engine behind the figure sweeps.
//!
//! The paper's headline results (Figs. 3-7) are grids: 4 NoI
//! architectures × 5 Table II mixes through the packet-level DES, and 5
//! DNN models through the 3D joint-optimization flow. [`SweepRunner`]
//! constructs each [`Platform25D`] (topology + route table) exactly once,
//! then fans independent grid cells across [`std::thread::scope`] workers
//! with a work-stealing index.
//!
//! # Determinism guarantee
//!
//! Every grid cell is a pure, seeded function of its inputs, and results
//! are reassembled by cell index — so a sweep's output is bit-identical
//! to the sequential loop it replaces, for any worker count (including
//! one). [`parallel_map`] preserves input order; nothing about thread
//! scheduling can reach the reported numbers.
//!
//! # The evaluation cache
//!
//! Different experiments ask for overlapping grids: Fig. 3 and Fig. 5
//! both run the full (mix × architecture) sweep, and the dataflow figure
//! re-maps the same cells before costing each mode. The [`EvalCache`]
//! owned by every `SweepRunner` memoizes finished [`WorkloadReport`]s
//! (keyed by config fingerprint × architecture × workload × dataflow ×
//! resolved-mapping fingerprint), the dataflow-independent churn
//! mappings behind them, and what the `searched` pseudo-mode resolved
//! each cell to ([`SearchedResolution`]), so a shared
//! runner — `pim-bench run all` holds one per [`crate::RunContext`] —
//! does each evaluation exactly once. Cached cells are pure replays:
//! output stays byte-identical to uncached runs at any thread count.
//! `PIM_BENCH_NO_CACHE=1` bypasses the cache (the equivalence tests diff
//! both modes), and hit/miss counters are surfaced per experiment when
//! `PIM_BENCH_CACHE_STATS=1`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use dnn::{table2, Dataflow, SegmentGraph, Workload};
use mapper::ChurnOutcome;
use serde::Serialize;
use topology::{TopologyError, TopologySummary};

use crate::arch::NoiArch;
use crate::config::SystemConfig;
use crate::platform25::{Platform25D, SearchedResolution, WorkloadReport};
use crate::scratch::{ScratchPool, SweepScratch};

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on up to `threads` scoped workers and
/// returns the results **in input order**, regardless of which worker
/// computed what. Workers pull items off a shared atomic index
/// (work-stealing), so uneven cell costs don't serialize the sweep.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            indexed.extend(w.join().expect("sweep worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// A hit/miss counter snapshot of an [`EvalCache`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Workload reports served from the cache.
    pub hits: u64,
    /// Workload reports computed (and stored) on demand.
    pub misses: u64,
}

impl CacheStats {
    /// Counter delta since an earlier snapshot (the per-experiment
    /// numbers `PIM_BENCH_CACHE_STATS=1` surfaces in output notes).
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// The memoized churn mapping of one (architecture, workload) cell: task
/// graphs plus the dynamic-churn placement, both dataflow-independent.
struct ChurnEntry {
    graphs: Vec<SegmentGraph>,
    outcome: ChurnOutcome,
}

/// Report-cache key: (arch, workload fp, dataflow tag, resolved mapping fp).
type ReportKey = (&'static str, u64, &'static str, u64);

/// Cross-experiment evaluation cache (see the module docs). Owned by a
/// [`SweepRunner`]; every lookup is keyed by the runner's config
/// fingerprint so entries can never leak across differently-configured
/// engines.
///
/// Determinism audit: all three maps are touched **only** through keyed
/// `get`/`insert` under their mutexes — nothing ever iterates them, so
/// their unspecified ordering cannot reach output (the `unordered-iter`
/// pim-lint rule keeps it that way). Only [`CacheStats`] counters, which
/// never feed golden bytes, aggregate across entries.
pub struct EvalCache {
    fingerprint: u64,
    enabled: bool,
    /// Finished reports keyed (arch, workload fp, dataflow tag, resolved
    /// mapping fp). Hand modes key on fingerprint `0` — their mapping is
    /// the tag; `"SRCH"` rows carry [`SearchedResolution::fingerprint`],
    /// so two different resolved mappings under the same tag can never
    /// replay each other's reports.
    reports: Mutex<HashMap<ReportKey, WorkloadReport>>,
    churn: Mutex<HashMap<(&'static str, u64), Arc<ChurnEntry>>>,
    /// What [`dnn::Dataflow::Searched`] resolved to per (arch, workload
    /// fp) cell — the mapping-search memo: later cells replay the
    /// resolved mappings instead of re-running the search.
    resolutions: Mutex<HashMap<(&'static str, u64), SearchedResolution>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalCache")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// FNV-1a over a value's stable `Debug` representation: cheap, has no
/// dependency on a serializer, and changes whenever any field changes —
/// the property the cache keys need.
fn debug_fingerprint(value: &impl fmt::Debug) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{value:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// The runner-wide key prefix: covers the full [`SystemConfig`]
/// (hardware, PIM, thermal, sampling, batch, ...).
fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    debug_fingerprint(cfg)
}

/// Per-cell workload key: covers the *content* of the mix (name, task
/// list, paper totals), not just the Table II name — a caller-mutated
/// `Workload` that reuses a name can never replay another workload's
/// reports.
fn workload_fingerprint(wl: &Workload) -> u64 {
    debug_fingerprint(wl)
}

impl EvalCache {
    /// An empty cache for one config; `PIM_BENCH_NO_CACHE=1` (any
    /// non-`0` value) starts it bypassed.
    fn new(cfg: &SystemConfig) -> Self {
        let bypassed = crate::envknobs::flag("PIM_BENCH_NO_CACHE");
        EvalCache {
            fingerprint: config_fingerprint(cfg),
            enabled: !bypassed,
            reports: Mutex::new(HashMap::new()),
            churn: Mutex::new(HashMap::new()),
            resolutions: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The owning runner's config fingerprint (part of every key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// False when the cache is bypassed (every evaluation recomputes).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The memoized (graphs, churn mapping) of one cell, computed on
    /// first use.
    fn churn_entry(&self, platform: &Platform25D, wl: &Workload, wfp: u64) -> Arc<ChurnEntry> {
        let key = (platform.arch_name(), wfp);
        if let Some(entry) = self.churn.lock().expect("cache lock").get(&key) {
            return Arc::clone(entry);
        }
        let graphs = Platform25D::task_graphs(wl);
        let outcome = platform.churn_outcome_from_graphs(&graphs);
        let entry = Arc::new(ChurnEntry { graphs, outcome });
        self.churn
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&entry));
        entry
    }
}

/// The experiment engine: the four paper platforms built once (route
/// tables cached inside), plus a parallel grid executor.
///
/// # Examples
///
/// ```no_run
/// use pim_core::{SweepRunner, SystemConfig};
///
/// let runner = SweepRunner::new(&SystemConfig::datacenter_25d())?;
/// let reports = runner.fig345_sweep(); // 5 mixes x 4 archs, stable order
/// assert_eq!(reports.len(), 20);
/// # Ok::<(), topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    cfg: SystemConfig,
    threads: usize,
    platforms: Vec<Platform25D>, // NoiArch::all() order
    cache: EvalCache,
    /// Reusable per-cell evaluation buffers, handed to whichever worker
    /// evaluates the next cell (see [`crate::scratch`]).
    scratch: ScratchPool,
}

/// Workloads below this task count bypass the [`EvalCache`] entirely:
/// fingerprinting a workload formats its full `Debug` representation,
/// which costs more than re-evaluating such tiny cells (the BENCH_7
/// `table1`/`fig4`/`hetero` inversion). Every Table II mix is far above
/// this, so the paper sweeps always cache.
pub const CACHE_MIN_TASKS: usize = 4;

impl SweepRunner {
    /// Builds all four [`NoiArch`] platforms once (in parallel) and
    /// defaults the worker count to [`default_threads`].
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn new(cfg: &SystemConfig) -> Result<Self, TopologyError> {
        Self::for_archs(cfg, &NoiArch::all())
    }

    /// Builds the platforms for an explicit architecture subset (in the
    /// given order) — the engine behind scenario `--arch` filters.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn for_archs(cfg: &SystemConfig, archs: &[NoiArch]) -> Result<Self, TopologyError> {
        let threads = default_threads();
        let built = parallel_map(archs, threads, |arch| Platform25D::new(arch.clone(), cfg));
        let mut platforms = Vec::with_capacity(built.len());
        for p in built {
            platforms.push(p?);
        }
        Ok(SweepRunner {
            cfg: cfg.clone(),
            threads,
            platforms,
            cache: EvalCache::new(cfg),
            scratch: ScratchPool::default(),
        })
    }

    /// Builds the engine a resolved [`crate::scenario::Scenario`] asks
    /// for: its (possibly overridden) 2.5D config, its architecture
    /// subset, its worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn from_scenario(s: &crate::scenario::ResolvedScenario) -> Result<Self, TopologyError> {
        Ok(Self::for_archs(&s.cfg25, &s.archs)?.with_threads(s.threads))
    }

    /// Overrides the worker count (clamped to at least one). Output is
    /// identical for any value; this only changes wall-clock time.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's cross-experiment evaluation cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Forces the cache on or off (the programmatic form of
    /// `PIM_BENCH_NO_CACHE`, used by `pim-bench perf` to measure the
    /// uncached baseline in the same process).
    #[must_use]
    pub fn with_cache_enabled(mut self, enabled: bool) -> Self {
        self.cache.enabled = enabled;
        self
    }

    /// Evaluates one (architecture, workload) cell for a dataflow set,
    /// through the cache when enabled. Cached reports are replayed
    /// clones; a partial hit reuses the memoized churn mapping and only
    /// costs the missing modes — every path produces reports
    /// bit-identical to [`Platform25D::run_workload_dataflows`].
    fn eval_cell(&self, pi: usize, wl: &Workload, dataflows: &[Dataflow]) -> Vec<WorkloadReport> {
        let platform = &self.platforms[pi];
        let mut scratch = self.scratch.take();
        // Tiny cells skip the cache: computing the workload fingerprint
        // costs more than the evaluation it would memoize.
        let out = if !self.cache.enabled || wl.task_count() < CACHE_MIN_TASKS {
            platform.run_workload_dataflows_scratch(wl, dataflows, &mut scratch)
        } else {
            let arch = platform.arch_name();
            let wfp = workload_fingerprint(wl);
            let mut entry: Option<Arc<ChurnEntry>> = None;
            dataflows
                .iter()
                .map(|&df| self.eval_mode(platform, wl, arch, wfp, df, &mut entry, &mut scratch))
                .collect()
        };
        self.scratch.put(scratch);
        out
    }

    /// One (cell, dataflow) evaluation through the cache. `Searched`
    /// first consults the resolution memo: a known resolution keys the
    /// report lookup by its mapping fingerprint and, on a report miss,
    /// replays the resolved mappings instead of re-running the search.
    #[allow(clippy::too_many_arguments)]
    fn eval_mode(
        &self,
        platform: &Platform25D,
        wl: &Workload,
        arch: &'static str,
        wfp: u64,
        df: Dataflow,
        entry: &mut Option<Arc<ChurnEntry>>,
        scratch: &mut SweepScratch,
    ) -> WorkloadReport {
        let resolution = match df {
            Dataflow::Searched => self
                .cache
                .resolutions
                .lock()
                .expect("cache lock")
                .get(&(arch, wfp))
                .cloned(),
            _ => None,
        };
        // Hand modes key on mapping fingerprint 0 (the tag *is* the
        // mapping); an unresolved `Searched` has no key yet and must
        // miss.
        let known_mfp = match df {
            Dataflow::Searched => resolution.as_ref().map(|r| r.fingerprint),
            _ => Some(0),
        };
        if let Some(mfp) = known_mfp {
            if let Some(r) =
                self.cache
                    .reports
                    .lock()
                    .expect("cache lock")
                    .get(&(arch, wfp, df.name(), mfp))
            {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                return r.clone();
            }
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let e = Arc::clone(entry.get_or_insert_with(|| self.cache.churn_entry(platform, wl, wfp)));
        let (mfp, report) = match df {
            Dataflow::Searched => match resolution {
                Some(res) => (
                    res.fingerprint,
                    platform
                        .cost_searched_resolution_scratch(wl, &e.graphs, &e.outcome, &res, scratch),
                ),
                None => {
                    let (res, rep) =
                        platform.resolve_searched_scratch(wl, &e.graphs, &e.outcome, scratch);
                    let fp = res.fingerprint;
                    self.cache
                        .resolutions
                        .lock()
                        .expect("cache lock")
                        .insert((arch, wfp), res);
                    (fp, rep)
                }
            },
            df => (
                0,
                platform.cost_churn_outcome_scratch(wl, &e.graphs, &e.outcome, df, scratch),
            ),
        };
        self.cache
            .reports
            .lock()
            .expect("cache lock")
            .insert((arch, wfp, df.name(), mfp), report.clone());
        report
    }

    /// The system configuration the platforms were built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The cached platforms, in [`NoiArch::all`] order.
    pub fn platforms(&self) -> &[Platform25D] {
        &self.platforms
    }

    /// The cached platform for one architecture.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is not one of the four paper architectures.
    pub fn platform(&self, arch: &NoiArch) -> &Platform25D {
        self.platforms
            .iter()
            .find(|p| p.arch() == arch)
            .expect("SweepRunner caches every paper architecture")
    }

    /// Runs one (architecture, workload) cell on the cached platform.
    pub fn run_arch_workload(&self, arch: &NoiArch, wl_name: &str) -> WorkloadReport {
        let wl = dnn::table2_workload(wl_name).expect("table II workload");
        let pi = self
            .platforms
            .iter()
            .position(|p| p.arch() == arch)
            .expect("SweepRunner caches every paper architecture");
        self.eval_cell(pi, &wl, &[Dataflow::WeightStationary])
            .pop()
            .expect("one dataflow in, one report out")
    }

    /// The (workload × architecture) grid over the cached platforms:
    /// workload-major, [`NoiArch::all`] order within each workload —
    /// exactly the sequential seed ordering.
    pub fn run_workloads(&self, workloads: &[Workload]) -> Vec<WorkloadReport> {
        let cells: Vec<(&Workload, usize)> = workloads
            .iter()
            .flat_map(|wl| (0..self.platforms.len()).map(move |pi| (wl, pi)))
            .collect();
        parallel_map(&cells, self.threads, |&(wl, pi)| {
            self.eval_cell(pi, wl, &[Dataflow::WeightStationary])
                .pop()
                .expect("one dataflow in, one report out")
        })
    }

    /// Fig. 3/4/5: the full Table II × architecture sweep.
    pub fn fig345_sweep(&self) -> Vec<WorkloadReport> {
        self.run_workloads(&table2())
    }

    /// The (workload × dataflow × architecture) grid over the cached
    /// platforms: workload-major, then `dataflows` order, then
    /// [`NoiArch::all`] order — so each consecutive chunk of
    /// `dataflows.len() * platforms.len()` rows is one workload, and the
    /// [`Dataflow::WeightStationary`] rows reproduce [`Self::run_workloads`]
    /// exactly.
    ///
    /// The churned placement is dataflow-independent, so each
    /// (workload, architecture) cell maps once and costs every dataflow
    /// from the shared outcome
    /// ([`Platform25D::run_workload_dataflows`]) — the reports are still
    /// bit-identical to per-mode [`Platform25D::run_workload_with`]
    /// calls, just without redundant mapping work.
    pub fn run_workloads_dataflows(
        &self,
        workloads: &[Workload],
        dataflows: &[Dataflow],
    ) -> Vec<WorkloadReport> {
        let cells: Vec<(&Workload, usize)> = workloads
            .iter()
            .flat_map(|wl| (0..self.platforms.len()).map(move |pi| (wl, pi)))
            .collect();
        let per_cell = parallel_map(&cells, self.threads, |&(wl, pi)| {
            self.eval_cell(pi, wl, dataflows)
        });
        // Reassemble (workload, arch)[dataflow] into workload-major,
        // dataflow, architecture order.
        let n_arch = self.platforms.len();
        let mut out = Vec::with_capacity(per_cell.len() * dataflows.len());
        for wl_cells in per_cell.chunks(n_arch) {
            for d in 0..dataflows.len() {
                for cell in wl_cells {
                    out.push(cell[d].clone());
                }
            }
        }
        out
    }

    /// The dataflow figure: all Table II mixes × the four [`Dataflow`]
    /// modes × the four architectures.
    pub fn dataflow_sweep(&self) -> Vec<WorkloadReport> {
        self.run_workloads_dataflows(&table2(), &Dataflow::all())
    }

    /// Fig. 2: structural summaries of the cached platforms.
    pub fn fig2_summaries(&self) -> Vec<TopologySummary> {
        self.platforms.iter().map(Platform25D::structure).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8, 200] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), seq);
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(parallel_map(&empty, 8, |x| *x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        parallel_map(&items, 4, |x| {
            assert!(*x != 5, "boom");
            *x
        });
    }

    #[test]
    fn runner_caches_all_four_platforms() {
        let cfg = SystemConfig::datacenter_25d();
        let runner = SweepRunner::new(&cfg).unwrap();
        assert_eq!(runner.platforms().len(), 4);
        for (p, arch) in runner.platforms().iter().zip(NoiArch::all()) {
            assert_eq!(p.arch(), &arch);
            assert!(std::ptr::eq(runner.platform(&arch), p));
        }
    }

    #[test]
    fn engine_grid_is_bit_identical_to_sequential_rebuild() {
        // The hoisted-construction + parallel-fan-out path must reproduce
        // the seed's rebuild-every-cell sequential loop exactly, cell for
        // cell, in the same order.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let engine = runner.run_workloads(std::slice::from_ref(&wl));

        let sequential: Vec<WorkloadReport> = NoiArch::all()
            .into_iter()
            .map(|arch| {
                Platform25D::new(arch, &cfg)
                    .expect("paper architectures build")
                    .run_workload(&wl)
            })
            .collect();
        assert_eq!(engine, sequential);
    }

    #[test]
    fn dataflow_grid_ws_rows_match_the_plain_grid() {
        // The dataflow axis is a strict superset: its weight-stationary
        // rows must be bit-identical to the pre-axis workload grid.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let plain = runner.run_workloads(std::slice::from_ref(&wl));
        let grid = runner.run_workloads_dataflows(
            std::slice::from_ref(&wl),
            &[Dataflow::WeightStationary, Dataflow::FusedLayer],
        );
        assert_eq!(grid.len(), 2 * runner.platforms().len());
        assert_eq!(&grid[..runner.platforms().len()], &plain[..]);
        for (r, arch) in grid[runner.platforms().len()..].iter().zip(NoiArch::all()) {
            assert_eq!(r.dataflow, "FL");
            assert_eq!(r.arch, arch.name());
        }
    }

    #[test]
    fn dataflow_grid_independent_of_thread_count() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let dataflows = Dataflow::all();
        let runner = SweepRunner::new(&cfg).unwrap();
        let wide = runner.run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);
        let narrow = runner
            .with_threads(1)
            .run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);
        assert_eq!(wide, narrow);
    }

    #[test]
    fn engine_output_independent_of_thread_count() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap();
        let wide = runner.run_workloads(std::slice::from_ref(&wl));
        let narrow = runner
            .with_threads(1)
            .run_workloads(std::slice::from_ref(&wl));
        assert_eq!(wide, narrow);
    }

    #[test]
    fn cache_replays_are_byte_identical_to_uncached_runs() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let cached = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let bypass = SweepRunner::new(&cfg).unwrap().with_cache_enabled(false);

        let first = cached.run_workloads(std::slice::from_ref(&wl));
        let replay = cached.run_workloads(std::slice::from_ref(&wl));
        let fresh = bypass.run_workloads(std::slice::from_ref(&wl));
        assert_eq!(first, replay, "cache replay must change nothing");
        assert_eq!(first, fresh, "cached and bypassed paths must agree");
        assert_eq!(bypass.cache().stats(), CacheStats::default());
    }

    #[test]
    fn tiny_workloads_bypass_the_cache_entirely() {
        // BENCH_7 showed the "optimized" table1/fig4/hetero cells slower
        // than baseline: fingerprinting a workload costs more than
        // evaluating it when the mix is a handful of tasks. Below
        // CACHE_MIN_TASKS the cache must not even be consulted — zero
        // hits, zero misses, no stored reports — and the result must
        // equal both a cache-disabled run and a cached run of the same
        // mix.
        let cfg = SystemConfig::datacenter_25d();
        let tiny = dnn::Workload {
            name: "tiny".into(),
            mix: vec![dnn::MixEntry {
                count: topology::narrow::u32_idx(CACHE_MIN_TASKS - 1),
                model_index: 0,
            }],
            paper_total_params_b: 0.0,
        };
        assert!(tiny.task_count() < CACHE_MIN_TASKS);
        let runner = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let first = runner.run_workloads(std::slice::from_ref(&tiny));
        let second = runner.run_workloads(std::slice::from_ref(&tiny));
        assert_eq!(
            runner.cache().stats(),
            CacheStats::default(),
            "tiny cells must never touch the cache"
        );
        assert_eq!(first, second);
        let bypass = SweepRunner::new(&cfg)
            .unwrap()
            .with_cache_enabled(false)
            .run_workloads(std::slice::from_ref(&tiny));
        assert_eq!(first, bypass);
    }

    #[test]
    fn cache_counts_hits_and_misses_per_cell() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let runner = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let n = runner.platforms().len() as u64;

        runner.run_workloads(std::slice::from_ref(&wl));
        assert_eq!(runner.cache().stats(), CacheStats { hits: 0, misses: n });
        runner.run_workloads(std::slice::from_ref(&wl));
        assert_eq!(runner.cache().stats(), CacheStats { hits: n, misses: n });
    }

    #[test]
    fn partial_hits_reuse_the_memoized_churn_mapping() {
        // Warm the cache with the weight-stationary rows (the fig3/fig5
        // path), then ask for the full dataflow grid: WS rows replay from
        // the cache, the other modes are costed from the memoized churn
        // mapping — and everything is bit-identical to a cold engine
        // evaluating the grid in one go.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let dataflows = Dataflow::all();
        let warmed = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let ws_rows = warmed.run_workloads(std::slice::from_ref(&wl));
        let grid = warmed.run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);

        let cold = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let cold_grid = cold.run_workloads_dataflows(std::slice::from_ref(&wl), &dataflows);
        assert_eq!(grid, cold_grid);
        assert_eq!(&grid[..ws_rows.len()], &ws_rows[..]);

        let n = warmed.platforms().len() as u64;
        let n_df = dataflows.len() as u64;
        // Warm engine: n WS misses, then n WS hits + n * (n_df - 1)
        // misses for the remaining modes.
        assert_eq!(
            warmed.cache().stats(),
            CacheStats {
                hits: n,
                misses: n * n_df
            }
        );
    }

    #[test]
    fn mutated_workload_with_reused_name_never_replays_stale_reports() {
        // Cache keys cover workload *content*: a caller-tweaked mix that
        // keeps the "WL1" name must miss and be evaluated fresh.
        let cfg = SystemConfig::datacenter_25d();
        let wl = dnn::table2_workload("WL1").unwrap();
        let mut shrunk = wl.clone();
        shrunk.mix.truncate(1); // still named "WL1", different content
        let runner = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let original = runner.run_workloads(std::slice::from_ref(&wl));
        let tweaked = runner.run_workloads(std::slice::from_ref(&shrunk));
        assert_ne!(original, tweaked, "stale replay under a reused name");
        let n = runner.platforms().len() as u64;
        assert_eq!(
            runner.cache().stats(),
            CacheStats {
                hits: 0,
                misses: 2 * n
            }
        );
        // The tweaked rows match an uncached evaluation of the same mix.
        let fresh = SweepRunner::new(&cfg)
            .unwrap()
            .with_cache_enabled(false)
            .run_workloads(std::slice::from_ref(&shrunk));
        assert_eq!(tweaked, fresh);
    }

    #[test]
    fn searched_report_keys_include_the_resolved_mapping_fingerprint() {
        // Two different resolved mappings under the same "SRCH" tag must
        // occupy distinct cache slots: a report cached for one mapping
        // can never replay for the other.
        let cfg = SystemConfig::datacenter_25d();
        let runner = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
        let wl = dnn::table2_workload("WL1").unwrap();
        let graphs = Platform25D::task_graphs(&wl);
        let ws = SearchedResolution::new(
            graphs
                .iter()
                .map(|g| dnn::ModelMapping::preset(Dataflow::WeightStationary, g))
                .collect(),
        );
        let os = SearchedResolution::new(
            graphs
                .iter()
                .map(|g| dnn::ModelMapping::preset(Dataflow::OutputStationary, g))
                .collect(),
        );
        assert_ne!(ws.fingerprint, os.fingerprint);

        let arch = runner.platforms()[0].arch_name();
        let wfp = workload_fingerprint(&wl);
        let tag = Dataflow::Searched.name();
        let rep = runner.platforms()[0].run_workload(&wl);
        runner
            .cache()
            .reports
            .lock()
            .unwrap()
            .insert((arch, wfp, tag, ws.fingerprint), rep);
        let cached = runner.cache().reports.lock().unwrap();
        assert!(cached.contains_key(&(arch, wfp, tag, ws.fingerprint)));
        assert!(
            !cached.contains_key(&(arch, wfp, tag, os.fingerprint)),
            "a different mapping under the same tag must miss"
        );
    }

    #[test]
    fn searched_cells_memoize_their_resolution_and_replay_identically() {
        // One architecture keeps this cheap: the searched axis through
        // the cache must equal the bypassed path bit-for-bit, and the
        // second pass must be pure replay (all hits, search memoized).
        let cfg = SystemConfig::datacenter_25d();
        let archs = [NoiArch::Floret { lambda: 6 }];
        let wl = dnn::table2_workload("WL3").unwrap();
        let axis = Dataflow::all_with_searched();
        let cached = SweepRunner::for_archs(&cfg, &archs)
            .unwrap()
            .with_cache_enabled(true);
        let bypass = SweepRunner::for_archs(&cfg, &archs)
            .unwrap()
            .with_cache_enabled(false);

        let first = cached.run_workloads_dataflows(std::slice::from_ref(&wl), &axis);
        let n_axis = axis.len() as u64;
        assert_eq!(
            cached.cache().stats(),
            CacheStats {
                hits: 0,
                misses: n_axis
            }
        );
        let replay = cached.run_workloads_dataflows(std::slice::from_ref(&wl), &axis);
        assert_eq!(first, replay, "cache replay must change nothing");
        assert_eq!(
            cached.cache().stats(),
            CacheStats {
                hits: n_axis,
                misses: n_axis
            }
        );
        let fresh = bypass.run_workloads_dataflows(std::slice::from_ref(&wl), &axis);
        assert_eq!(first, fresh, "cached and bypassed searched paths agree");
        assert_eq!(first.last().unwrap().dataflow, "SRCH");
    }

    #[test]
    fn searched_axis_independent_of_thread_count() {
        let cfg = SystemConfig::datacenter_25d();
        let archs = [NoiArch::Floret { lambda: 6 }, NoiArch::Kite];
        let wl = dnn::table2_workload("WL3").unwrap();
        let axis = Dataflow::all_with_searched();
        let wide = SweepRunner::for_archs(&cfg, &archs)
            .unwrap()
            .run_workloads_dataflows(std::slice::from_ref(&wl), &axis);
        let narrow = SweepRunner::for_archs(&cfg, &archs)
            .unwrap()
            .with_threads(1)
            .run_workloads_dataflows(std::slice::from_ref(&wl), &axis);
        assert_eq!(wide, narrow);
    }

    #[test]
    fn fingerprints_separate_configs() {
        let base = SystemConfig::datacenter_25d();
        let mut tweaked = base.clone();
        tweaked.batch += 1;
        let a = SweepRunner::new(&base).unwrap();
        let b = SweepRunner::new(&tweaked).unwrap();
        assert_ne!(a.cache().fingerprint(), b.cache().fingerprint());
        assert_eq!(
            a.cache().fingerprint(),
            SweepRunner::new(&base).unwrap().cache().fingerprint()
        );
    }
}

//! System-level configuration shared by the 2.5D and 3D platforms,
//! plus the validating builder behind the `pim-bench --set key=value`
//! override surface.

use std::fmt;

use pim::PimConfig;
use serde::{Deserialize, Serialize};
use thermal::ThermalConfig;
use topology::HwParams;

/// Typed rejection of a degenerate or unparseable [`SystemConfig`].
///
/// Returned by [`SystemConfig::validate`] and
/// [`SystemConfigBuilder::set`] instead of letting zero grid dimensions,
/// `sim_sampling == 0` or `snapshot_every == 0` panic (division/modulo
/// by zero) deep inside the platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be strictly positive is zero.
    ZeroField(&'static str),
    /// `--set key=value` named a key the builder does not know.
    UnknownKey(String),
    /// `--set key=value` value failed to parse for its key's type.
    InvalidValue {
        /// The override key.
        key: String,
        /// The unparseable value text.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(field) => {
                write!(f, "config field `{field}` must be > 0")
            }
            ConfigError::UnknownKey(key) => {
                write!(
                    f,
                    "unknown config key `{key}` (see `SystemConfigBuilder::KEYS`)"
                )
            }
            ConfigError::InvalidValue { key, value } => {
                write!(f, "invalid value `{value}` for config key `{key}`")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a PIM-enabled manycore system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Chiplet/PE grid width.
    pub width: u16,
    /// Chiplet/PE grid height.
    pub height: u16,
    /// Tiers (1 for 2.5D interposer systems).
    pub tiers: u16,
    /// Interconnect hardware model.
    pub hw: HwParams,
    /// PIM compute model (crossbars per node set the per-chiplet weight
    /// capacity).
    pub pim: PimConfig,
    /// Thermal network (3D systems).
    pub thermal: ThermalConfig,
    /// Bytes per activation element on the NoI (8-bit inference).
    pub activation_bytes: u64,
    /// Traffic sampling divisor for the discrete-event simulator: flows
    /// are scaled by `1/sim_sampling` before simulation. Relative
    /// architecture comparisons are unaffected; energies are reported
    /// un-sampled through the analytical model.
    pub sim_sampling: u64,
    /// Concurrent inference streams (batch) driving the 3D power model
    /// and the per-task NoI traffic volume.
    pub batch: u32,
    /// Simulate every N-th resident-set snapshot of the churn schedule
    /// (the last snapshot is always simulated).
    pub snapshot_every: u32,
    /// Dynamic thermal design power of the 3D stack, W: streaming
    /// inference is throttled so the aggregate dynamic PIM power hits
    /// this budget (0 disables the normalization). Keeps every Fig. 6
    /// workload in the same thermal envelope so that placement quality —
    /// not model size — drives the temperature differences.
    pub dynamic_power_budget_w: f64,
}

impl SystemConfig {
    /// The 100-chiplet 2.5D datacenter configuration of Section II:
    /// 10x10 chiplets, ~2.1M 8-bit weights per chiplet (512 crossbars of
    /// 128x128 2-bit cells).
    pub fn datacenter_25d() -> Self {
        SystemConfig {
            width: 10,
            height: 10,
            tiers: 1,
            hw: HwParams::default(),
            pim: PimConfig {
                crossbars_per_node: 512,
                ..PimConfig::default()
            },
            thermal: ThermalConfig::m3d(),
            activation_bytes: 1,
            sim_sampling: 64,
            batch: 8,
            snapshot_every: 4,
            dynamic_power_budget_w: 0.0,
        }
    }

    /// The 100-PE 3D configuration of Section III: 5x5x4 M3D stack,
    /// ~0.5M weights per PE (128 crossbars).
    pub fn stacked_3d() -> Self {
        SystemConfig {
            width: 5,
            height: 5,
            tiers: 4,
            hw: HwParams::default(),
            pim: PimConfig {
                crossbars_per_node: 128,
                ..PimConfig::default()
            },
            thermal: ThermalConfig::m3d(),
            activation_bytes: 1,
            sim_sampling: 64,
            batch: 8,
            snapshot_every: 4,
            dynamic_power_budget_w: 30.0,
        }
    }

    /// Chiplet/PE count.
    pub fn node_count(&self) -> usize {
        self.width as usize * self.height as usize * self.tiers as usize
    }

    /// Weight capacity per chiplet/PE.
    pub fn node_capacity(&self) -> u64 {
        self.pim.weights_per_node()
    }

    /// Rejects degenerate values that would otherwise panic downstream:
    /// zero grid dimensions (empty platform), `sim_sampling == 0`
    /// (division by zero scaling traffic), `snapshot_every == 0` (modulo
    /// by zero in the churn schedule), plus zero `batch`,
    /// `activation_bytes` and `pim.crossbars_per_node` (no traffic / no
    /// capacity).
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroField`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positives: [(&'static str, u64); 7] = [
            ("width", u64::from(self.width)),
            ("height", u64::from(self.height)),
            ("tiers", u64::from(self.tiers)),
            ("sim_sampling", self.sim_sampling),
            ("snapshot_every", u64::from(self.snapshot_every)),
            ("batch", u64::from(self.batch)),
            ("activation_bytes", self.activation_bytes),
        ];
        for (field, v) in positives {
            if v == 0 {
                return Err(ConfigError::ZeroField(field));
            }
        }
        if self.pim.crossbars_per_node == 0 {
            return Err(ConfigError::ZeroField("pim.crossbars_per_node"));
        }
        Ok(())
    }

    /// Starts a validating [`SystemConfigBuilder`] from this config.
    pub fn builder(self) -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: self }
    }
}

/// Validating builder over a [`SystemConfig`] base: typed setters plus
/// the stringly `--set key=value` surface the `pim-bench` CLI exposes.
/// [`SystemConfigBuilder::build`] runs [`SystemConfig::validate`], so a
/// degenerate config is a typed [`ConfigError`] instead of a downstream
/// panic.
///
/// # Examples
///
/// ```
/// use pim_core::{ConfigError, SystemConfig};
///
/// let cfg = SystemConfig::datacenter_25d()
///     .builder()
///     .set("batch", "4")?
///     .set("sim_sampling", "32")?
///     .build()?;
/// assert_eq!(cfg.batch, 4);
///
/// let err = SystemConfig::datacenter_25d()
///     .builder()
///     .set("width", "0")?
///     .build()
///     .unwrap_err();
/// assert_eq!(err, ConfigError::ZeroField("width"));
/// # Ok::<(), ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Every key [`SystemConfigBuilder::set`] accepts.
    pub const KEYS: [&'static str; 10] = [
        "width",
        "height",
        "tiers",
        "activation_bytes",
        "sim_sampling",
        "batch",
        "snapshot_every",
        "dynamic_power_budget_w",
        "pim.crossbars_per_node",
        "thermal.g_vertical",
    ];

    /// Applies one `key=value` override (the CLI `--set` surface).
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownKey`] for a key outside
    /// [`SystemConfigBuilder::KEYS`], [`ConfigError::InvalidValue`] when
    /// the value fails to parse for the key's type.
    pub fn set(mut self, key: &str, value: &str) -> Result<Self, ConfigError> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ConfigError> {
            value.parse().map_err(|_| ConfigError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            })
        }
        match key {
            "width" => self.cfg.width = parse(key, value)?,
            "height" => self.cfg.height = parse(key, value)?,
            "tiers" => self.cfg.tiers = parse(key, value)?,
            "activation_bytes" => self.cfg.activation_bytes = parse(key, value)?,
            "sim_sampling" => self.cfg.sim_sampling = parse(key, value)?,
            "batch" => self.cfg.batch = parse(key, value)?,
            "snapshot_every" => self.cfg.snapshot_every = parse(key, value)?,
            "dynamic_power_budget_w" => self.cfg.dynamic_power_budget_w = parse(key, value)?,
            "pim.crossbars_per_node" => self.cfg.pim.crossbars_per_node = parse(key, value)?,
            "thermal.g_vertical" => self.cfg.thermal.g_vertical = parse(key, value)?,
            _ => return Err(ConfigError::UnknownKey(key.to_string())),
        }
        Ok(self)
    }

    /// Applies a sequence of `(key, value)` overrides.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ConfigError`] from
    /// [`SystemConfigBuilder::set`].
    pub fn apply<'a, I>(mut self, overrides: I) -> Result<Self, ConfigError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        for (k, v) in overrides {
            self = self.set(k, v)?;
        }
        Ok(self)
    }

    /// Typed setter for the grid dimensions.
    #[must_use]
    pub fn grid(mut self, width: u16, height: u16, tiers: u16) -> Self {
        self.cfg.width = width;
        self.cfg.height = height;
        self.cfg.tiers = tiers;
        self
    }

    /// Typed setter for the concurrent inference stream count.
    #[must_use]
    pub fn batch(mut self, batch: u32) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Typed setter for the DES traffic sampling divisor.
    #[must_use]
    pub fn sim_sampling(mut self, sampling: u64) -> Self {
        self.cfg.sim_sampling = sampling;
        self
    }

    /// Validates and returns the final config.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig::validate`]'s [`ConfigError`].
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_defaults() {
        let cfg = SystemConfig::datacenter_25d();
        assert_eq!(cfg.node_count(), 100);
        // 128 rows x 32 weight cols x 512 crossbars.
        assert_eq!(cfg.node_capacity(), 128 * 32 * 512);
    }

    #[test]
    fn stacked_defaults() {
        let cfg = SystemConfig::stacked_3d();
        assert_eq!(cfg.node_count(), 100);
        assert_eq!(cfg.tiers, 4);
        assert_eq!(cfg.node_capacity(), 128 * 32 * 128);
    }

    #[test]
    fn paper_configs_validate() {
        SystemConfig::datacenter_25d().validate().unwrap();
        SystemConfig::stacked_3d().validate().unwrap();
    }

    #[test]
    fn validate_rejects_each_degenerate_field() {
        // Every zeroable field is rejected with a typed error naming it,
        // instead of a div/mod-by-zero panic downstream.
        type Poke = fn(&mut SystemConfig);
        let cases: [(&str, Poke); 8] = [
            ("width", |c| c.width = 0),
            ("height", |c| c.height = 0),
            ("tiers", |c| c.tiers = 0),
            ("sim_sampling", |c| c.sim_sampling = 0),
            ("snapshot_every", |c| c.snapshot_every = 0),
            ("batch", |c| c.batch = 0),
            ("activation_bytes", |c| c.activation_bytes = 0),
            ("pim.crossbars_per_node", |c| c.pim.crossbars_per_node = 0),
        ];
        for (field, poke) in cases {
            let mut cfg = SystemConfig::datacenter_25d();
            poke(&mut cfg);
            assert_eq!(cfg.validate(), Err(ConfigError::ZeroField(field)));
        }
    }

    #[test]
    fn builder_sets_every_documented_key() {
        let mut b = SystemConfig::datacenter_25d().builder();
        for key in SystemConfigBuilder::KEYS {
            b = b.set(key, "3").unwrap_or_else(|e| panic!("{key}: {e}"));
        }
        let cfg = b.build().unwrap();
        assert_eq!(cfg.width, 3);
        assert_eq!(cfg.sim_sampling, 3);
        assert_eq!(cfg.pim.crossbars_per_node, 3);
        assert!((cfg.thermal.g_vertical - 3.0).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_unknown_keys_and_bad_values() {
        let b = SystemConfig::datacenter_25d().builder();
        assert_eq!(
            b.clone().set("wdith", "3").unwrap_err(),
            ConfigError::UnknownKey("wdith".to_string())
        );
        assert_eq!(
            b.set("batch", "many").unwrap_err(),
            ConfigError::InvalidValue {
                key: "batch".to_string(),
                value: "many".to_string(),
            }
        );
    }

    #[test]
    fn builder_build_runs_validate() {
        let err = SystemConfig::datacenter_25d()
            .builder()
            .set("snapshot_every", "0")
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroField("snapshot_every"));
    }

    #[test]
    fn config_errors_display_their_context() {
        assert!(ConfigError::ZeroField("width")
            .to_string()
            .contains("width"));
        assert!(ConfigError::UnknownKey("xyz".into())
            .to_string()
            .contains("xyz"));
        let e = ConfigError::InvalidValue {
            key: "batch".into(),
            value: "many".into(),
        };
        assert!(e.to_string().contains("batch") && e.to_string().contains("many"));
    }
}

//! System-level configuration shared by the 2.5D and 3D platforms.

use pim::PimConfig;
use serde::{Deserialize, Serialize};
use thermal::ThermalConfig;
use topology::HwParams;

/// Full configuration of a PIM-enabled manycore system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Chiplet/PE grid width.
    pub width: u16,
    /// Chiplet/PE grid height.
    pub height: u16,
    /// Tiers (1 for 2.5D interposer systems).
    pub tiers: u16,
    /// Interconnect hardware model.
    pub hw: HwParams,
    /// PIM compute model (crossbars per node set the per-chiplet weight
    /// capacity).
    pub pim: PimConfig,
    /// Thermal network (3D systems).
    pub thermal: ThermalConfig,
    /// Bytes per activation element on the NoI (8-bit inference).
    pub activation_bytes: u64,
    /// Traffic sampling divisor for the discrete-event simulator: flows
    /// are scaled by `1/sim_sampling` before simulation. Relative
    /// architecture comparisons are unaffected; energies are reported
    /// un-sampled through the analytical model.
    pub sim_sampling: u64,
    /// Concurrent inference streams (batch) driving the 3D power model
    /// and the per-task NoI traffic volume.
    pub batch: u32,
    /// Simulate every N-th resident-set snapshot of the churn schedule
    /// (the last snapshot is always simulated).
    pub snapshot_every: u32,
    /// Dynamic thermal design power of the 3D stack, W: streaming
    /// inference is throttled so the aggregate dynamic PIM power hits
    /// this budget (0 disables the normalization). Keeps every Fig. 6
    /// workload in the same thermal envelope so that placement quality —
    /// not model size — drives the temperature differences.
    pub dynamic_power_budget_w: f64,
}

impl SystemConfig {
    /// The 100-chiplet 2.5D datacenter configuration of Section II:
    /// 10x10 chiplets, ~2.1M 8-bit weights per chiplet (512 crossbars of
    /// 128x128 2-bit cells).
    pub fn datacenter_25d() -> Self {
        SystemConfig {
            width: 10,
            height: 10,
            tiers: 1,
            hw: HwParams::default(),
            pim: PimConfig {
                crossbars_per_node: 512,
                ..PimConfig::default()
            },
            thermal: ThermalConfig::m3d(),
            activation_bytes: 1,
            sim_sampling: 64,
            batch: 8,
            snapshot_every: 4,
            dynamic_power_budget_w: 0.0,
        }
    }

    /// The 100-PE 3D configuration of Section III: 5x5x4 M3D stack,
    /// ~0.5M weights per PE (128 crossbars).
    pub fn stacked_3d() -> Self {
        SystemConfig {
            width: 5,
            height: 5,
            tiers: 4,
            hw: HwParams::default(),
            pim: PimConfig {
                crossbars_per_node: 128,
                ..PimConfig::default()
            },
            thermal: ThermalConfig::m3d(),
            activation_bytes: 1,
            sim_sampling: 64,
            batch: 8,
            snapshot_every: 4,
            dynamic_power_budget_w: 30.0,
        }
    }

    /// Chiplet/PE count.
    pub fn node_count(&self) -> usize {
        self.width as usize * self.height as usize * self.tiers as usize
    }

    /// Weight capacity per chiplet/PE.
    pub fn node_capacity(&self) -> u64 {
        self.pim.weights_per_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_defaults() {
        let cfg = SystemConfig::datacenter_25d();
        assert_eq!(cfg.node_count(), 100);
        // 128 rows x 32 weight cols x 512 crossbars.
        assert_eq!(cfg.node_capacity(), 128 * 32 * 512);
    }

    #[test]
    fn stacked_defaults() {
        let cfg = SystemConfig::stacked_3d();
        assert_eq!(cfg.node_count(), 100);
        assert_eq!(cfg.tiers, 4);
        assert_eq!(cfg.node_capacity(), 128 * 32 * 128);
    }
}

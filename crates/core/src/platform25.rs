//! The 2.5D chiplet platform: one NoI architecture + mapping strategy +
//! network simulation, evaluated on concurrent-DNN workloads (Section II).

use std::collections::BTreeMap;
use std::sync::Arc;

use dnn::{build_model, Dataflow, ModelMapping, SegmentGraph, Workload};
use mapper::{
    placement_transfers, run_churn, run_queue, search_model, transfers_for_batch_into,
    transfers_for_batch_mapped_into, ChurnOutcome, QueueOutcome, SearchOptions, Strategy,
    StrategyKind,
};
use netsim::{
    analyze_with_table, sample_flows_into, simulate_with_scratch, Flow, RouteTable, SimConfig,
};
use serde::{Deserialize, Serialize};
use topology::{FloretLayout, Topology, TopologyError, TopologySummary};

use crate::arch::NoiArch;
use crate::config::SystemConfig;
use crate::scenario::ScenarioError;
use crate::scratch::{SweepScratch, NO_SLOT};

/// A 2.5D PIM chiplet system with a fixed NoI architecture.
///
/// # Examples
///
/// ```
/// use pim_core::{NoiArch, Platform25D, SystemConfig};
///
/// let cfg = SystemConfig::datacenter_25d();
/// let floret = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg)?;
/// let wl = dnn::table2_workload("WL1").expect("table workload");
/// let report = floret.run_workload(&wl);
/// assert_eq!(report.mapped_tasks, wl.task_count());
/// # Ok::<(), topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct Platform25D {
    arch: NoiArch,
    cfg: SystemConfig,
    topo: Topology,
    layout: Option<FloretLayout>,
    route: RouteTable,
}

/// Aggregate result of executing one Table II workload mix under the
/// dynamic-churn service model (tasks arrive as a queue, the oldest
/// resident completes when space is needed).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Architecture name.
    pub arch: String,
    /// Workload name.
    pub workload: String,
    /// Dataflow short name ([`Dataflow::name`]; `"WS"` for the baseline).
    pub dataflow: String,
    /// Forced departures during admission (churn-pressure diagnostic).
    pub departures: usize,
    /// Mean chiplet utilization sampled at each admission (Fig. 4 metric).
    pub mean_utilization: f64,
    /// Tasks successfully mapped.
    pub mapped_tasks: usize,
    /// Tasks that could not be mapped at all.
    pub failed_tasks: usize,
    /// Total NoI latency summed over tasks from the discrete-event
    /// simulator on sampled traffic, cycles (Fig. 3 metric).
    pub sim_latency_cycles: u64,
    /// Packet-count-weighted mean packet latency, cycles.
    pub mean_packet_latency_cycles: f64,
    /// Analytical makespan bound summed over tasks on the full traffic,
    /// cycles.
    pub analytical_latency_cycles: u64,
    /// Total NoI energy on the full traffic: dynamic (per-flit switching)
    /// plus static (area-proportional idle power over the execution
    /// time), pJ (Fig. 5 metric).
    pub noi_energy_pj: f64,
    /// Dynamic share of [`WorkloadReport::noi_energy_pj`], pJ.
    pub noi_dynamic_energy_pj: f64,
    /// Mean hop count weighted by traffic bytes (mapping-quality
    /// diagnostic).
    pub mean_weighted_hops: f64,
    /// Total inter-chiplet traffic, bytes.
    pub total_traffic_bytes: u64,
    /// One-time crossbar programming energy paid at each task admission
    /// (dynamic mapping is not free: every placement writes its weights
    /// into ReRAM), pJ.
    pub program_energy_pj: f64,
    /// Total crossbar programming time across admissions, ns.
    pub program_latency_ns: f64,
    /// PIM compute energy across all mapped tasks, pJ — scaled by the
    /// dataflow's buffer residency ([`pim::model_cost_with`]).
    pub compute_energy_pj: f64,
    /// Sequential-bound PIM compute latency across all mapped tasks, ns
    /// (input-stationary pays a weight re-staging stall).
    pub compute_latency_ns: f64,
}

/// The per-task loop-nest mappings that [`Dataflow::Searched`] resolved
/// to on one (architecture, workload) cell, plus a stable fingerprint
/// over them. The `pim_core::sweep::EvalCache` memoizes this so repeated
/// cells replay the resolved mappings instead of re-running the search.
#[derive(Clone, Debug)]
pub struct SearchedResolution {
    /// One resolved mapping per workload task, aligned with
    /// [`Platform25D::task_graphs`].
    pub mappings: Arc<Vec<ModelMapping>>,
    /// FNV-1a fingerprint chained over the per-task mapping
    /// fingerprints — distinct resolved mappings get distinct cache keys
    /// even under the same `"SRCH"` tag.
    pub fingerprint: u64,
}

impl SearchedResolution {
    /// Wraps per-task mappings (aligned with [`Platform25D::task_graphs`])
    /// and fingerprints them.
    pub fn new(mappings: Vec<ModelMapping>) -> Self {
        // Same FNV-1a constants as `dnn::mapping`, chained per task.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for m in &mappings {
            for b in m.fingerprint().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
        SearchedResolution {
            mappings: Arc::new(mappings),
            fingerprint: h,
        }
    }
}

/// How a churned placement is costed: a fixed hand dataflow mode, or
/// per-task resolved loop-nest mappings (the `searched` pseudo-mode).
enum CostModel<'a> {
    Mode(Dataflow),
    Mapped(&'a [ModelMapping]),
}

impl CostModel<'_> {
    fn tag(&self) -> &'static str {
        match self {
            CostModel::Mode(df) => df.name(),
            CostModel::Mapped(_) => Dataflow::Searched.name(),
        }
    }
}

impl Platform25D {
    /// Builds the platform for one architecture.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the topology generators.
    pub fn new(arch: NoiArch, cfg: &SystemConfig) -> Result<Self, TopologyError> {
        let (topo, layout) = arch.build(cfg.width, cfg.height)?;
        let route = RouteTable::build(&topo, &cfg.hw);
        Ok(Platform25D {
            arch,
            cfg: cfg.clone(),
            topo,
            layout,
            route,
        })
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The SFC layout (Floret only).
    pub fn layout(&self) -> Option<&FloretLayout> {
        self.layout.as_ref()
    }

    /// Architecture name.
    pub fn arch_name(&self) -> &'static str {
        self.arch.name()
    }

    /// The architecture selector this platform was built from.
    pub fn arch(&self) -> &NoiArch {
        &self.arch
    }

    /// The cached routing table (shared by every simulation on this
    /// platform).
    pub fn route_table(&self) -> &netsim::RouteTable {
        &self.route
    }

    /// Structural summary (Fig. 2 row).
    pub fn structure(&self) -> TopologySummary {
        topology::summarize(&self.topo, &self.cfg.hw)
    }

    /// NoI silicon area under the hardware model, mm² (cost input).
    pub fn noi_area_mm2(&self) -> f64 {
        self.cfg.hw.noi_area_mm2(&self.topo)
    }

    /// Builds the per-task segment graphs of a workload (cached per
    /// model/dataset pair).
    pub fn task_graphs(wl: &Workload) -> Vec<SegmentGraph> {
        let mut cache: BTreeMap<(String, String), SegmentGraph> = BTreeMap::new();
        wl.tasks()
            .into_iter()
            .map(|(kind, dataset)| {
                cache
                    .entry((kind.to_string(), dataset.to_string()))
                    .or_insert_with(|| {
                        let g = build_model(kind, dataset).expect("table models build");
                        SegmentGraph::from_layer_graph(&g)
                    })
                    .clone()
            })
            .collect()
    }

    /// Mapping strategy: SFC along the Floret curve, or greedy for the
    /// baselines. `soft` lifts the baseline contiguity constraint (the
    /// plain "least hops" greedy used for the latency/energy figures);
    /// the hard variant is the admission model of the Fig. 4 comparison.
    fn strategy(&self, soft: bool) -> Strategy<'_> {
        match &self.layout {
            Some(layout) => Strategy::sfc(layout),
            None => {
                let cfg = if soft {
                    mapper::GreedyConfig::soft()
                } else {
                    self.arch.greedy_config()
                };
                Strategy::greedy(&self.topo, cfg)
            }
        }
    }

    /// Resolves a scenario's mapping-strategy selection against this
    /// platform: `None` keeps the per-architecture paper default (SFC
    /// where a chiplet layout exists, greedy otherwise); an explicit
    /// [`StrategyKind`] forces that strategy. `soft` selects the relaxed
    /// greedy contiguity config (see [`Platform25D::map_workload_churn`]).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Strategy`] when `sfc` is forced on an
    /// architecture without a chiplet layout.
    pub fn strategy_for(
        &self,
        kind: Option<StrategyKind>,
        soft: bool,
    ) -> Result<Strategy<'_>, ScenarioError> {
        match kind {
            None => Ok(self.strategy(soft)),
            Some(StrategyKind::Sfc) => match &self.layout {
                Some(layout) => Ok(Strategy::sfc(layout)),
                None => Err(ScenarioError::Strategy(format!(
                    "strategy `sfc` needs a chiplet layout, but {} has none (use `greedy`)",
                    self.arch_name()
                ))),
            },
            Some(StrategyKind::Greedy) => {
                let cfg = if soft {
                    mapper::GreedyConfig::soft()
                } else {
                    self.arch.greedy_config()
                };
                Ok(Strategy::greedy(&self.topo, cfg))
            }
        }
    }

    /// Maps the workload queue wave-by-wave (all resident tasks complete
    /// together) under the hard-contiguity admission model. Used by the
    /// Fig. 4 utilization comparison.
    pub fn map_workload(&self, wl: &Workload) -> QueueOutcome {
        let graphs = Self::task_graphs(wl);
        run_queue(
            &graphs,
            self.cfg.node_count(),
            self.cfg.node_capacity(),
            &self.strategy(false),
        )
    }

    /// Maps the workload queue under dynamic churn (FIFO task
    /// completions), producing the fragmented placements that drive the
    /// Fig. 3/5 comparison.
    pub fn map_workload_churn(&self, wl: &Workload) -> ChurnOutcome {
        let graphs = Self::task_graphs(wl);
        run_churn(
            &graphs,
            self.cfg.node_count(),
            self.cfg.node_capacity(),
            &self.strategy(true),
        )
    }

    /// [`Platform25D::map_workload_churn`] with injected chiplet faults:
    /// the listed chiplets are dead before any task arrives, and the
    /// mapper must work around them (the SFC re-stitches over dead
    /// chiplets at the cost of extra hops).
    pub fn map_workload_churn_with_faults(
        &self,
        wl: &Workload,
        failed: &[topology::NodeId],
    ) -> ChurnOutcome {
        let graphs = Self::task_graphs(wl);
        let mut ledger =
            mapper::CapacityLedger::new(self.cfg.node_count(), self.cfg.node_capacity());
        for &n in failed {
            ledger.mark_failed(n);
        }
        mapper::run_churn_with_ledger(&graphs, ledger, &self.strategy(true))
    }

    /// Fault-tolerance study: re-runs the workload with the given dead
    /// chiplets and reports the byte-weighted mean hop count and total
    /// traffic of the degraded placements (the NoI metrics of the
    /// fault-injection ablation).
    pub fn degraded_hops(&self, wl: &Workload, failed: &[topology::NodeId]) -> (f64, u64) {
        let graphs = Self::task_graphs(wl);
        let outcome = self.map_workload_churn_with_faults(wl, failed);
        let mut hops_weighted = 0.0;
        let mut traffic = 0u64;
        for tp in &outcome.placements {
            let transfers =
                placement_transfers(tp, &graphs[tp.task.index()], self.cfg.activation_bytes);
            let flows: Vec<Flow> = transfers
                .iter()
                .map(|t| Flow::new(t.src, t.dst, t.bytes))
                .collect();
            if flows.is_empty() {
                continue;
            }
            let bytes = netsim::total_bytes(&flows);
            let ana = analyze_with_table(&self.topo, &self.cfg.hw, &flows, &self.route);
            hops_weighted += ana.mean_weighted_hops * bytes as f64;
            traffic += bytes;
        }
        (
            if traffic == 0 {
                0.0
            } else {
                hops_weighted / traffic as f64
            },
            traffic,
        )
    }

    /// Maps (under churn) and simulates a workload under the
    /// weight-stationary baseline dataflow (the seed behaviour).
    pub fn run_workload(&self, wl: &Workload) -> WorkloadReport {
        self.run_workload_with(wl, Dataflow::WeightStationary)
    }

    /// Maps (under churn) and simulates a workload under `dataflow`. The
    /// NoI carries the traffic of all *co-resident* tasks simultaneously
    /// (`batch` inference frames each): snapshots of the resident set are
    /// taken along the admission sequence and replayed together, so both
    /// the placement quality under fragmentation and the cross-task link
    /// contention differ across architectures.
    ///
    /// The placement itself is dataflow-independent (weights live where
    /// the mapper put them); the dataflow decides which tensors cross the
    /// NoI per segment edge ([`mapper::transfers_for_batch`]) and what
    /// each MAC costs in buffer traffic ([`pim::model_cost_with`]).
    pub fn run_workload_with(&self, wl: &Workload, dataflow: Dataflow) -> WorkloadReport {
        self.run_workload_dataflows(wl, std::slice::from_ref(&dataflow))
            .pop()
            .expect("one dataflow in, one report out")
    }

    /// Runs one workload under every mode in `dataflows`, in order. The
    /// churned placement is dataflow-independent, so it is computed once
    /// and only the transfer expansion, network replay and compute
    /// costing repeat per mode — each report is bit-identical to the one
    /// [`Platform25D::run_workload_with`] would produce.
    pub fn run_workload_dataflows(
        &self,
        wl: &Workload,
        dataflows: &[Dataflow],
    ) -> Vec<WorkloadReport> {
        self.run_workload_dataflows_scratch(wl, dataflows, &mut SweepScratch::new())
    }

    /// [`Platform25D::run_workload_dataflows`] against caller-owned
    /// scratch (see [`SweepScratch`]) — bit-identical reports, no
    /// per-mode buffer churn.
    pub fn run_workload_dataflows_scratch(
        &self,
        wl: &Workload,
        dataflows: &[Dataflow],
        scratch: &mut SweepScratch,
    ) -> Vec<WorkloadReport> {
        let graphs = Self::task_graphs(wl);
        let outcome = self.churn_outcome_from_graphs(&graphs);
        dataflows
            .iter()
            .map(|&df| self.cost_churn_outcome_scratch(wl, &graphs, &outcome, df, scratch))
            .collect()
    }

    /// The dynamic-churn mapping for pre-built task graphs (the
    /// expensive, dataflow-independent half of a workload run). The
    /// `pim_core::sweep::EvalCache` memoizes this so consecutive
    /// experiments cost new dataflows from the same placement.
    pub fn churn_outcome_from_graphs(&self, graphs: &[SegmentGraph]) -> ChurnOutcome {
        run_churn(
            graphs,
            self.cfg.node_count(),
            self.cfg.node_capacity(),
            &self.strategy(true),
        )
    }

    /// Costs one pre-computed churn outcome under one dataflow — the
    /// exact per-mode step of [`Platform25D::run_workload_dataflows`],
    /// exposed so the evaluation cache can replay a memoized mapping
    /// without redoing it. `graphs` and `outcome` must have been produced
    /// for `wl` on this platform.
    ///
    /// [`Dataflow::Searched`] is resolved here: the mapping search picks
    /// per-task loop nests and the report carries the `"SRCH"` tag (see
    /// [`Platform25D::resolve_searched`]).
    pub fn cost_churn_outcome(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        dataflow: Dataflow,
    ) -> WorkloadReport {
        self.cost_churn_outcome_scratch(wl, graphs, outcome, dataflow, &mut SweepScratch::new())
    }

    /// [`Platform25D::cost_churn_outcome`] against caller-owned scratch.
    pub fn cost_churn_outcome_scratch(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        dataflow: Dataflow,
        scratch: &mut SweepScratch,
    ) -> WorkloadReport {
        match dataflow {
            Dataflow::Searched => {
                self.resolve_searched_scratch(wl, graphs, outcome, scratch)
                    .1
            }
            df => self.report_from_outcome(wl, graphs, outcome, &CostModel::Mode(df), scratch),
        }
    }

    /// Resolves [`Dataflow::Searched`] on one (architecture, workload)
    /// cell and costs it, returning both the winning per-task mappings
    /// and their report.
    ///
    /// Candidates are the deterministic beam search result
    /// ([`mapper::search_model`], compute-optimal per task) plus the four
    /// uniform hand presets, each costed through the full report pipeline
    /// (NoI transfers + network replay + compute). The winner minimizes
    /// whole-report energy×delay ([`Platform25D::report_edp`]); the
    /// searched candidate wins ties, so `searched` never loses to any
    /// hand mode by construction. Resolution is a pure function of
    /// (config, architecture, workload) — no RNG, no thread-count
    /// dependence.
    pub fn resolve_searched(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
    ) -> (SearchedResolution, WorkloadReport) {
        self.resolve_searched_scratch(wl, graphs, outcome, &mut SweepScratch::new())
    }

    /// [`Platform25D::resolve_searched`] against caller-owned scratch.
    pub fn resolve_searched_scratch(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        scratch: &mut SweepScratch,
    ) -> (SearchedResolution, WorkloadReport) {
        let mut candidates: Vec<Vec<ModelMapping>> = Vec::with_capacity(5);
        candidates.push(self.searched_task_mappings(graphs));
        for df in Dataflow::all() {
            candidates.push(graphs.iter().map(|g| ModelMapping::preset(df, g)).collect());
        }
        let mut best: Option<(Vec<ModelMapping>, WorkloadReport, f64)> = None;
        for maps in candidates {
            let rep =
                self.report_from_outcome(wl, graphs, outcome, &CostModel::Mapped(&maps), scratch);
            let edp = self.report_edp(&rep);
            // Strict `<`: the searched candidate comes first and keeps
            // ties, making the resolution deterministic.
            if best.as_ref().is_none_or(|(_, _, b)| edp < *b) {
                best = Some((maps, rep, edp));
            }
        }
        let (maps, rep, _) = best.expect("at least the searched candidate was costed");
        (SearchedResolution::new(maps), rep)
    }

    /// Re-costs a previously resolved [`Dataflow::Searched`] cell without
    /// redoing the search — the cache-replay half of
    /// [`Platform25D::resolve_searched`].
    pub fn cost_searched_resolution(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        resolution: &SearchedResolution,
    ) -> WorkloadReport {
        self.cost_searched_resolution_scratch(
            wl,
            graphs,
            outcome,
            resolution,
            &mut SweepScratch::new(),
        )
    }

    /// [`Platform25D::cost_searched_resolution`] against caller-owned
    /// scratch.
    pub fn cost_searched_resolution_scratch(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        resolution: &SearchedResolution,
        scratch: &mut SweepScratch,
    ) -> WorkloadReport {
        self.report_from_outcome(
            wl,
            graphs,
            outcome,
            &CostModel::Mapped(&resolution.mappings),
            scratch,
        )
    }

    /// The ranking metric of the mapping search at the report level:
    /// total (NoI + compute) energy times total (NoI analytical +
    /// compute) time. Exposed so experiments can tabulate the same
    /// quantity the resolver minimized.
    pub fn report_edp(&self, r: &WorkloadReport) -> f64 {
        let energy_pj = r.noi_energy_pj + r.compute_energy_pj;
        let time_ns =
            r.analytical_latency_cycles as f64 * self.cfg.hw.cycle_ns() + r.compute_latency_ns;
        energy_pj * time_ns
    }

    /// Per-task compute-optimal loop-nest mappings from the deterministic
    /// beam search, memoized per distinct model within the workload.
    fn searched_task_mappings(&self, graphs: &[SegmentGraph]) -> Vec<ModelMapping> {
        let opts = SearchOptions::default();
        let mut memo: BTreeMap<(String, u64, u64), ModelMapping> = BTreeMap::new();
        graphs
            .iter()
            .map(|g| {
                let macs: u64 = g.segments().iter().map(|s| s.macs).sum();
                memo.entry((g.name().to_string(), g.total_params(), macs))
                    .or_insert_with(|| search_model(g, &self.cfg.pim, &opts).mapping)
                    .clone()
            })
            .collect()
    }

    /// Costs one churned placement under one cost model: transfer
    /// expansion, analytical + DES network replay, compute and
    /// programming energy.
    fn report_from_outcome(
        &self,
        wl: &Workload,
        graphs: &[SegmentGraph],
        outcome: &ChurnOutcome,
        model: &CostModel<'_>,
        scratch: &mut SweepScratch,
    ) -> WorkloadReport {
        // Per-task flows, built once into the scratch lists (inner
        // vectors are recycled for their capacity). Batching happens
        // inside the expansion: the mapping's NoI policy decides what is
        // staged once per batch (OS weight tiles) vs once per frame.
        let n_tasks = outcome.placements.len();
        while scratch.task_flows.len() > n_tasks {
            let spare = scratch.task_flows.pop().expect("len checked");
            scratch.spare_flows.push(spare);
        }
        while scratch.task_flows.len() < n_tasks {
            scratch
                .task_flows
                .push(scratch.spare_flows.pop().unwrap_or_default());
        }
        for (i, tp) in outcome.placements.iter().enumerate() {
            match model {
                CostModel::Mode(df) => transfers_for_batch_into(
                    tp,
                    &graphs[tp.task.index()],
                    self.cfg.activation_bytes,
                    *df,
                    self.cfg.batch as u64,
                    &mut scratch.transfers,
                ),
                CostModel::Mapped(maps) => transfers_for_batch_mapped_into(
                    tp,
                    &graphs[tp.task.index()],
                    self.cfg.activation_bytes,
                    &maps[tp.task.index()],
                    self.cfg.batch as u64,
                    &mut scratch.transfers,
                ),
            };
            let tf = &mut scratch.task_flows[i];
            tf.clear();
            tf.extend(
                scratch
                    .transfers
                    .iter()
                    .map(|t| Flow::new(t.src, t.dst, t.bytes)),
            );
        }
        // Task id -> task_flows index, as a flat slot table.
        let slots = outcome
            .placements
            .iter()
            .map(|tp| tp.task.0 as usize + 1)
            .max()
            .unwrap_or(0);
        scratch.placement_slot.clear();
        scratch.placement_slot.resize(slots, NO_SLOT);
        for (i, tp) in outcome.placements.iter().enumerate() {
            scratch.placement_slot[tp.task.0 as usize] = topology::narrow::u32_idx(i);
        }

        // Per-task analytical accounting: every task's traffic is paid
        // exactly once (energy and zero-load latency depend only on the
        // placement, not on co-residency).
        let mut analytical_latency = 0u64;
        let mut energy_pj = 0.0;
        let mut traffic = 0u64;
        let mut hops_weighted = 0.0;
        for flows in &scratch.task_flows {
            if flows.is_empty() {
                continue;
            }
            let bytes = netsim::total_bytes(flows);
            traffic += bytes;
            let ana = analyze_with_table(&self.topo, &self.cfg.hw, flows, &self.route);
            analytical_latency += ana.makespan_cycles;
            energy_pj += ana.total_energy_pj;
            hops_weighted += ana.mean_weighted_hops * bytes as f64;
        }

        // Snapshot DES: co-resident tasks share the NoI, so contention is
        // measured on resident-set snapshots along the admission sequence.
        let mut sim_latency = 0u64;
        let mut packet_lat_weighted = 0.0;
        let mut packets = 0u64;
        let sim_cfg = SimConfig { packet_bytes: 256 };
        let every = self.cfg.snapshot_every.max(1) as usize;
        let n_snaps = outcome.snapshots.len();
        for (si, snap) in outcome.snapshots.iter().enumerate() {
            if si % every != 0 && si + 1 != n_snaps {
                continue;
            }
            scratch.snapshot_flows.clear();
            for t in snap {
                match scratch.placement_slot.get(t.0 as usize) {
                    Some(&slot) if slot != NO_SLOT => scratch
                        .snapshot_flows
                        .extend(scratch.task_flows[slot as usize].iter().copied()),
                    _ => {}
                }
            }
            if scratch.snapshot_flows.is_empty() {
                continue;
            }
            sample_flows_into(
                &scratch.snapshot_flows,
                self.cfg.sim_sampling,
                &mut scratch.sampled_flows,
            );
            let sim = simulate_with_scratch(
                &self.topo,
                &self.cfg.hw,
                &scratch.sampled_flows,
                &sim_cfg,
                &self.route,
                &mut scratch.sim,
            );
            sim_latency += sim.makespan_cycles;
            packet_lat_weighted += sim.mean_packet_latency_cycles * sim.packets as f64;
            packets += sim.packets;
        }

        // Static NoI energy: the whole fabric idles for the serialized
        // communication time of the workload.
        let exec_ns = analytical_latency as f64 * self.cfg.hw.cycle_ns();
        let static_pj = self.cfg.hw.static_energy_pj(self.noi_area_mm2(), exec_ns);

        // Crossbar programming: every admission writes the task's weights
        // into its chiplets once.
        let mut program_energy_pj = 0.0;
        let mut program_latency_ns = 0.0;
        for tp in &outcome.placements {
            for seg in graphs[tp.task.index()].segments() {
                let (lat, e) = pim::segment_program_cost(seg, &self.cfg.pim);
                program_energy_pj += e;
                program_latency_ns += lat;
            }
        }

        // PIM compute side: the mapping's buffer residency scales the
        // per-MAC energy and (for weight re-staging) the per-segment
        // latency.
        let mut compute_energy_pj = 0.0;
        let mut compute_latency_ns = 0.0;
        for tp in &outcome.placements {
            let mc = match model {
                CostModel::Mode(df) => {
                    pim::model_cost_with(&graphs[tp.task.index()], &self.cfg.pim, *df)
                }
                CostModel::Mapped(maps) => pim::model_cost_mapped(
                    &graphs[tp.task.index()],
                    &self.cfg.pim,
                    &maps[tp.task.index()],
                ),
            };
            compute_energy_pj += mc.energy_pj;
            compute_latency_ns += mc.latency_ns;
        }

        WorkloadReport {
            arch: self.arch.name().to_string(),
            workload: wl.name.clone(),
            dataflow: model.tag().to_string(),
            departures: outcome.departures,
            mean_utilization: outcome.mean_utilization,
            mapped_tasks: outcome.placements.len(),
            failed_tasks: outcome.failed.len(),
            sim_latency_cycles: sim_latency,
            mean_packet_latency_cycles: if packets == 0 {
                0.0
            } else {
                packet_lat_weighted / packets as f64
            },
            analytical_latency_cycles: analytical_latency,
            noi_energy_pj: energy_pj + static_pj,
            noi_dynamic_energy_pj: energy_pj,
            mean_weighted_hops: if traffic == 0 {
                0.0
            } else {
                hops_weighted / traffic as f64
            },
            total_traffic_bytes: traffic,
            program_energy_pj,
            program_latency_ns,
            compute_energy_pj,
            compute_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> Workload {
        // A reduced WL1-style mix that still oversubscribes 100 chiplets.
        dnn::table2_workload("WL1").unwrap()
    }

    #[test]
    fn floret_runs_wl1() {
        let cfg = SystemConfig::datacenter_25d();
        let p = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg).unwrap();
        let rep = p.run_workload(&small_workload());
        assert_eq!(rep.failed_tasks, 0);
        assert_eq!(rep.mapped_tasks, 28);
        assert!(rep.departures > 0, "WL1 must oversubscribe the system");
        assert!(rep.sim_latency_cycles > 0);
        assert!(rep.noi_energy_pj > 0.0);
        assert!(rep.mean_utilization > 0.6);
    }

    #[test]
    fn all_archs_complete_wl1() {
        let cfg = SystemConfig::datacenter_25d();
        let wl = small_workload();
        for arch in NoiArch::all() {
            let p = Platform25D::new(arch, &cfg).unwrap();
            let rep = p.run_workload(&wl);
            assert_eq!(rep.failed_tasks, 0, "{} failed tasks", rep.arch);
            assert_eq!(rep.mapped_tasks, 28, "{}", rep.arch);
        }
    }

    #[test]
    fn floret_beats_kite_on_latency_and_energy() {
        // The headline Fig. 3/5 directions on the concurrency-heavy WL1.
        let cfg = SystemConfig::datacenter_25d();
        let wl = small_workload();
        let floret = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg)
            .unwrap()
            .run_workload(&wl);
        let kite = Platform25D::new(NoiArch::Kite, &cfg)
            .unwrap()
            .run_workload(&wl);
        assert!(
            kite.sim_latency_cycles > floret.sim_latency_cycles,
            "kite {} vs floret {}",
            kite.sim_latency_cycles,
            floret.sim_latency_cycles
        );
        assert!(
            kite.noi_energy_pj > 1.5 * floret.noi_energy_pj,
            "kite {} vs floret {} energy (paper: ~2.8x)",
            kite.noi_energy_pj,
            floret.noi_energy_pj
        );
        assert!(
            kite.mean_weighted_hops > floret.mean_weighted_hops,
            "floret keeps consecutive layers closer"
        );
    }

    #[test]
    fn dataflow_axis_never_inflates_traffic() {
        let cfg = SystemConfig::datacenter_25d();
        let p = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg).unwrap();
        let wl = small_workload();
        let ws = p.run_workload(&wl);
        assert_eq!(ws.dataflow, "WS");
        assert_eq!(ws, p.run_workload_with(&wl, Dataflow::WeightStationary));
        for df in Dataflow::all() {
            let r = p.run_workload_with(&wl, df);
            assert_eq!(r.dataflow, df.name());
            // Re-stationing falls back to the tiled path where it does
            // not pay, so no mode moves more bytes than the baseline.
            assert!(
                r.total_traffic_bytes <= ws.total_traffic_bytes,
                "{df}: {} > WS {}",
                r.total_traffic_bytes,
                ws.total_traffic_bytes
            );
        }
        // WL1's chains give fused-layer pipelines real elision headroom.
        let fl = p.run_workload_with(&wl, Dataflow::FusedLayer);
        assert!(fl.total_traffic_bytes < ws.total_traffic_bytes);
    }

    #[test]
    fn searched_resolves_deterministically_and_never_loses_to_a_hand_mode() {
        let cfg = SystemConfig::datacenter_25d();
        let p = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg).unwrap();
        let wl = small_workload();
        let mut reports = p.run_workload_dataflows(&wl, &Dataflow::all_with_searched());
        let srch = reports.pop().expect("searched rides last on the axis");
        assert_eq!(srch.dataflow, "SRCH");
        for hand in &reports {
            assert!(
                p.report_edp(&srch) <= p.report_edp(hand),
                "searched EDP {} > {} EDP {}",
                p.report_edp(&srch),
                hand.dataflow,
                p.report_edp(hand)
            );
        }
        // Resolution is a pure function of the cell: a fresh run (and the
        // cache-replay path) reproduce the same report bit-for-bit.
        let again = p.run_workload_with(&wl, Dataflow::Searched);
        assert_eq!(srch, again);
        let graphs = Platform25D::task_graphs(&wl);
        let outcome = p.churn_outcome_from_graphs(&graphs);
        let (res, rep) = p.resolve_searched(&wl, &graphs, &outcome);
        assert_eq!(rep, srch);
        assert_eq!(
            p.cost_searched_resolution(&wl, &graphs, &outcome, &res),
            srch
        );
    }

    #[test]
    fn programming_costs_are_accounted() {
        let cfg = SystemConfig::datacenter_25d();
        let p = Platform25D::new(NoiArch::Floret { lambda: 6 }, &cfg).unwrap();
        let rep = p.run_workload(&small_workload());
        assert!(rep.program_energy_pj > 0.0);
        assert!(rep.program_latency_ns > 0.0);
        // Programming is a one-time cost per admission; for a streaming
        // batch it must not dwarf the NoI energy entirely.
        assert!(rep.program_energy_pj < 1e3 * rep.noi_energy_pj);
    }

    #[test]
    fn workload_graphs_cache_consistency() {
        let graphs = Platform25D::task_graphs(&small_workload());
        assert_eq!(graphs.len(), 28);
        // The 16 leading ResNet18 tasks share a structure.
        assert_eq!(graphs[0].segment_count(), graphs[15].segment_count());
    }
}

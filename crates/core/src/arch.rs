//! The four 2.5D NoI architectures compared in Section II.

use mapper::GreedyConfig;
use serde::{Deserialize, Serialize};
use topology::{FloretLayout, SwapConfig, Topology, TopologyError};

/// NoI architecture selector for [`crate::Platform25D`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NoiArch {
    /// Floret SFC NoI with `lambda` petals; dataflow-aware SFC mapping.
    Floret {
        /// Petal count (6 for the paper's 100-chiplet system).
        lambda: u16,
    },
    /// SIAM-style 2D mesh; greedy nearest-hop mapping.
    Siam,
    /// Kite folded-torus family; greedy nearest-hop mapping.
    Kite,
    /// SWAP small-world NoI; greedy nearest-hop mapping.
    Swap {
        /// Generator seed (a fixed seed reproduces one offline-optimized
        /// instance).
        seed: u64,
    },
}

impl NoiArch {
    /// Canonical display name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            NoiArch::Floret { .. } => "Floret",
            NoiArch::Siam => "SIAM",
            NoiArch::Kite => "Kite",
            NoiArch::Swap { .. } => "SWAP",
        }
    }

    /// The four architectures of Figs. 2-5 with their paper defaults.
    pub fn all() -> Vec<NoiArch> {
        vec![
            NoiArch::Kite,
            NoiArch::Siam,
            NoiArch::Swap {
                seed: SwapConfig::default().seed,
            },
            NoiArch::Floret { lambda: 6 },
        ]
    }

    /// Builds the topology (and SFC layout for Floret).
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from the generators.
    pub fn build(&self, w: u16, h: u16) -> Result<(Topology, Option<FloretLayout>), TopologyError> {
        match self {
            NoiArch::Floret { lambda } => {
                let (t, l) = topology::floret(w, h, *lambda)?;
                Ok((t, Some(l)))
            }
            NoiArch::Siam => Ok((topology::mesh2d(w, h)?, None)),
            NoiArch::Kite => Ok((topology::kite(w, h)?, None)),
            NoiArch::Swap { seed } => {
                let cfg = SwapConfig {
                    seed: *seed,
                    ..SwapConfig::default()
                };
                Ok((topology::swap(w, h, &cfg)?, None))
            }
        }
    }

    /// The greedy locality radius used for the baseline architectures.
    pub fn greedy_config(&self) -> GreedyConfig {
        GreedyConfig { radius: 2 }
    }

    /// Parses a case-insensitive architecture name (`floret`, `siam`,
    /// `kite`, `swap`) to its paper-default instance — the inverse of
    /// [`NoiArch::name`], used by scenario specs and the `pim-bench`
    /// `--arch` flag.
    pub fn from_name(name: &str) -> Option<NoiArch> {
        let canonical = name.to_ascii_lowercase();
        NoiArch::all()
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == canonical)
    }
}

impl std::str::FromStr for NoiArch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NoiArch::from_name(s).ok_or_else(|| {
            format!("unknown architecture `{s}` (expected Floret, SIAM, Kite or SWAP)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_architectures_build_100_chiplets() {
        for arch in NoiArch::all() {
            let (topo, layout) = arch.build(10, 10).unwrap();
            assert_eq!(topo.node_count(), 100, "{}", arch.name());
            assert_eq!(layout.is_some(), matches!(arch, NoiArch::Floret { .. }));
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = NoiArch::all().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Kite", "SIAM", "SWAP", "Floret"]);
    }

    #[test]
    fn from_name_round_trips_and_rejects() {
        for arch in NoiArch::all() {
            assert_eq!(NoiArch::from_name(arch.name()), Some(arch.clone()));
            assert_eq!(
                arch.name().to_lowercase().parse::<NoiArch>().as_ref(),
                Ok(&arch)
            );
        }
        assert!(NoiArch::from_name("torus").is_none());
        assert!("torus".parse::<NoiArch>().is_err());
    }
}

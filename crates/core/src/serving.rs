//! Long-horizon multi-tenant serving simulator over the manycore fleet.
//!
//! Models the paper's "datacenter substrate" end to end: every tenant
//! serves one Table I model and emits a sustained request stream
//! (Poisson, bursty or diurnal, composed from
//! [`mapper::ArrivalConfig`]); a deterministic round-robin load
//! balancer spreads the merged stream over a fleet of `N` identical
//! chips; each chip runs dynamic batching with a max-delay window and a
//! bounded admission queue. The per-chip event loops ride the bucketed
//! [`netsim::CalendarQueue`] (shared with the packet DES), so horizons
//! of millions of events stay cheap, and one queue per worker thread is
//! reused across sweep cells.
//!
//! # Determinism contract
//!
//! The outcome is bit-identical for any worker-thread count: the
//! request stream is generated once, single-threaded, from seeded
//! ChaCha8 processes; chips simulate independently on disjoint request
//! subsets; and results merge in `(load, chip)` index order. Changing
//! `threads` can only change wall-clock time.

use std::cell::RefCell;

use mapper::{sample_arrivals, ArrivalConfig, ArrivalProcess};
use netsim::CalendarQueue;
use serde::{Deserialize, Serialize};

use crate::sweep::parallel_map;

/// Typed serving-scenario block of a [`crate::Scenario`]: arrival mix,
/// horizon, SLO target, fleet size and batching window as structured
/// data instead of ad-hoc `--set` strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingSpec {
    /// Chips in the fleet behind the load balancer (≥ 1).
    pub fleet: usize,
    /// Simulated horizon in milliseconds; requests arrive in
    /// `[0, horizon_ms)` and in-flight batches drain past it.
    pub horizon_ms: f64,
    /// Dynamic-batching max-delay window in microseconds: an idle chip
    /// waits at most this long after the head request before launching
    /// a partial batch.
    pub batch_window_us: f64,
    /// Maximum requests per batch (≥ 1).
    pub max_batch: usize,
    /// Bounded admission-queue depth per chip; arrivals beyond it are
    /// rejected and count against SLO attainment.
    pub queue_depth: usize,
    /// End-to-end latency SLO in milliseconds.
    pub slo_ms: f64,
    /// Offered-load multipliers to sweep; each scales every tenant's
    /// request rate.
    pub loads: Vec<f64>,
    /// The tenant mix sharing the fleet.
    pub tenants: Vec<TenantSpec>,
}

/// One tenant of a [`ServingSpec`]: a Table I model plus its arrival
/// process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Table I workload id of the served model (`"M1"` .. `"M13"`).
    pub model: String,
    /// Mean request rate in requests/second at load multiplier 1.0.
    pub rate_rps: f64,
    /// Arrival-process shape (same mean rate for every variant).
    pub process: ArrivalProcess,
}

impl Default for ServingSpec {
    /// The short deterministic reference configuration pinned by the
    /// `serving` golden: a 2-chip fleet, three tenants with distinct
    /// process shapes, and two offered-load points straddling
    /// saturation.
    fn default() -> Self {
        ServingSpec {
            fleet: 2,
            horizon_ms: 60.0,
            batch_window_us: 150.0,
            max_batch: 4,
            queue_depth: 8,
            slo_ms: 8.0,
            loads: vec![0.6, 1.4],
            tenants: vec![
                TenantSpec {
                    model: "M1".to_string(),
                    rate_rps: 480.0,
                    process: ArrivalProcess::Poisson,
                },
                TenantSpec {
                    model: "M9".to_string(),
                    rate_rps: 960.0,
                    process: ArrivalProcess::Bursty { burst: 4 },
                },
                TenantSpec {
                    model: "M13".to_string(),
                    rate_rps: 320.0,
                    process: ArrivalProcess::Diurnal {
                        period: 20.0 * 1e6, // 20 ms in ns
                        amplitude: 0.8,
                    },
                },
            ],
        }
    }
}

impl ServingSpec {
    /// Checks the spec for structural validity: positive horizon/SLO,
    /// non-empty load and tenant sets, sane batching bounds, and tenant
    /// models that exist in Table I.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem (wrapped in
    /// `ScenarioError::Serving` by `Scenario::resolve`).
    pub fn validate(&self) -> Result<(), String> {
        if self.fleet == 0 {
            return Err("fleet must have at least one chip".into());
        }
        if self.horizon_ms <= 0.0 || self.horizon_ms.is_nan() {
            return Err(format!(
                "horizon_ms must be positive, got {}",
                self.horizon_ms
            ));
        }
        if self.batch_window_us < 0.0 || self.batch_window_us.is_nan() {
            return Err(format!(
                "batch_window_us must be nonnegative, got {}",
                self.batch_window_us
            ));
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be at least 1".into());
        }
        if self.slo_ms <= 0.0 || self.slo_ms.is_nan() {
            return Err(format!("slo_ms must be positive, got {}", self.slo_ms));
        }
        if self.loads.is_empty() {
            return Err("loads must name at least one offered-load point".into());
        }
        if let Some(bad) = self.loads.iter().find(|&&l| l <= 0.0 || l.is_nan()) {
            return Err(format!("load multipliers must be positive, got {bad}"));
        }
        if self.tenants.is_empty() {
            return Err("tenants must name at least one model stream".into());
        }
        for t in &self.tenants {
            if dnn::table1_entry(&t.model).is_none() {
                return Err(format!(
                    "tenant model `{}` is not a Table I workload (M1..M13)",
                    t.model
                ));
            }
            if t.rate_rps <= 0.0 || t.rate_rps.is_nan() {
                return Err(format!(
                    "tenant `{}` rate_rps must be positive, got {}",
                    t.model, t.rate_rps
                ));
            }
        }
        Ok(())
    }

    /// Total offered request rate at load multiplier `load`, req/s.
    pub fn offered_rps(&self, load: f64) -> f64 {
        self.tenants.iter().map(|t| t.rate_rps).sum::<f64>() * load
    }
}

/// Serving statistics of one offered-load point, aggregated over the
/// whole fleet.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LoadPointOutcome {
    /// The load multiplier of this point.
    pub load: f64,
    /// Offered aggregate request rate, req/s.
    pub offered_rps: f64,
    /// Requests generated over the horizon.
    pub offered: u64,
    /// Requests completed (admitted and served).
    pub completed: u64,
    /// Requests rejected by full admission queues.
    pub rejected: u64,
    /// Median end-to-end latency, ns (nearest rank).
    pub p50_ns: u64,
    /// 95th-percentile end-to-end latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_ns: u64,
    /// Fraction of *offered* requests served within the SLO (rejections
    /// count as misses).
    pub slo_attainment: f64,
    /// Mean requests per launched batch.
    pub mean_batch: f64,
    /// Per-chip busy fraction per horizon slice:
    /// `chip_util[chip][slice]`.
    pub chip_util: Vec<Vec<f64>>,
    /// Every completed request's latency, ns, ascending.
    pub latencies_ns: Vec<u64>,
    /// Calendar-queue events processed across the fleet.
    pub events: u64,
}

/// Outcome of a whole serving sweep (one [`LoadPointOutcome`] per
/// offered-load point, in spec order).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ServingOutcome {
    /// Per-load-point statistics, in `spec.loads` order.
    pub per_load: Vec<LoadPointOutcome>,
    /// Total calendar-queue events processed.
    pub events: u64,
    /// Total requests generated.
    pub requests: u64,
}

/// Number of horizon slices in the per-chip utilization timeline.
pub const UTIL_SLICES: usize = 4;

/// Fraction of a batch's service time that is fixed (weight staging);
/// the rest scales linearly with batch size, so batching amortizes the
/// fixed part.
const BATCH_FIXED_FRACTION: f64 = 0.5;

/// Service time of a `k`-request batch of a model whose single-request
/// latency is `base_ns`.
fn batch_latency_ns(base_ns: u64, k: usize) -> u64 {
    let lat = base_ns as f64 * (BATCH_FIXED_FRACTION + (1.0 - BATCH_FIXED_FRACTION) * k as f64);
    lat.round() as u64
}

/// One request of the generated stream.
#[derive(Copy, Clone, Debug)]
struct Request {
    /// Tenant index into `spec.tenants`.
    tenant: u32,
    /// Arrival time, ns.
    arrival_ns: u64,
}

/// Generates the merged multi-tenant request stream for one load point,
/// sorted by `(arrival, tenant, intra-tenant order)`.
fn generate_stream(spec: &ServingSpec, load: f64, seed: u64) -> Vec<Request> {
    let horizon_ns = spec.horizon_ms * 1e6;
    let mut stream: Vec<Request> = Vec::new();
    for (ti, tenant) in spec.tenants.iter().enumerate() {
        let cfg = ArrivalConfig {
            mean_interarrival: 1e9 / (tenant.rate_rps * load),
            mean_service: 1.0, // unused: service comes from the cost model
            seed: seed
                ^ (ti as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ load.to_bits().rotate_left(17),
        };
        for t in sample_arrivals(&cfg, &tenant.process, horizon_ns) {
            stream.push(Request {
                tenant: topology::narrow::u32_idx(ti),
                arrival_ns: t as u64,
            });
        }
    }
    // Stable sort: ties keep tenant-major generation order, so the
    // merged stream (and the round-robin chip assignment derived from
    // it) is fully deterministic.
    stream.sort_by_key(|r| r.arrival_ns);
    stream
}

/// Event tags, ordered so that at one instant a chip first retires its
/// batch, then closes an expired window, then admits new arrivals —
/// the serving analogue of "departures before arrivals".
const TAG_COMPLETION: u64 = 0;
const TAG_WINDOW: u64 = 1;
const TAG_ARRIVAL: u64 = 2;

fn event_key(tag: u64, id: u64) -> u64 {
    (tag << 56) | (id & 0x00FF_FFFF_FFFF_FFFF)
}

/// Per-chip simulation result.
#[derive(Clone, Debug)]
struct ChipOutcome {
    /// Completed-request latencies, in completion order.
    latencies_ns: Vec<u64>,
    rejected: u64,
    batches: u64,
    batched_requests: u64,
    /// Busy nanoseconds per horizon slice (clipped to the horizon).
    busy_ns: [u64; UTIL_SLICES],
    events: u64,
}

thread_local! {
    /// One calendar queue per worker thread, reused (via
    /// [`CalendarQueue::clear`]) across every sweep cell that lands on
    /// the thread.
    static EVENT_QUEUE: RefCell<CalendarQueue> = RefCell::new(CalendarQueue::new(1024));
}

/// Simulates one chip's admission queue, batching window and service
/// loop over its share of the request stream.
fn simulate_chip(
    requests: &[Request],
    spec: &ServingSpec,
    service_ns: &[u64],
    horizon_ns: u64,
) -> ChipOutcome {
    EVENT_QUEUE.with(|q| {
        let mut queue = q.borrow_mut();
        queue.clear();
        simulate_chip_with(&mut queue, requests, spec, service_ns, horizon_ns)
    })
}

fn simulate_chip_with(
    events: &mut CalendarQueue,
    requests: &[Request],
    spec: &ServingSpec,
    service_ns: &[u64],
    horizon_ns: u64,
) -> ChipOutcome {
    let window_ns = (spec.batch_window_us * 1e3).round() as u64;
    let mut out = ChipOutcome {
        latencies_ns: Vec::new(),
        rejected: 0,
        batches: 0,
        batched_requests: 0,
        busy_ns: [0; UTIL_SLICES],
        events: 0,
    };
    for (i, r) in requests.iter().enumerate() {
        events.push(r.arrival_ns, event_key(TAG_ARRIVAL, i as u64));
    }

    // FIFO admission queue of request indices (bounded by queue_depth).
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut busy = false;
    // The batch currently in service (request indices).
    let mut in_flight: Vec<u32> = Vec::new();
    // Armed max-delay window: `Some(gen)` matches at most one pending
    // window event; launching a batch invalidates it.
    let mut armed: Option<u64> = None;
    let mut window_gen = 0u64;
    let slice_ns = horizon_ns.div_ceil(UTIL_SLICES as u64).max(1);

    // Launches a batch from the queue head: up to `max_batch` queued
    // requests of the head request's tenant, FIFO.
    let launch = |now: u64,
                  queue: &mut std::collections::VecDeque<u32>,
                  in_flight: &mut Vec<u32>,
                  armed: &mut Option<u64>,
                  events: &mut CalendarQueue,
                  out: &mut ChipOutcome| {
        let head_tenant = requests[queue[0] as usize].tenant;
        debug_assert!(in_flight.is_empty());
        let mut kept = std::collections::VecDeque::with_capacity(queue.len());
        for idx in queue.drain(..) {
            if in_flight.len() < spec.max_batch && requests[idx as usize].tenant == head_tenant {
                in_flight.push(idx);
            } else {
                kept.push_back(idx);
            }
        }
        *queue = kept;
        *armed = None;
        let dur = batch_latency_ns(service_ns[head_tenant as usize], in_flight.len());
        out.batches += 1;
        out.batched_requests += in_flight.len() as u64;
        // Accrue the busy interval [now, now + dur) into the horizon
        // slices (clipped; drain past the horizon is not utilization).
        let (mut t, end) = (now.min(horizon_ns), (now + dur).min(horizon_ns));
        while t < end {
            let slice = (t / slice_ns) as usize;
            let slice_end = ((slice as u64 + 1) * slice_ns).min(end);
            out.busy_ns[slice.min(UTIL_SLICES - 1)] += slice_end - t;
            t = slice_end;
        }
        events.push(now + dur, event_key(TAG_COMPLETION, 0));
    };

    while let Some((now, key)) = events.pop() {
        out.events += 1;
        let (tag, id) = (key >> 56, key & 0x00FF_FFFF_FFFF_FFFF);
        match tag {
            TAG_COMPLETION => {
                busy = false;
                for idx in in_flight.drain(..) {
                    out.latencies_ns
                        .push(now - requests[idx as usize].arrival_ns);
                }
                if !queue.is_empty() {
                    // Backlogged: the head already waited at least one
                    // window; launch immediately (work-conserving).
                    busy = true;
                    launch(
                        now,
                        &mut queue,
                        &mut in_flight,
                        &mut armed,
                        events,
                        &mut out,
                    );
                }
            }
            TAG_WINDOW => {
                if armed == Some(id) {
                    armed = None;
                    if !busy && !queue.is_empty() {
                        busy = true;
                        launch(
                            now,
                            &mut queue,
                            &mut in_flight,
                            &mut armed,
                            events,
                            &mut out,
                        );
                    }
                }
            }
            TAG_ARRIVAL => {
                if queue.len() >= spec.queue_depth {
                    out.rejected += 1;
                    continue;
                }
                queue.push_back(u32::try_from(id).expect("request id fits a u32"));
                if !busy {
                    if queue.len() >= spec.max_batch || window_ns == 0 {
                        busy = true;
                        launch(
                            now,
                            &mut queue,
                            &mut in_flight,
                            &mut armed,
                            events,
                            &mut out,
                        );
                    } else if armed.is_none() {
                        window_gen += 1;
                        armed = Some(window_gen);
                        events.push(now + window_ns, event_key(TAG_WINDOW, window_gen));
                    }
                }
            }
            _ => unreachable!("unknown serving event tag {tag}"),
        }
    }
    out
}

/// Runs the serving sweep: for every offered-load point, generates the
/// multi-tenant stream, shards it round-robin over the fleet, and
/// simulates every `(load, chip)` cell across `threads` workers.
///
/// `service_ns` is the per-tenant single-request service latency
/// (indexed like `spec.tenants`), typically derived from the PIM
/// compute-cost model. Results are bit-identical for any `threads`.
///
/// # Panics
///
/// Panics when `service_ns.len() != spec.tenants.len()` or when a
/// service latency is zero (the spec should be validated first).
pub fn simulate_serving(
    spec: &ServingSpec,
    service_ns: &[u64],
    seed: u64,
    threads: usize,
) -> ServingOutcome {
    assert_eq!(service_ns.len(), spec.tenants.len());
    assert!(
        service_ns.iter().all(|&s| s > 0),
        "service latencies must be positive"
    );
    let horizon_ns = (spec.horizon_ms * 1e6).round() as u64;

    // Generate every load point's stream once, single-threaded, and
    // shard it round-robin in global arrival order.
    let mut cells: Vec<(usize, usize, Vec<Request>)> = Vec::new();
    let mut offered: Vec<u64> = Vec::new();
    for (li, &load) in spec.loads.iter().enumerate() {
        let stream = generate_stream(spec, load, seed);
        offered.push(stream.len() as u64);
        let mut per_chip: Vec<Vec<Request>> = vec![Vec::new(); spec.fleet];
        for (i, r) in stream.into_iter().enumerate() {
            per_chip[i % spec.fleet].push(r);
        }
        for (ci, reqs) in per_chip.into_iter().enumerate() {
            cells.push((li, ci, reqs));
        }
    }

    let chip_outcomes = parallel_map(&cells, threads, |(_, _, reqs)| {
        simulate_chip(reqs, spec, service_ns, horizon_ns)
    });

    let slice_ns = horizon_ns.div_ceil(UTIL_SLICES as u64).max(1) as f64;
    let mut per_load = Vec::with_capacity(spec.loads.len());
    let mut total_events = 0u64;
    for (li, &load) in spec.loads.iter().enumerate() {
        let chips: Vec<&ChipOutcome> = cells
            .iter()
            .zip(&chip_outcomes)
            .filter(|((l, _, _), _)| *l == li)
            .map(|(_, o)| o)
            .collect();
        let mut latencies: Vec<u64> = chips
            .iter()
            .flat_map(|c| c.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let rejected: u64 = chips.iter().map(|c| c.rejected).sum();
        let batches: u64 = chips.iter().map(|c| c.batches).sum();
        let batched: u64 = chips.iter().map(|c| c.batched_requests).sum();
        let events: u64 = chips.iter().map(|c| c.events).sum();
        total_events += events;
        let slo_ns = (spec.slo_ms * 1e6) as u64;
        let attained = latencies.partition_point(|&l| l <= slo_ns) as u64;
        let chip_util: Vec<Vec<f64>> = chips
            .iter()
            .map(|c| c.busy_ns.iter().map(|&b| b as f64 / slice_ns).collect())
            .collect();
        per_load.push(LoadPointOutcome {
            load,
            offered_rps: spec.offered_rps(load),
            offered: offered[li],
            completed: latencies.len() as u64,
            rejected,
            p50_ns: percentile_nearest_rank(&latencies, 50),
            p95_ns: percentile_nearest_rank(&latencies, 95),
            p99_ns: percentile_nearest_rank(&latencies, 99),
            slo_attainment: if offered[li] == 0 {
                1.0
            } else {
                attained as f64 / offered[li] as f64
            },
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            chip_util,
            latencies_ns: latencies,
            events,
        });
    }
    ServingOutcome {
        requests: offered.iter().sum(),
        per_load,
        events: total_events,
    }
}

/// Nearest-rank percentile on an ascending-sorted slice.
fn percentile_nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServingSpec {
        ServingSpec::default()
    }

    fn service() -> Vec<u64> {
        // Distinct, plausible single-request latencies (ns).
        vec![400_000, 250_000, 150_000]
    }

    #[test]
    fn default_spec_validates() {
        assert_eq!(spec().validate(), Ok(()));
    }

    #[test]
    fn validation_names_the_problem() {
        let mut s = spec();
        s.fleet = 0;
        assert!(s.validate().unwrap_err().contains("fleet"));
        let mut s = spec();
        s.loads.clear();
        assert!(s.validate().unwrap_err().contains("load"));
        let mut s = spec();
        s.loads = vec![0.0];
        assert!(s.validate().unwrap_err().contains("positive"));
        let mut s = spec();
        s.tenants[1].model = "M99".into();
        assert!(s.validate().unwrap_err().contains("M99"));
        let mut s = spec();
        s.slo_ms = -1.0;
        assert!(s.validate().unwrap_err().contains("slo_ms"));
        let mut s = spec();
        s.max_batch = 0;
        assert!(s.validate().unwrap_err().contains("max_batch"));
    }

    #[test]
    fn serving_is_deterministic_across_thread_counts() {
        let s = spec();
        let svc = service();
        let one = simulate_serving(&s, &svc, 7, 1);
        let four = simulate_serving(&s, &svc, 7, 4);
        let eight = simulate_serving(&s, &svc, 7, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn conservation_and_ordering_hold() {
        let out = simulate_serving(&spec(), &service(), 3, 2);
        assert_eq!(out.per_load.len(), 2);
        for lp in &out.per_load {
            assert_eq!(lp.completed + lp.rejected, lp.offered);
            assert!(lp.p50_ns <= lp.p95_ns && lp.p95_ns <= lp.p99_ns);
            assert!((0.0..=1.0).contains(&lp.slo_attainment));
            assert!(lp.mean_batch >= 1.0);
            assert_eq!(lp.chip_util.len(), 2);
            for chip in &lp.chip_util {
                assert_eq!(chip.len(), UTIL_SLICES);
                assert!(chip.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
            }
            assert!(lp.events >= lp.offered);
        }
        assert_eq!(out.requests, out.per_load.iter().map(|l| l.offered).sum());
    }

    #[test]
    fn heavier_load_degrades_service() {
        // Service times on the order of the real Table I model latencies,
        // so queueing (not the batch window) dominates the tail. With the
        // test's sub-ms services, heavier load can legitimately *improve*
        // p99: full batches launch early and skip the max-delay window.
        let service = vec![2_400_000, 550_000, 2_000_000];
        let out = simulate_serving(&spec(), &service, 3, 2);
        let (light, heavy) = (&out.per_load[0], &out.per_load[1]);
        assert!(heavy.offered > light.offered);
        // Heavier load must hurt somewhere: either the tail grows, or the
        // bounded queue starts turning requests away (rejected requests
        // never enter the latency distribution, so admission control can
        // truncate the completed-request tail).
        assert!(
            heavy.p99_ns >= light.p99_ns || heavy.rejected > light.rejected,
            "p99 {} vs {}, rejected {} vs {}",
            heavy.p99_ns,
            light.p99_ns,
            heavy.rejected,
            light.rejected
        );
        assert!(heavy.slo_attainment <= light.slo_attainment);
        // Utilization rises with load on every chip.
        let mean = |lp: &LoadPointOutcome| {
            lp.chip_util.iter().flat_map(|c| c.iter()).sum::<f64>()
                / (lp.chip_util.len() * UTIL_SLICES) as f64
        };
        assert!(mean(heavy) > mean(light));
    }

    #[test]
    fn zero_window_launches_immediately() {
        let mut s = spec();
        s.batch_window_us = 0.0;
        s.loads = vec![0.2]; // light load: no queue pressure
        let out = simulate_serving(&s, &service(), 5, 1);
        let lp = &out.per_load[0];
        // Every batch launches on arrival: latency of an uncontended
        // request is exactly its batch-of-1 service time.
        assert!(lp.mean_batch >= 1.0 && lp.mean_batch < 2.0);
        assert!(lp.rejected == 0);
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        let mut s = spec();
        s.queue_depth = 2;
        s.loads = vec![6.0];
        let out = simulate_serving(&s, &service(), 5, 2);
        assert!(out.per_load[0].rejected > 0);
        assert!(out.per_load[0].slo_attainment < 1.0);
    }

    #[test]
    fn batch_latency_amortizes_the_fixed_part() {
        let base = 1_000_000;
        assert_eq!(batch_latency_ns(base, 1), base);
        let four = batch_latency_ns(base, 4);
        assert!(four < 4 * base, "batching must amortize: {four}");
        assert!(four > base);
    }
}

//! Long-horizon multi-tenant serving simulator over the manycore fleet.
//!
//! Models the paper's "datacenter substrate" end to end: every tenant
//! serves one Table I model and emits a sustained request stream
//! (Poisson, bursty or diurnal, composed from
//! [`mapper::ArrivalConfig`]); a deterministic round-robin load
//! balancer spreads the merged stream over a fleet of `N` identical
//! chips; each chip runs dynamic batching with a max-delay window and a
//! bounded admission queue. The per-chip event loops ride the bucketed
//! [`netsim::CalendarQueue`] (shared with the packet DES), so horizons
//! of millions of events stay cheap, and one queue per worker thread is
//! reused across sweep cells.
//!
//! # Determinism contract
//!
//! The outcome is bit-identical for any worker-thread count: the
//! request stream is generated once, single-threaded, from seeded
//! ChaCha8 processes; chips simulate independently on disjoint request
//! subsets; and results merge in `(load, chip)` index order. Changing
//! `threads` can only change wall-clock time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;

use mapper::{sample_arrivals, ArrivalConfig, ArrivalProcess};
use netsim::CalendarQueue;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultPlan, FaultSpec, RetryPolicy};
use crate::sweep::parallel_map;

/// Typed serving-scenario block of a [`crate::Scenario`]: arrival mix,
/// horizon, SLO target, fleet size and batching window as structured
/// data instead of ad-hoc `--set` strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingSpec {
    /// Chips in the fleet behind the load balancer (≥ 1).
    pub fleet: usize,
    /// Simulated horizon in milliseconds; requests arrive in
    /// `[0, horizon_ms)` and in-flight batches drain past it.
    pub horizon_ms: f64,
    /// Dynamic-batching max-delay window in microseconds: an idle chip
    /// waits at most this long after the head request before launching
    /// a partial batch.
    pub batch_window_us: f64,
    /// Maximum requests per batch (≥ 1).
    pub max_batch: usize,
    /// Bounded admission-queue depth per chip; arrivals beyond it are
    /// rejected and count against SLO attainment.
    pub queue_depth: usize,
    /// End-to-end latency SLO in milliseconds.
    pub slo_ms: f64,
    /// Offered-load multipliers to sweep; each scales every tenant's
    /// request rate.
    pub loads: Vec<f64>,
    /// The tenant mix sharing the fleet.
    pub tenants: Vec<TenantSpec>,
}

/// One tenant of a [`ServingSpec`]: a Table I model plus its arrival
/// process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Table I workload id of the served model (`"M1"` .. `"M13"`).
    pub model: String,
    /// Mean request rate in requests/second at load multiplier 1.0.
    pub rate_rps: f64,
    /// Arrival-process shape (same mean rate for every variant).
    pub process: ArrivalProcess,
}

impl Default for ServingSpec {
    /// The short deterministic reference configuration pinned by the
    /// `serving` golden: a 2-chip fleet, three tenants with distinct
    /// process shapes, and two offered-load points straddling
    /// saturation.
    fn default() -> Self {
        ServingSpec {
            fleet: 2,
            horizon_ms: 60.0,
            batch_window_us: 150.0,
            max_batch: 4,
            queue_depth: 8,
            slo_ms: 8.0,
            loads: vec![0.6, 1.4],
            tenants: vec![
                TenantSpec {
                    model: "M1".to_string(),
                    rate_rps: 480.0,
                    process: ArrivalProcess::Poisson,
                },
                TenantSpec {
                    model: "M9".to_string(),
                    rate_rps: 960.0,
                    process: ArrivalProcess::Bursty { burst: 4 },
                },
                TenantSpec {
                    model: "M13".to_string(),
                    rate_rps: 320.0,
                    process: ArrivalProcess::Diurnal {
                        period: 20.0 * 1e6, // 20 ms in ns
                        amplitude: 0.8,
                    },
                },
            ],
        }
    }
}

impl ServingSpec {
    /// Checks the spec for structural validity: positive horizon/SLO,
    /// non-empty load and tenant sets, sane batching bounds, and tenant
    /// models that exist in Table I.
    ///
    /// # Errors
    ///
    /// The first violated constraint as a typed [`ServingError`]
    /// (wrapped in `ScenarioError::Serving` by `Scenario::resolve`).
    pub fn validate(&self) -> Result<(), ServingError> {
        if self.fleet == 0 {
            return Err(ServingError::ZeroField("fleet"));
        }
        if self.horizon_ms <= 0.0 || self.horizon_ms.is_nan() {
            return Err(ServingError::NonPositive {
                field: "horizon_ms",
                value: self.horizon_ms,
            });
        }
        if self.batch_window_us < 0.0 || self.batch_window_us.is_nan() {
            return Err(ServingError::NegativeWindow(self.batch_window_us));
        }
        if self.max_batch == 0 {
            return Err(ServingError::ZeroField("max_batch"));
        }
        if self.queue_depth == 0 {
            return Err(ServingError::ZeroField("queue_depth"));
        }
        if self.slo_ms <= 0.0 || self.slo_ms.is_nan() {
            return Err(ServingError::NonPositive {
                field: "slo_ms",
                value: self.slo_ms,
            });
        }
        if self.loads.is_empty() {
            return Err(ServingError::EmptyLoads);
        }
        if let Some(&bad) = self.loads.iter().find(|&&l| l <= 0.0 || l.is_nan()) {
            return Err(ServingError::NonPositive {
                field: "load multiplier",
                value: bad,
            });
        }
        if self.tenants.is_empty() {
            return Err(ServingError::EmptyTenants);
        }
        for t in &self.tenants {
            if dnn::table1_entry(&t.model).is_none() {
                return Err(ServingError::UnknownModel(t.model.clone()));
            }
            if t.rate_rps <= 0.0 || t.rate_rps.is_nan() {
                return Err(ServingError::NonPositiveRate {
                    model: t.model.clone(),
                    value: t.rate_rps,
                });
            }
        }
        Ok(())
    }

    /// Total offered request rate at load multiplier `load`, req/s.
    pub fn offered_rps(&self, load: f64) -> f64 {
        self.tenants.iter().map(|t| t.rate_rps).sum::<f64>() * load
    }
}

/// Why a [`ServingSpec`] was rejected — the typed counterpart of
/// [`crate::ConfigError`]/[`crate::FaultError`] for the serving block.
#[derive(Clone, Debug, PartialEq)]
pub enum ServingError {
    /// A count field (`fleet`, `max_batch`, `queue_depth`) was zero.
    ZeroField(&'static str),
    /// A numeric field that must be finite and strictly positive was
    /// not (`horizon_ms`, `slo_ms`, a load multiplier).
    NonPositive {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `batch_window_us` must be finite and nonnegative.
    NegativeWindow(f64),
    /// `loads` named no offered-load point.
    EmptyLoads,
    /// `tenants` named no model stream.
    EmptyTenants,
    /// A tenant's model id is not a Table I workload.
    UnknownModel(String),
    /// A tenant's `rate_rps` was not finite and strictly positive.
    NonPositiveRate {
        /// The tenant's model id.
        model: String,
        /// Offending rate.
        value: f64,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::ZeroField(field) => write!(f, "{field} must be at least 1"),
            ServingError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ServingError::NegativeWindow(v) => {
                write!(f, "batch_window_us must be nonnegative, got {v}")
            }
            ServingError::EmptyLoads => {
                write!(f, "loads must name at least one offered-load point")
            }
            ServingError::EmptyTenants => {
                write!(f, "tenants must name at least one model stream")
            }
            ServingError::UnknownModel(m) => {
                write!(f, "tenant model `{m}` is not a Table I workload (M1..M13)")
            }
            ServingError::NonPositiveRate { model, value } => {
                write!(f, "tenant `{model}` rate_rps must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Serving statistics of one offered-load point, aggregated over the
/// whole fleet.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LoadPointOutcome {
    /// The load multiplier of this point.
    pub load: f64,
    /// Offered aggregate request rate, req/s.
    pub offered_rps: f64,
    /// Requests generated over the horizon.
    pub offered: u64,
    /// Requests completed (admitted and served).
    pub completed: u64,
    /// Requests rejected by full admission queues.
    pub rejected: u64,
    /// Median end-to-end latency, ns (nearest rank).
    pub p50_ns: u64,
    /// 95th-percentile end-to-end latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_ns: u64,
    /// Fraction of *offered* requests served within the SLO (rejections
    /// count as misses).
    pub slo_attainment: f64,
    /// Mean requests per launched batch.
    pub mean_batch: f64,
    /// Per-chip busy fraction per horizon slice:
    /// `chip_util[chip][slice]`.
    pub chip_util: Vec<Vec<f64>>,
    /// Every completed request's latency, ns, ascending.
    pub latencies_ns: Vec<u64>,
    /// Calendar-queue events processed across the fleet.
    pub events: u64,
}

/// Outcome of a whole serving sweep (one [`LoadPointOutcome`] per
/// offered-load point, in spec order).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ServingOutcome {
    /// Per-load-point statistics, in `spec.loads` order.
    pub per_load: Vec<LoadPointOutcome>,
    /// Total calendar-queue events processed.
    pub events: u64,
    /// Total requests generated.
    pub requests: u64,
}

/// Number of horizon slices in the per-chip utilization timeline.
pub const UTIL_SLICES: usize = 4;

/// Fraction of a batch's service time that is fixed (weight staging);
/// the rest scales linearly with batch size, so batching amortizes the
/// fixed part.
const BATCH_FIXED_FRACTION: f64 = 0.5;

/// Service time of a `k`-request batch of a model whose single-request
/// latency is `base_ns`.
fn batch_latency_ns(base_ns: u64, k: usize) -> u64 {
    let lat = base_ns as f64 * (BATCH_FIXED_FRACTION + (1.0 - BATCH_FIXED_FRACTION) * k as f64);
    lat.round() as u64
}

/// One request of the generated stream.
#[derive(Copy, Clone, Debug)]
struct Request {
    /// Tenant index into `spec.tenants`.
    tenant: u32,
    /// Arrival time, ns.
    arrival_ns: u64,
}

/// Generates the merged multi-tenant request stream for one load point,
/// sorted by `(arrival, tenant, intra-tenant order)`.
fn generate_stream(spec: &ServingSpec, load: f64, seed: u64) -> Vec<Request> {
    let horizon_ns = spec.horizon_ms * 1e6;
    let mut stream: Vec<Request> = Vec::new();
    for (ti, tenant) in spec.tenants.iter().enumerate() {
        let cfg = ArrivalConfig {
            mean_interarrival: 1e9 / (tenant.rate_rps * load),
            mean_service: 1.0, // unused: service comes from the cost model
            seed: seed
                ^ (ti as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ load.to_bits().rotate_left(17),
        };
        for t in sample_arrivals(&cfg, &tenant.process, horizon_ns) {
            stream.push(Request {
                tenant: topology::narrow::u32_idx(ti),
                arrival_ns: t as u64,
            });
        }
    }
    // Stable sort: ties keep tenant-major generation order, so the
    // merged stream (and the round-robin chip assignment derived from
    // it) is fully deterministic.
    stream.sort_by_key(|r| r.arrival_ns);
    stream
}

/// Event tags, ordered so that at one instant a chip first retires its
/// batch, then closes an expired window, then admits new arrivals —
/// the serving analogue of "departures before arrivals".
const TAG_COMPLETION: u64 = 0;
const TAG_WINDOW: u64 = 1;
const TAG_ARRIVAL: u64 = 2;

fn event_key(tag: u64, id: u64) -> u64 {
    (tag << 56) | (id & 0x00FF_FFFF_FFFF_FFFF)
}

/// Per-chip simulation result.
#[derive(Clone, Debug)]
struct ChipOutcome {
    /// Completed-request latencies, in completion order.
    latencies_ns: Vec<u64>,
    rejected: u64,
    batches: u64,
    batched_requests: u64,
    /// Busy nanoseconds per horizon slice (clipped to the horizon).
    busy_ns: [u64; UTIL_SLICES],
    events: u64,
}

thread_local! {
    /// One calendar queue per worker thread, reused (via
    /// [`CalendarQueue::clear`]) across every sweep cell that lands on
    /// the thread.
    static EVENT_QUEUE: RefCell<CalendarQueue> = RefCell::new(CalendarQueue::new(1024));
}

/// Simulates one chip's admission queue, batching window and service
/// loop over its share of the request stream.
fn simulate_chip(
    requests: &[Request],
    spec: &ServingSpec,
    service_ns: &[u64],
    horizon_ns: u64,
) -> ChipOutcome {
    EVENT_QUEUE.with(|q| {
        let mut queue = q.borrow_mut();
        queue.clear();
        simulate_chip_with(&mut queue, requests, spec, service_ns, horizon_ns)
    })
}

fn simulate_chip_with(
    events: &mut CalendarQueue,
    requests: &[Request],
    spec: &ServingSpec,
    service_ns: &[u64],
    horizon_ns: u64,
) -> ChipOutcome {
    let window_ns = (spec.batch_window_us * 1e3).round() as u64;
    let mut out = ChipOutcome {
        latencies_ns: Vec::new(),
        rejected: 0,
        batches: 0,
        batched_requests: 0,
        busy_ns: [0; UTIL_SLICES],
        events: 0,
    };
    for (i, r) in requests.iter().enumerate() {
        events.push(r.arrival_ns, event_key(TAG_ARRIVAL, i as u64));
    }

    // FIFO admission queue of request indices (bounded by queue_depth).
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut busy = false;
    // The batch currently in service (request indices).
    let mut in_flight: Vec<u32> = Vec::new();
    // Armed max-delay window: `Some(gen)` matches at most one pending
    // window event; launching a batch invalidates it.
    let mut armed: Option<u64> = None;
    let mut window_gen = 0u64;
    let slice_ns = horizon_ns.div_ceil(UTIL_SLICES as u64).max(1);

    // Launches a batch from the queue head: up to `max_batch` queued
    // requests of the head request's tenant, FIFO.
    let launch = |now: u64,
                  queue: &mut std::collections::VecDeque<u32>,
                  in_flight: &mut Vec<u32>,
                  armed: &mut Option<u64>,
                  events: &mut CalendarQueue,
                  out: &mut ChipOutcome| {
        let head_tenant = requests[queue[0] as usize].tenant;
        debug_assert!(in_flight.is_empty());
        let mut kept = std::collections::VecDeque::with_capacity(queue.len());
        for idx in queue.drain(..) {
            if in_flight.len() < spec.max_batch && requests[idx as usize].tenant == head_tenant {
                in_flight.push(idx);
            } else {
                kept.push_back(idx);
            }
        }
        *queue = kept;
        *armed = None;
        let dur = batch_latency_ns(service_ns[head_tenant as usize], in_flight.len());
        out.batches += 1;
        out.batched_requests += in_flight.len() as u64;
        // Accrue the busy interval [now, now + dur) into the horizon
        // slices (clipped; drain past the horizon is not utilization).
        let (mut t, end) = (now.min(horizon_ns), (now + dur).min(horizon_ns));
        while t < end {
            let slice = (t / slice_ns) as usize;
            let slice_end = ((slice as u64 + 1) * slice_ns).min(end);
            out.busy_ns[slice.min(UTIL_SLICES - 1)] += slice_end - t;
            t = slice_end;
        }
        events.push(now + dur, event_key(TAG_COMPLETION, 0));
    };

    while let Some((now, key)) = events.pop() {
        out.events += 1;
        let (tag, id) = (key >> 56, key & 0x00FF_FFFF_FFFF_FFFF);
        match tag {
            TAG_COMPLETION => {
                busy = false;
                for idx in in_flight.drain(..) {
                    out.latencies_ns
                        .push(now - requests[idx as usize].arrival_ns);
                }
                if !queue.is_empty() {
                    // Backlogged: the head already waited at least one
                    // window; launch immediately (work-conserving).
                    busy = true;
                    launch(
                        now,
                        &mut queue,
                        &mut in_flight,
                        &mut armed,
                        events,
                        &mut out,
                    );
                }
            }
            TAG_WINDOW => {
                if armed == Some(id) {
                    armed = None;
                    if !busy && !queue.is_empty() {
                        busy = true;
                        launch(
                            now,
                            &mut queue,
                            &mut in_flight,
                            &mut armed,
                            events,
                            &mut out,
                        );
                    }
                }
            }
            TAG_ARRIVAL => {
                if queue.len() >= spec.queue_depth {
                    out.rejected += 1;
                    continue;
                }
                queue.push_back(u32::try_from(id).expect("request id fits a u32"));
                if !busy {
                    if queue.len() >= spec.max_batch || window_ns == 0 {
                        busy = true;
                        launch(
                            now,
                            &mut queue,
                            &mut in_flight,
                            &mut armed,
                            events,
                            &mut out,
                        );
                    } else if armed.is_none() {
                        window_gen += 1;
                        armed = Some(window_gen);
                        events.push(now + window_ns, event_key(TAG_WINDOW, window_gen));
                    }
                }
            }
            _ => unreachable!("unknown serving event tag {tag}"),
        }
    }
    out
}

/// Runs the serving sweep: for every offered-load point, generates the
/// multi-tenant stream, shards it round-robin over the fleet, and
/// simulates every `(load, chip)` cell across `threads` workers.
///
/// `service_ns` is the per-tenant single-request service latency
/// (indexed like `spec.tenants`), typically derived from the PIM
/// compute-cost model. Results are bit-identical for any `threads`.
///
/// # Panics
///
/// Panics when `service_ns.len() != spec.tenants.len()` or when a
/// service latency is zero (the spec should be validated first).
pub fn simulate_serving(
    spec: &ServingSpec,
    service_ns: &[u64],
    seed: u64,
    threads: usize,
) -> ServingOutcome {
    assert_eq!(service_ns.len(), spec.tenants.len());
    assert!(
        service_ns.iter().all(|&s| s > 0),
        "service latencies must be positive"
    );
    let horizon_ns = (spec.horizon_ms * 1e6).round() as u64;

    // Generate every load point's stream once, single-threaded, and
    // shard it round-robin in global arrival order.
    let mut cells: Vec<(usize, usize, Vec<Request>)> = Vec::new();
    let mut offered: Vec<u64> = Vec::new();
    for (li, &load) in spec.loads.iter().enumerate() {
        let stream = generate_stream(spec, load, seed);
        offered.push(stream.len() as u64);
        let mut per_chip: Vec<Vec<Request>> = vec![Vec::new(); spec.fleet];
        for (i, r) in stream.into_iter().enumerate() {
            per_chip[i % spec.fleet].push(r);
        }
        for (ci, reqs) in per_chip.into_iter().enumerate() {
            cells.push((li, ci, reqs));
        }
    }

    let chip_outcomes = parallel_map(&cells, threads, |(_, _, reqs)| {
        simulate_chip(reqs, spec, service_ns, horizon_ns)
    });

    let slice_ns = horizon_ns.div_ceil(UTIL_SLICES as u64).max(1) as f64;
    let mut per_load = Vec::with_capacity(spec.loads.len());
    let mut total_events = 0u64;
    for (li, &load) in spec.loads.iter().enumerate() {
        let chips: Vec<&ChipOutcome> = cells
            .iter()
            .zip(&chip_outcomes)
            .filter(|((l, _, _), _)| *l == li)
            .map(|(_, o)| o)
            .collect();
        let mut latencies: Vec<u64> = chips
            .iter()
            .flat_map(|c| c.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let rejected: u64 = chips.iter().map(|c| c.rejected).sum();
        let batches: u64 = chips.iter().map(|c| c.batches).sum();
        let batched: u64 = chips.iter().map(|c| c.batched_requests).sum();
        let events: u64 = chips.iter().map(|c| c.events).sum();
        total_events += events;
        let slo_ns = (spec.slo_ms * 1e6) as u64;
        let attained = latencies.partition_point(|&l| l <= slo_ns) as u64;
        let chip_util: Vec<Vec<f64>> = chips
            .iter()
            .map(|c| c.busy_ns.iter().map(|&b| b as f64 / slice_ns).collect())
            .collect();
        per_load.push(LoadPointOutcome {
            load,
            offered_rps: spec.offered_rps(load),
            offered: offered[li],
            completed: latencies.len() as u64,
            rejected,
            p50_ns: percentile_nearest_rank(&latencies, 50),
            p95_ns: percentile_nearest_rank(&latencies, 95),
            p99_ns: percentile_nearest_rank(&latencies, 99),
            slo_attainment: if offered[li] == 0 {
                1.0
            } else {
                attained as f64 / offered[li] as f64
            },
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            chip_util,
            latencies_ns: latencies,
            events,
        });
    }
    ServingOutcome {
        requests: offered.iter().sum(),
        per_load,
        events: total_events,
    }
}

/// Nearest-rank percentile on an ascending-sorted slice.
fn percentile_nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

// ---------------------------------------------------------------------------
// Resilient serving: the fleet loop under a fault plan
// ---------------------------------------------------------------------------

/// How the fleet reacts to a [`FaultPlan`]: the retry/backoff/timeout
/// policy for lost requests, degraded-mode load shedding, the re-mapping
/// stall charged to survivors when a chip drops out, and the thermal
/// throttle slowdown.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceParams {
    /// The concrete fault timeline the fleet replays.
    pub plan: FaultPlan,
    /// Retry/backoff/timeout policy for requests lost to chip failures.
    pub retry: RetryPolicy,
    /// While any chip is down, each chip's admission queue depth shrinks
    /// by this fraction (`[0, 1)`) — degraded-mode load shedding.
    pub shed_fraction: f64,
    /// Stall charged to every surviving chip when a chip fails (the
    /// mapper re-packing the lost chip's work), ns.
    pub remap_penalty_ns: u64,
    /// Service-time multiplier for batches launched inside a thermal
    /// throttle window (≥ 1).
    pub throttle_slowdown: f64,
}

impl ResilienceParams {
    /// A healthy fleet: no faults, no shedding, no throttling. With
    /// these parameters [`simulate_resilient_serving`] is observably
    /// identical to [`simulate_serving`].
    pub fn healthy() -> ResilienceParams {
        ResilienceParams {
            plan: FaultPlan::empty(),
            retry: RetryPolicy::default(),
            shed_fraction: 0.0,
            remap_penalty_ns: 0,
            throttle_slowdown: 1.0,
        }
    }

    /// Parameters from a [`FaultSpec`] plus the concrete plan it was
    /// expanded into and the mapper-derived re-mapping stall.
    pub fn from_spec(spec: &FaultSpec, plan: FaultPlan, remap_penalty_ns: u64) -> ResilienceParams {
        ResilienceParams {
            plan,
            retry: spec.retry.clone(),
            shed_fraction: spec.shed_fraction,
            remap_penalty_ns,
            throttle_slowdown: spec.throttle_slowdown,
        }
    }
}

/// Serving statistics of one offered-load point under faults.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ResiliencePointOutcome {
    /// The load multiplier of this point.
    pub load: f64,
    /// Offered aggregate request rate, req/s.
    pub offered_rps: f64,
    /// Requests generated over the horizon.
    pub offered: u64,
    /// Requests completed (admitted, possibly after retries, and served).
    pub completed: u64,
    /// Requests turned away by a full admission queue (at first arrival,
    /// or when a failed chip's queue failed over into full survivors).
    pub rejected: u64,
    /// Requests dropped after exhausting retries or their deadline.
    pub timed_out: u64,
    /// Retry dispatches (a request lost twice retries twice).
    pub retries: u64,
    /// Requests steered away from their home chip (down at arrival, or
    /// drained from a failing chip's queue).
    pub failovers: u64,
    /// Rejections attributable to degraded-mode shedding: the request
    /// would have fit the healthy queue depth.
    pub shed: u64,
    /// Median end-to-end latency (from original arrival), ns.
    pub p50_ns: u64,
    /// 95th-percentile end-to-end latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_ns: u64,
    /// Fraction of *offered* requests served within the SLO (rejections
    /// and timeouts count as misses).
    pub slo_attainment: f64,
    /// Mean requests per launched batch.
    pub mean_batch: f64,
    /// Every completed request's latency, ns, ascending.
    pub latencies_ns: Vec<u64>,
    /// Calendar-queue events processed (including fault events).
    pub events: u64,
}

/// Outcome of a resilient serving sweep, one point per offered load.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ResilienceOutcome {
    /// Per-load-point statistics, in `spec.loads` order.
    pub per_load: Vec<ResiliencePointOutcome>,
    /// Total calendar-queue events processed.
    pub events: u64,
    /// Total requests generated.
    pub requests: u64,
}

/// Fleet event tags, ordered so that at one instant a chip first
/// retires its batch, repaired chips come back, windows close, new
/// arrivals and retries are admitted, and chip failures strike last —
/// the per-chip `completion < window < arrival` order is preserved, so
/// an empty fault plan replays [`simulate_serving`] exactly.
const FTAG_COMPLETION: u64 = 0;
const FTAG_CHIP_UP: u64 = 1;
const FTAG_WINDOW: u64 = 2;
const FTAG_ARRIVAL: u64 = 3;
const FTAG_RETRY: u64 = 4;
const FTAG_CHIP_DOWN: u64 = 5;

/// Fleet event key: tag (8 bits) | chip (16 bits) | id (40 bits). Ties
/// at one instant order by tag, then chip, then id — within a chip the
/// same order as the per-chip loop's [`event_key`].
fn fleet_key(tag: u64, chip: usize, id: u64) -> u64 {
    (tag << 56) | ((chip as u64) << 40) | (id & 0xFF_FFFF_FFFF)
}

/// Per-chip serving state inside the fleet loop.
#[derive(Clone, Debug, Default)]
struct ChipState {
    /// FIFO admission queue of global request indices.
    queue: VecDeque<u64>,
    /// The batch currently in service.
    in_flight: Vec<u64>,
    busy: bool,
    up: bool,
    /// Armed max-delay window generation (at most one pending).
    armed: Option<u64>,
    window_gen: u64,
    /// Completion generation: bumped when the chip fails, so an
    /// already-scheduled completion of a lost batch is recognized as
    /// stale and ignored.
    comp_gen: u64,
    /// Earliest instant the chip may launch again (re-mapping stall).
    blocked_until: u64,
    batches: u64,
    batched_requests: u64,
}

/// Reusable per-thread scratch of the resilient fleet loop: the bucket
/// calendar plus the per-request retry counters, recycled across every
/// load point that lands on the worker thread.
// pim-lint: scratch
#[derive(Debug)]
struct FaultScratch {
    /// Fleet-wide event calendar.
    events: CalendarQueue,
    /// Retry attempts per request, indexed by global request id.
    attempts: Vec<u32>,
}

impl FaultScratch {
    fn new() -> FaultScratch {
        FaultScratch {
            events: CalendarQueue::new(1024),
            attempts: Vec::new(),
        }
    }

    /// Clears both fields for a fresh run over `n` requests.
    fn reset(&mut self, n: usize) {
        self.events.clear();
        self.attempts.clear();
        self.attempts.resize(n, 0);
    }
}

thread_local! {
    /// One [`FaultScratch`] per worker thread, reused across sweep cells.
    static FAULT_SCRATCH: RefCell<FaultScratch> = RefCell::new(FaultScratch::new());
}

/// One load point's fleet simulation: every chip shares one calendar so
/// chip failures, repairs, retries and failovers interleave in a single
/// deterministic order.
struct FleetSim<'a> {
    spec: &'a ServingSpec,
    params: &'a ResilienceParams,
    service_ns: &'a [u64],
    requests: &'a [Request],
    window_ns: u64,
    chips: Vec<ChipState>,
    /// Per-chip thermal throttle windows, ascending and disjoint.
    throttles: Vec<Vec<(u64, u64)>>,
    /// Chips currently down (degraded mode while > 0).
    down_count: usize,
    attempts: &'a mut [u32],
    latencies: Vec<u64>,
    rejected: u64,
    timed_out: u64,
    retries: u64,
    failovers: u64,
    shed: u64,
    event_count: u64,
}

impl FleetSim<'_> {
    /// Admission queue depth right now: the configured depth, shrunk by
    /// the shed fraction while any chip is down.
    fn effective_depth(&self) -> usize {
        if self.down_count == 0 {
            self.spec.queue_depth
        } else {
            let kept = (self.spec.queue_depth as f64) * (1.0 - self.params.shed_fraction);
            (kept.floor() as usize).max(1)
        }
    }

    /// The first up chip scanning round-robin from `home`, if any.
    fn route(&self, home: usize) -> Option<usize> {
        let fleet = self.chips.len();
        (0..fleet)
            .map(|k| (home + k) % fleet)
            .find(|&c| self.chips[c].up)
    }

    /// Whether a batch launched on `chip` at `t` falls in a throttle
    /// window.
    fn throttled(&self, chip: usize, t: u64) -> bool {
        let w = &self.throttles[chip];
        let i = w.partition_point(|&(s, _)| s <= t);
        i > 0 && t < w[i - 1].1
    }

    /// Launches a batch from `chip`'s queue head: up to `max_batch`
    /// queued requests of the head request's tenant, FIFO — the same
    /// policy as the per-chip loop, plus the re-mapping stall and the
    /// throttle slowdown.
    fn launch(&mut self, events: &mut CalendarQueue, chip: usize, now: u64) {
        let throttle = self.throttled(chip, now.max(self.chips[chip].blocked_until));
        let st = &mut self.chips[chip];
        let head_tenant = self.requests[st.queue[0] as usize].tenant;
        debug_assert!(st.in_flight.is_empty());
        let mut kept = VecDeque::with_capacity(st.queue.len());
        for idx in st.queue.drain(..) {
            if st.in_flight.len() < self.spec.max_batch
                && self.requests[idx as usize].tenant == head_tenant
            {
                st.in_flight.push(idx);
            } else {
                kept.push_back(idx);
            }
        }
        st.queue = kept;
        st.armed = None;
        let start = now.max(st.blocked_until);
        let mut dur = batch_latency_ns(self.service_ns[head_tenant as usize], st.in_flight.len());
        if throttle {
            dur = ((dur as f64) * self.params.throttle_slowdown).round() as u64;
        }
        st.batches += 1;
        st.batched_requests += st.in_flight.len() as u64;
        events.push(start + dur, fleet_key(FTAG_COMPLETION, chip, st.comp_gen));
    }

    /// Admits request `idx` to `target`'s queue (launching or arming the
    /// batching window exactly as the per-chip loop does). `false` when
    /// the queue is full at the current effective depth.
    fn admit(&mut self, events: &mut CalendarQueue, target: usize, idx: u64, now: u64) -> bool {
        if self.chips[target].queue.len() >= self.effective_depth() {
            return false;
        }
        self.chips[target].queue.push_back(idx);
        if !self.chips[target].busy {
            if self.chips[target].queue.len() >= self.spec.max_batch || self.window_ns == 0 {
                self.chips[target].busy = true;
                self.launch(events, target, now);
            } else if self.chips[target].armed.is_none() {
                let st = &mut self.chips[target];
                st.window_gen += 1;
                st.armed = Some(st.window_gen);
                events.push(
                    now + self.window_ns,
                    fleet_key(FTAG_WINDOW, target, st.window_gen),
                );
            }
        }
        true
    }

    /// A rejection at admission; attributes it to degraded-mode
    /// shedding when the request would have fit the healthy depth.
    fn reject(&mut self, target: usize) {
        self.rejected += 1;
        if self.down_count > 0 && self.chips[target].queue.len() < self.spec.queue_depth {
            self.shed += 1;
        }
    }

    /// Request `idx` was lost (its chip failed, or no chip could take
    /// it): schedule a bounded-backoff retry, or drop it as timed out
    /// when retries or the deadline are exhausted.
    fn retry_or_timeout(&mut self, events: &mut CalendarQueue, idx: u64, now: u64) {
        let attempts = &mut self.attempts[idx as usize];
        *attempts += 1;
        let deadline = self.requests[idx as usize].arrival_ns + self.params.retry.timeout_ns();
        if *attempts > self.params.retry.max_retries {
            self.timed_out += 1;
            return;
        }
        let at = now + self.params.retry.backoff_ns(*attempts);
        if at > deadline {
            self.timed_out += 1;
            return;
        }
        self.retries += 1;
        let home = (idx as usize) % self.chips.len();
        events.push(at, fleet_key(FTAG_RETRY, home, idx));
    }

    /// Drains the calendar to completion.
    fn run(&mut self, events: &mut CalendarQueue) {
        while let Some((now, key)) = events.pop() {
            self.event_count += 1;
            let tag = key >> 56;
            let chip = ((key >> 40) & 0xFFFF) as usize;
            let id = key & 0xFF_FFFF_FFFF;
            match tag {
                FTAG_COMPLETION => {
                    if !self.chips[chip].up || id != self.chips[chip].comp_gen {
                        continue; // the chip failed after this batch launched
                    }
                    self.chips[chip].busy = false;
                    let done: Vec<u64> = self.chips[chip].in_flight.drain(..).collect();
                    for idx in done {
                        self.latencies
                            .push(now - self.requests[idx as usize].arrival_ns);
                    }
                    if !self.chips[chip].queue.is_empty() {
                        self.chips[chip].busy = true;
                        self.launch(events, chip, now);
                    }
                }
                FTAG_CHIP_UP => {
                    if !self.chips[chip].up {
                        self.chips[chip].up = true;
                        self.down_count -= 1;
                    }
                }
                FTAG_WINDOW => {
                    if self.chips[chip].armed == Some(id) {
                        self.chips[chip].armed = None;
                        if !self.chips[chip].busy && !self.chips[chip].queue.is_empty() {
                            self.chips[chip].busy = true;
                            self.launch(events, chip, now);
                        }
                    }
                }
                FTAG_ARRIVAL => {
                    let home = (id as usize) % self.chips.len();
                    match self.route(home) {
                        None => self.retry_or_timeout(events, id, now),
                        Some(t) => {
                            if t != home {
                                self.failovers += 1;
                            }
                            if !self.admit(events, t, id, now) {
                                self.reject(t);
                            }
                        }
                    }
                }
                FTAG_RETRY => {
                    let home = (id as usize) % self.chips.len();
                    match self.route(home) {
                        // Nowhere to land (fleet down or target full):
                        // back off again rather than reject an already
                        // admitted-once request.
                        None => self.retry_or_timeout(events, id, now),
                        Some(t) => {
                            if !self.admit(events, t, id, now) {
                                self.retry_or_timeout(events, id, now);
                            }
                        }
                    }
                }
                FTAG_CHIP_DOWN => {
                    if !self.chips[chip].up {
                        continue;
                    }
                    self.down_count += 1;
                    let st = &mut self.chips[chip];
                    st.up = false;
                    st.busy = false;
                    st.armed = None;
                    st.comp_gen += 1;
                    let lost: Vec<u64> = st.in_flight.drain(..).collect();
                    let orphans: Vec<u64> = st.queue.drain(..).collect();
                    // In-flight work on the dead chip is lost: clients
                    // retry with backoff against their deadline.
                    for idx in lost {
                        self.retry_or_timeout(events, idx, now);
                    }
                    // Queued-but-unserved requests fail over to the
                    // surviving chips in FIFO order.
                    for idx in orphans {
                        match self.route((idx as usize) % self.chips.len()) {
                            None => self.retry_or_timeout(events, idx, now),
                            Some(t) => {
                                self.failovers += 1;
                                if !self.admit(events, t, idx, now) {
                                    self.reject(t);
                                }
                            }
                        }
                    }
                    // Survivors stall while the mapper re-packs the lost
                    // chip's share of the workload.
                    if self.params.remap_penalty_ns > 0 {
                        for c in 0..self.chips.len() {
                            if c != chip && self.chips[c].up {
                                let s = &mut self.chips[c];
                                s.blocked_until =
                                    s.blocked_until.max(now + self.params.remap_penalty_ns);
                            }
                        }
                    }
                }
                _ => unreachable!("unknown fleet event tag {tag}"),
            }
        }
    }
}

/// Runs the serving sweep under a fault plan: for every offered-load
/// point the whole fleet shares one calendar, so chip failures and
/// repairs, bounded-backoff retries, failovers, degraded-mode shedding
/// and re-mapping stalls replay in one deterministic order.
///
/// With [`ResilienceParams::healthy`] this is observably identical to
/// [`simulate_serving`] (same streams, same per-chip policy, same
/// counters) — pinned by a unit test and the `resilience` golden's
/// zero-fault row.
///
/// Request accounting is conservative by construction and checked in
/// debug builds: `offered == completed + rejected + timed_out` at every
/// load point.
///
/// # Panics
///
/// Panics when `service_ns.len() != spec.tenants.len()` or when a
/// service latency is zero (the spec should be validated first).
pub fn simulate_resilient_serving(
    spec: &ServingSpec,
    params: &ResilienceParams,
    service_ns: &[u64],
    seed: u64,
    threads: usize,
) -> ResilienceOutcome {
    assert_eq!(service_ns.len(), spec.tenants.len());
    assert!(
        service_ns.iter().all(|&s| s > 0),
        "service latencies must be positive"
    );
    let window_ns = (spec.batch_window_us * 1e3).round() as u64;
    let slo_ns = (spec.slo_ms * 1e6) as u64;

    // Streams are generated once, single-threaded, with the same seeds
    // as `simulate_serving`; load points then simulate independently.
    let streams: Vec<(f64, Vec<Request>)> = spec
        .loads
        .iter()
        .map(|&load| (load, generate_stream(spec, load, seed)))
        .collect();

    let per_load = parallel_map(&streams, threads, |(load, requests)| {
        FAULT_SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            scratch.reset(requests.len());
            let mut chips = vec![ChipState::default(); spec.fleet];
            for c in &mut chips {
                c.up = true;
            }
            let mut throttles = vec![Vec::new(); spec.fleet];
            if params.throttle_slowdown > 1.0 {
                for w in &params.plan.throttles {
                    if (w.chip as usize) < spec.fleet {
                        throttles[w.chip as usize].push((w.start_ns, w.end_ns));
                    }
                }
            }
            let events = &mut scratch.events;
            for (i, r) in requests.iter().enumerate() {
                events.push(
                    r.arrival_ns,
                    fleet_key(FTAG_ARRIVAL, i % spec.fleet, i as u64),
                );
            }
            for (k, cf) in params.plan.chip_faults.iter().enumerate() {
                if (cf.chip as usize) < spec.fleet {
                    events.push(
                        cf.down_ns,
                        fleet_key(FTAG_CHIP_DOWN, cf.chip as usize, k as u64),
                    );
                    events.push(
                        cf.up_ns,
                        fleet_key(FTAG_CHIP_UP, cf.chip as usize, k as u64),
                    );
                }
            }
            let mut sim = FleetSim {
                spec,
                params,
                service_ns,
                requests,
                window_ns,
                chips,
                throttles,
                down_count: 0,
                attempts: &mut scratch.attempts,
                latencies: Vec::new(),
                rejected: 0,
                timed_out: 0,
                retries: 0,
                failovers: 0,
                shed: 0,
                event_count: 0,
            };
            sim.run(events);

            let offered = requests.len() as u64;
            debug_assert_eq!(
                offered,
                sim.latencies.len() as u64 + sim.rejected + sim.timed_out,
                "request conservation: injected = completed + rejected + timed out"
            );
            sim.latencies.sort_unstable();
            let attained = sim.latencies.partition_point(|&l| l <= slo_ns) as u64;
            let batches: u64 = sim.chips.iter().map(|c| c.batches).sum();
            let batched: u64 = sim.chips.iter().map(|c| c.batched_requests).sum();
            ResiliencePointOutcome {
                load: *load,
                offered_rps: spec.offered_rps(*load),
                offered,
                completed: sim.latencies.len() as u64,
                rejected: sim.rejected,
                timed_out: sim.timed_out,
                retries: sim.retries,
                failovers: sim.failovers,
                shed: sim.shed,
                p50_ns: percentile_nearest_rank(&sim.latencies, 50),
                p95_ns: percentile_nearest_rank(&sim.latencies, 95),
                p99_ns: percentile_nearest_rank(&sim.latencies, 99),
                slo_attainment: if offered == 0 {
                    1.0
                } else {
                    attained as f64 / offered as f64
                },
                mean_batch: if batches == 0 {
                    0.0
                } else {
                    batched as f64 / batches as f64
                },
                latencies_ns: sim.latencies,
                events: sim.event_count,
            }
        })
    });

    ResilienceOutcome {
        requests: per_load.iter().map(|l| l.offered).sum(),
        events: per_load.iter().map(|l| l.events).sum(),
        per_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServingSpec {
        ServingSpec::default()
    }

    fn service() -> Vec<u64> {
        // Distinct, plausible single-request latencies (ns).
        vec![400_000, 250_000, 150_000]
    }

    #[test]
    fn default_spec_validates() {
        assert_eq!(spec().validate(), Ok(()));
    }

    #[test]
    fn zero_fleet_is_rejected() {
        let mut s = spec();
        s.fleet = 0;
        assert_eq!(s.validate(), Err(ServingError::ZeroField("fleet")));
    }

    #[test]
    fn nonpositive_horizon_is_rejected() {
        let mut s = spec();
        s.horizon_ms = 0.0;
        assert_eq!(
            s.validate(),
            Err(ServingError::NonPositive {
                field: "horizon_ms",
                value: 0.0
            })
        );
    }

    #[test]
    fn negative_batch_window_is_rejected() {
        let mut s = spec();
        s.batch_window_us = -3.0;
        assert_eq!(s.validate(), Err(ServingError::NegativeWindow(-3.0)));
    }

    #[test]
    fn zero_max_batch_is_rejected() {
        let mut s = spec();
        s.max_batch = 0;
        assert_eq!(s.validate(), Err(ServingError::ZeroField("max_batch")));
    }

    #[test]
    fn zero_queue_depth_is_rejected() {
        let mut s = spec();
        s.queue_depth = 0;
        assert_eq!(s.validate(), Err(ServingError::ZeroField("queue_depth")));
    }

    #[test]
    fn nonpositive_slo_is_rejected() {
        let mut s = spec();
        s.slo_ms = -1.0;
        assert_eq!(
            s.validate(),
            Err(ServingError::NonPositive {
                field: "slo_ms",
                value: -1.0
            })
        );
    }

    #[test]
    fn empty_loads_are_rejected() {
        let mut s = spec();
        s.loads.clear();
        assert_eq!(s.validate(), Err(ServingError::EmptyLoads));
    }

    #[test]
    fn nonpositive_load_multiplier_is_rejected() {
        let mut s = spec();
        s.loads = vec![1.0, 0.0];
        assert_eq!(
            s.validate(),
            Err(ServingError::NonPositive {
                field: "load multiplier",
                value: 0.0
            })
        );
    }

    #[test]
    fn empty_tenant_mix_is_rejected() {
        let mut s = spec();
        s.tenants.clear();
        assert_eq!(s.validate(), Err(ServingError::EmptyTenants));
    }

    #[test]
    fn unknown_tenant_model_is_rejected() {
        let mut s = spec();
        s.tenants[1].model = "M99".into();
        assert_eq!(
            s.validate(),
            Err(ServingError::UnknownModel("M99".to_string()))
        );
        // The message still names the model for the CLI surface.
        assert!(ServingError::UnknownModel("M99".to_string())
            .to_string()
            .contains("M99"));
    }

    #[test]
    fn nonpositive_tenant_rate_is_rejected() {
        let mut s = spec();
        s.tenants[0].rate_rps = 0.0;
        assert_eq!(
            s.validate(),
            Err(ServingError::NonPositiveRate {
                model: "M1".to_string(),
                value: 0.0
            })
        );
    }

    #[test]
    fn serving_is_deterministic_across_thread_counts() {
        let s = spec();
        let svc = service();
        let one = simulate_serving(&s, &svc, 7, 1);
        let four = simulate_serving(&s, &svc, 7, 4);
        let eight = simulate_serving(&s, &svc, 7, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn conservation_and_ordering_hold() {
        let out = simulate_serving(&spec(), &service(), 3, 2);
        assert_eq!(out.per_load.len(), 2);
        for lp in &out.per_load {
            assert_eq!(lp.completed + lp.rejected, lp.offered);
            assert!(lp.p50_ns <= lp.p95_ns && lp.p95_ns <= lp.p99_ns);
            assert!((0.0..=1.0).contains(&lp.slo_attainment));
            assert!(lp.mean_batch >= 1.0);
            assert_eq!(lp.chip_util.len(), 2);
            for chip in &lp.chip_util {
                assert_eq!(chip.len(), UTIL_SLICES);
                assert!(chip.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
            }
            assert!(lp.events >= lp.offered);
        }
        assert_eq!(out.requests, out.per_load.iter().map(|l| l.offered).sum());
    }

    #[test]
    fn heavier_load_degrades_service() {
        // Service times on the order of the real Table I model latencies,
        // so queueing (not the batch window) dominates the tail. With the
        // test's sub-ms services, heavier load can legitimately *improve*
        // p99: full batches launch early and skip the max-delay window.
        let service = vec![2_400_000, 550_000, 2_000_000];
        let out = simulate_serving(&spec(), &service, 3, 2);
        let (light, heavy) = (&out.per_load[0], &out.per_load[1]);
        assert!(heavy.offered > light.offered);
        // Heavier load must hurt somewhere: either the tail grows, or the
        // bounded queue starts turning requests away (rejected requests
        // never enter the latency distribution, so admission control can
        // truncate the completed-request tail).
        assert!(
            heavy.p99_ns >= light.p99_ns || heavy.rejected > light.rejected,
            "p99 {} vs {}, rejected {} vs {}",
            heavy.p99_ns,
            light.p99_ns,
            heavy.rejected,
            light.rejected
        );
        assert!(heavy.slo_attainment <= light.slo_attainment);
        // Utilization rises with load on every chip.
        let mean = |lp: &LoadPointOutcome| {
            lp.chip_util.iter().flat_map(|c| c.iter()).sum::<f64>()
                / (lp.chip_util.len() * UTIL_SLICES) as f64
        };
        assert!(mean(heavy) > mean(light));
    }

    #[test]
    fn zero_window_launches_immediately() {
        let mut s = spec();
        s.batch_window_us = 0.0;
        s.loads = vec![0.2]; // light load: no queue pressure
        let out = simulate_serving(&s, &service(), 5, 1);
        let lp = &out.per_load[0];
        // Every batch launches on arrival: latency of an uncontended
        // request is exactly its batch-of-1 service time.
        assert!(lp.mean_batch >= 1.0 && lp.mean_batch < 2.0);
        assert!(lp.rejected == 0);
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        let mut s = spec();
        s.queue_depth = 2;
        s.loads = vec![6.0];
        let out = simulate_serving(&s, &service(), 5, 2);
        assert!(out.per_load[0].rejected > 0);
        assert!(out.per_load[0].slo_attainment < 1.0);
    }

    #[test]
    fn batch_latency_amortizes_the_fixed_part() {
        let base = 1_000_000;
        assert_eq!(batch_latency_ns(base, 1), base);
        let four = batch_latency_ns(base, 4);
        assert!(four < 4 * base, "batching must amortize: {four}");
        assert!(four > base);
    }

    // -- resilience -------------------------------------------------------

    /// A plan with a couple of mid-horizon outages on chip 0 plus link
    /// and throttle noise.
    fn faulty_params() -> ResilienceParams {
        ResilienceParams {
            plan: FaultPlan {
                chip_faults: vec![
                    crate::faults::ChipFault {
                        chip: 0,
                        down_ns: 9_000_000,
                        up_ns: 14_000_000,
                    },
                    crate::faults::ChipFault {
                        chip: 0,
                        down_ns: 31_000_000,
                        up_ns: 36_000_000,
                    },
                ],
                link_faults: Vec::new(),
                throttles: vec![crate::faults::ThrottleWindow {
                    chip: 1,
                    start_ns: 20_000_000,
                    end_ns: 26_000_000,
                }],
            },
            retry: RetryPolicy::default(),
            shed_fraction: 0.25,
            remap_penalty_ns: 50_000,
            throttle_slowdown: 1.5,
        }
    }

    #[test]
    fn healthy_fleet_loop_replays_simulate_serving_exactly() {
        let s = spec();
        let svc = service();
        let base = simulate_serving(&s, &svc, 7, 2);
        let res = simulate_resilient_serving(&s, &ResilienceParams::healthy(), &svc, 7, 2);
        assert_eq!(base.per_load.len(), res.per_load.len());
        for (b, r) in base.per_load.iter().zip(&res.per_load) {
            assert_eq!(b.load, r.load);
            assert_eq!(b.offered_rps, r.offered_rps);
            assert_eq!(b.offered, r.offered);
            assert_eq!(b.completed, r.completed);
            assert_eq!(b.rejected, r.rejected);
            assert_eq!(r.timed_out, 0);
            assert_eq!(r.retries, 0);
            assert_eq!(r.failovers, 0);
            assert_eq!(r.shed, 0);
            assert_eq!(b.latencies_ns, r.latencies_ns);
            assert_eq!(b.p50_ns, r.p50_ns);
            assert_eq!(b.p95_ns, r.p95_ns);
            assert_eq!(b.p99_ns, r.p99_ns);
            assert_eq!(b.slo_attainment, r.slo_attainment);
            assert_eq!(b.mean_batch, r.mean_batch);
        }
        assert_eq!(base.requests, res.requests);
    }

    #[test]
    fn resilient_serving_is_deterministic_across_thread_counts() {
        let s = spec();
        let svc = service();
        let p = faulty_params();
        let one = simulate_resilient_serving(&s, &p, &svc, 7, 1);
        let four = simulate_resilient_serving(&s, &p, &svc, 7, 4);
        let eight = simulate_resilient_serving(&s, &p, &svc, 7, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn conservation_holds_under_faults() {
        let s = spec();
        let out = simulate_resilient_serving(&s, &faulty_params(), &service(), 3, 2);
        for lp in &out.per_load {
            assert_eq!(
                lp.offered,
                lp.completed + lp.rejected + lp.timed_out,
                "injected = completed + rejected + timed out"
            );
            assert!(lp.p50_ns <= lp.p95_ns && lp.p95_ns <= lp.p99_ns);
            assert!((0.0..=1.0).contains(&lp.slo_attainment));
        }
    }

    #[test]
    fn chip_outages_trigger_retries_and_failovers() {
        let s = spec();
        let out = simulate_resilient_serving(&s, &faulty_params(), &service(), 3, 1);
        let healthy =
            simulate_resilient_serving(&s, &ResilienceParams::healthy(), &service(), 3, 1);
        let (f, h) = (&out.per_load[1], &healthy.per_load[1]);
        // Outages must be visible: work is steered off the dead chip
        // and/or lost in flight and retried.
        assert!(f.failovers > 0, "no failovers despite two outages");
        assert!(
            f.retries + f.timed_out > 0,
            "no lost in-flight work despite mid-batch failures"
        );
        // A degraded fleet can only do worse than a healthy one.
        assert!(f.slo_attainment <= h.slo_attainment);
    }

    #[test]
    fn whole_fleet_down_times_requests_out() {
        let mut s = spec();
        s.loads = vec![1.0];
        // Both chips dead across the entire horizon: nothing completes,
        // everything retries into the void and times out.
        let p = ResilienceParams {
            plan: FaultPlan {
                chip_faults: vec![
                    crate::faults::ChipFault {
                        chip: 0,
                        down_ns: 0,
                        up_ns: u64::MAX,
                    },
                    crate::faults::ChipFault {
                        chip: 1,
                        down_ns: 0,
                        up_ns: u64::MAX,
                    },
                ],
                ..FaultPlan::empty()
            },
            ..ResilienceParams::healthy()
        };
        let out = simulate_resilient_serving(&s, &p, &service(), 5, 1);
        let lp = &out.per_load[0];
        assert_eq!(lp.completed, 0);
        assert_eq!(lp.timed_out, lp.offered);
        assert_eq!(lp.slo_attainment, 0.0);
        assert!(lp.retries > 0);
    }

    #[test]
    fn shedding_shrinks_the_degraded_queue() {
        let mut s = spec();
        s.loads = vec![6.0]; // overload so queues stay full
        s.queue_depth = 8;
        let mut p = faulty_params();
        p.shed_fraction = 0.75;
        let out = simulate_resilient_serving(&s, &p, &service(), 5, 1);
        assert!(out.per_load[0].shed > 0, "no shed rejections in overload");
    }
}

//! Bucketed calendar queue: a monotone priority queue over `(time, key)`
//! pairs that dequeues in exactly ascending `(time, key)` order — the
//! same total order as a binary min-heap — but with O(1) amortized
//! push/pop when event times are spread across the calendar.
//!
//! The queue is the event backbone shared by the packet-level DES
//! ([`crate::simulate`]) and the long-horizon serving simulator in
//! `pim_core`: both need millions of events per run, where the
//! `O(log n)` heap discipline and its per-event comparisons dominate.
//! Events are stored as plain `(u64, u64)` pairs in flat per-bucket
//! arenas (no per-event allocation), and [`CalendarQueue::clear`] keeps
//! the bucket capacity so one queue can be reused across sweep cells.
//!
//! # Discipline
//!
//! The calendar has `n` buckets of `width` time units each ("days");
//! an event at time `t` lives in bucket `(t / width) % n`. Popping
//! scans the current day's bucket for the minimum `(time, key)` event,
//! advancing day by day; if a whole "year" (all `n` buckets) is empty,
//! the cursor jumps straight to the earliest event. Pushing an event
//! earlier than the cursor rewinds the cursor, so the queue stays
//! correct even for non-monotone insertion patterns.
//!
//! # Examples
//!
//! ```
//! use netsim::CalendarQueue;
//!
//! let mut q = CalendarQueue::new(8);
//! q.push(30, 1);
//! q.push(10, 2);
//! q.push(10, 1);
//! assert_eq!(q.pop(), Some((10, 1)));
//! assert_eq!(q.pop(), Some((10, 2)));
//! assert_eq!(q.pop(), Some((30, 1)));
//! assert_eq!(q.pop(), None);
//! ```

/// A bucketed calendar queue over `(time, key)` events.
///
/// Pops return events in strictly ascending `(time, key)` order; ties
/// on both fields dequeue in an unspecified but deterministic order
/// (duplicates are allowed). The source-file header documents the
/// bucketing discipline.
#[derive(Debug, Clone)]
pub struct CalendarQueue {
    /// Flat per-bucket event arenas; index = `(time / width) % buckets.len()`.
    buckets: Vec<Vec<(u64, u64)>>,
    /// Bucket width in time units (one "day").
    width: u64,
    /// Total events stored.
    len: usize,
    /// The day (`time / width`) the pop cursor is currently scanning.
    /// Invariant: no stored event has `time / width < cursor_day`.
    cursor_day: u64,
}

/// Initial bucket count; grows by doubling as the population grows.
const INITIAL_BUCKETS: usize = 16;
/// Grow when the population exceeds this many events per bucket.
const GROW_THRESHOLD: usize = 4;

impl CalendarQueue {
    /// Creates an empty queue with the given bucket width (clamped to at
    /// least 1). Pick a width close to the typical gap between event
    /// times; correctness never depends on it, only constant factors.
    pub fn new(width: u64) -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width: width.max(1),
            len: 0,
            cursor_day: 0,
        }
    }

    /// Number of events stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every event but keeps all bucket capacity, so the queue
    /// can be reused across runs (e.g. sweep cells) without reallocating.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cursor_day = 0;
    }

    /// Inserts an event.
    pub fn push(&mut self, time: u64, key: u64) {
        if self.len >= GROW_THRESHOLD * self.buckets.len() {
            self.grow();
        }
        let day = time / self.width;
        if day < self.cursor_day {
            // Out-of-order insertion into the past: rewind the cursor so
            // the pop scan cannot skip this event.
            self.cursor_day = day;
        }
        let n = self.buckets.len();
        self.buckets[(day % n as u64) as usize].push((time, key));
        self.len += 1;
    }

    /// Removes and returns the minimum `(time, key)` event, or `None`
    /// when empty.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        // Scan at most one full year from the cursor, day by day.
        for _ in 0..n {
            let day_end = (self.cursor_day + 1).saturating_mul(self.width);
            let bucket = (self.cursor_day % n) as usize;
            if let Some(pos) = Self::min_before(&self.buckets[bucket], day_end) {
                self.len -= 1;
                return Some(self.buckets[bucket].swap_remove(pos));
            }
            self.cursor_day += 1;
        }
        // A whole year is empty: jump the cursor to the earliest event.
        let (bucket, pos) = self.global_min();
        self.cursor_day = self.buckets[bucket][pos].0 / self.width;
        self.len -= 1;
        Some(self.buckets[bucket].swap_remove(pos))
    }

    /// Index of the minimum `(time, key)` event with `time < day_end`
    /// within one bucket, if any.
    fn min_before(bucket: &[(u64, u64)], day_end: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, ev) in bucket.iter().enumerate() {
            if ev.0 < day_end && best.is_none_or(|b| *ev < bucket[b]) {
                best = Some(i);
            }
        }
        best
    }

    /// Location of the global minimum event. Only called when non-empty.
    fn global_min(&self) -> (usize, usize) {
        let mut best: Option<((u64, u64), usize, usize)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (i, ev) in bucket.iter().enumerate() {
                if best.is_none_or(|(b, _, _)| *ev < b) {
                    best = Some((*ev, bi, i));
                }
            }
        }
        let (_, bi, i) = best.expect("global_min on empty queue");
        (bi, i)
    }

    /// Doubles the bucket count and redistributes every event.
    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let mut next: Vec<Vec<(u64, u64)>> = (0..new_n).map(|_| Vec::new()).collect();
        for b in &mut self.buckets {
            for ev in b.drain(..) {
                next[((ev.0 / self.width) % new_n as u64) as usize].push(ev);
            }
        }
        self.buckets = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Reference discipline: a binary min-heap over (time, key).
    fn heap_order(events: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut h: BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            events.iter().map(|&e| std::cmp::Reverse(e)).collect();
        let mut out = Vec::with_capacity(events.len());
        while let Some(std::cmp::Reverse(e)) = h.pop() {
            out.push(e);
        }
        out
    }

    fn calendar_order(width: u64, events: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut q = CalendarQueue::new(width);
        for &(t, k) in events {
            q.push(t, k);
        }
        let mut out = Vec::with_capacity(events.len());
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert!(q.is_empty());
        out
    }

    #[test]
    fn empty_pops_none() {
        let mut q = CalendarQueue::new(4);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn dequeues_in_time_then_key_order() {
        let events = [(5, 9), (1, 2), (5, 1), (0, 7), (100, 0), (1, 1)];
        assert_eq!(calendar_order(8, &events), heap_order(&events));
    }

    #[test]
    fn sparse_events_trigger_the_year_jump() {
        // Gaps far larger than width * INITIAL_BUCKETS force the direct
        // global-min jump path.
        let events = [(0, 0), (1_000_000, 1), (50_000_000, 2), (1_000_001, 0)];
        assert_eq!(calendar_order(4, &events), heap_order(&events));
    }

    #[test]
    fn interleaved_push_pop_respects_order() {
        let mut q = CalendarQueue::new(4);
        q.push(10, 0);
        q.push(3, 1);
        assert_eq!(q.pop(), Some((3, 1)));
        // Push at the current time after the cursor advanced.
        q.push(3, 2);
        q.push(7, 0);
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((7, 0)));
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_order() {
        let mut q = CalendarQueue::new(2);
        for t in 0..200 {
            q.push(t * 3, t);
        }
        q.clear();
        assert!(q.is_empty());
        q.push(5, 0);
        q.push(1, 0);
        assert_eq!(q.pop(), Some((1, 0)));
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn growth_redistribution_preserves_order() {
        // Enough events to force several doublings.
        let events: Vec<(u64, u64)> = (0..1000)
            .map(|i: u64| ((i * 2_654_435_761) % 4096, i % 7))
            .collect();
        assert_eq!(calendar_order(8, &events), heap_order(&events));
    }

    #[test]
    fn duplicate_times_and_keys_all_come_out() {
        let events = [(4, 4); 10];
        let out = calendar_order(16, &events);
        assert_eq!(out, vec![(4, 4); 10]);
    }
}

//! Synthetic traffic patterns for standalone NoI/NoC characterization
//! (uniform random, transpose, hotspot, neighbor) — the classic kernels
//! used to stress-test interconnects independently of any DNN workload.

use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use topology::{NodeId, Topology};

use crate::flow::Flow;

/// A synthetic traffic pattern.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrafficPattern {
    /// Every node sends to a uniformly random destination.
    UniformRandom,
    /// Node `(x, y)` sends to `(y, x)` (matrix transpose).
    Transpose,
    /// A fraction of nodes hammer one hotspot node; the rest are uniform.
    Hotspot,
    /// Every node sends to its nearest neighbor in id order (DNN-like
    /// pipeline traffic).
    Neighbor,
    /// Node `i` sends to node `n - 1 - i` (bit-complement analogue).
    Complement,
}

impl std::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Hotspot => "hotspot",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Complement => "complement",
        };
        f.write_str(s)
    }
}

/// All patterns, for sweep harnesses.
pub fn all_patterns() -> Vec<TrafficPattern> {
    vec![
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::Hotspot,
        TrafficPattern::Neighbor,
        TrafficPattern::Complement,
    ]
}

/// Generates one flow per source node under `pattern`, each carrying
/// `bytes_per_flow` bytes. Self-flows are dropped. Deterministic per seed.
pub fn generate_pattern(
    topo: &Topology,
    pattern: TrafficPattern,
    bytes_per_flow: u64,
    seed: u64,
) -> Vec<Flow> {
    let n = topo.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let max_x = topo.nodes().iter().map(|nd| nd.coord.x).max().unwrap_or(0);
    let max_y = topo.nodes().iter().map(|nd| nd.coord.y).max().unwrap_or(0);
    let mut flows = Vec::with_capacity(n);
    for i in 0..n {
        let src = NodeId(topology::narrow::u32_idx(i));
        let dst = match pattern {
            TrafficPattern::UniformRandom => {
                NodeId(rng.random_range(0..topology::narrow::u32_idx(n)))
            }
            TrafficPattern::Transpose => {
                let c = topo.node(src).coord;
                // Swap x/y, clamped into the (possibly non-square) grid.
                let tx = c.y.min(max_x);
                let ty = c.x.min(max_y);
                topo.node_at(topology::Coord::new3(tx, ty, c.z))
                    .unwrap_or(src)
            }
            TrafficPattern::Hotspot => {
                if rng.random::<f64>() < 0.3 {
                    NodeId(topology::narrow::u32_idx(n / 2))
                } else {
                    NodeId(rng.random_range(0..topology::narrow::u32_idx(n)))
                }
            }
            TrafficPattern::Neighbor => NodeId(topology::narrow::u32_idx((i + 1) % n)),
            TrafficPattern::Complement => NodeId(topology::narrow::u32_idx(n - 1 - i)),
        };
        if src != dst {
            flows.push(Flow::new(src, dst, bytes_per_flow));
        }
    }
    flows
}

/// Pipeline traffic along an explicit node order: stage `order[i]` sends
/// to `order[i+1]` — the DNN dataflow as mapped by a given strategy (pass
/// the Floret global order for SFC systems, the id order for meshes).
pub fn generate_pipeline(order: &[NodeId], bytes_per_flow: u64) -> Vec<Flow> {
    order
        .windows(2)
        .filter(|w| w[0] != w[1])
        .map(|w| Flow::new(w[0], w[1], bytes_per_flow))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::analyze;
    use topology::{mesh2d, HwParams};

    #[test]
    fn patterns_generate_valid_flows() {
        let topo = mesh2d(6, 6).unwrap();
        for p in all_patterns() {
            let flows = generate_pattern(&topo, p, 256, 1);
            assert!(!flows.is_empty(), "{p}");
            for f in &flows {
                assert!(f.src != f.dst);
                assert!(f.src.index() < 36 && f.dst.index() < 36);
                assert_eq!(f.bytes, 256);
            }
        }
    }

    #[test]
    fn neighbor_traffic_is_cheapest_on_mesh() {
        // Pipeline-style neighbor traffic needs fewer flit-hops than
        // uniform random — the structural reason dataflow-aware mapping
        // helps.
        let topo = mesh2d(6, 6).unwrap();
        let hw = HwParams::default();
        let neighbor = analyze(
            &topo,
            &hw,
            &generate_pattern(&topo, TrafficPattern::Neighbor, 256, 1),
        );
        let uniform = analyze(
            &topo,
            &hw,
            &generate_pattern(&topo, TrafficPattern::UniformRandom, 256, 1),
        );
        assert!(neighbor.flit_hops < uniform.flit_hops);
        assert!(neighbor.mean_weighted_hops < uniform.mean_weighted_hops);
    }

    #[test]
    fn hotspot_concentrates_load() {
        let topo = mesh2d(6, 6).unwrap();
        let hw = HwParams::default();
        let hot = analyze(
            &topo,
            &hw,
            &generate_pattern(&topo, TrafficPattern::Hotspot, 256, 2),
        );
        let uni = analyze(
            &topo,
            &hw,
            &generate_pattern(&topo, TrafficPattern::UniformRandom, 256, 2),
        );
        assert!(hot.max_link_flits >= uni.max_link_flits);
    }

    #[test]
    fn transpose_is_an_involution_on_square_grids() {
        let topo = mesh2d(5, 5).unwrap();
        let flows = generate_pattern(&topo, TrafficPattern::Transpose, 64, 0);
        for f in &flows {
            let a = topo.node(f.src).coord;
            let b = topo.node(f.dst).coord;
            assert_eq!((a.x, a.y), (b.y, b.x));
        }
    }

    #[test]
    fn pipeline_follows_the_given_order() {
        let order = vec![NodeId(3), NodeId(1), NodeId(4), NodeId(1)];
        let flows = generate_pipeline(&order, 10);
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].src, NodeId(3));
        assert_eq!(flows[0].dst, NodeId(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = mesh2d(6, 6).unwrap();
        let a = generate_pattern(&topo, TrafficPattern::UniformRandom, 100, 9);
        let b = generate_pattern(&topo, TrafficPattern::UniformRandom, 100, 9);
        assert_eq!(a, b);
    }
}

//! Flit-level NoI/NoC simulation and analytical performance models.
//!
//! Replays inter-chiplet traffic on any [`topology::Topology`]:
//!
//! * [`analyze`] — closed-form wormhole model (zero-load latency +
//!   bottleneck-link makespan bound + per-hop energy), fast enough for
//!   optimization inner loops;
//! * [`simulate`] — packet-level discrete-event simulation with virtual
//!   cut-through switching, FIFO channel contention and deterministic
//!   event ordering;
//! * [`RouteTable`] — latency-aware deterministic shortest-path routing
//!   shared by both.
//!
//! # Examples
//!
//! ```
//! use netsim::{analyze, simulate, Flow, SimConfig};
//! use topology::{mesh2d, HwParams, NodeId};
//!
//! let topo = mesh2d(5, 5)?;
//! let hw = HwParams::default();
//! let flows = vec![Flow::new(NodeId(0), NodeId(24), 4096)];
//! let ana = analyze(&topo, &hw, &flows);
//! let des = simulate(&topo, &hw, &flows, &SimConfig::default());
//! // The DES can never beat the analytical lower bound.
//! assert!(des.makespan_cycles >= ana.makespan_cycles);
//! # Ok::<(), topology::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytical;
mod calendar;
mod des;
mod flow;
mod patterns;
mod routing;

pub use analytical::{analyze, analyze_with_table, AnalyticalReport};
pub use calendar::CalendarQueue;
pub use des::{
    simulate, simulate_faulty_with_scratch, simulate_with_scratch, simulate_with_table, LinkFaults,
    SimConfig, SimReport, SimScratch,
};
pub use flow::{sample_flows, sample_flows_into, total_bytes, Flow};
pub use patterns::{all_patterns, generate_pattern, generate_pipeline, TrafficPattern};
pub use routing::RouteTable;

//! Traffic descriptors consumed by the analytical model and the simulator.

use serde::{Deserialize, Serialize};
use topology::NodeId;

/// One aggregated point-to-point traffic flow.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Flow {
    /// Source chiplet/PE.
    pub src: NodeId,
    /// Destination chiplet/PE.
    pub dst: NodeId,
    /// Payload bytes.
    pub bytes: u64,
}

impl Flow {
    /// Creates a flow.
    pub fn new(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Flow { src, dst, bytes }
    }
}

/// Scales every flow's volume by `1/factor` (traffic sampling for fast
/// simulation), keeping at least one byte per flow so connectivity
/// patterns survive.
pub fn sample_flows(flows: &[Flow], factor: u64) -> Vec<Flow> {
    let mut out = Vec::new();
    sample_flows_into(flows, factor, &mut out);
    out
}

/// [`sample_flows`] into a caller-owned buffer (cleared first), so warm
/// sweep scratch re-runs sample without allocating.
pub fn sample_flows_into(flows: &[Flow], factor: u64, out: &mut Vec<Flow>) {
    assert!(factor > 0, "sampling factor must be positive");
    out.clear();
    out.extend(flows.iter().map(|f| Flow {
        src: f.src,
        dst: f.dst,
        bytes: (f.bytes / factor).max(1),
    }));
}

/// Total payload bytes across flows.
pub fn total_bytes(flows: &[Flow]) -> u64 {
    flows.iter().map(|f| f.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_preserves_pattern() {
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1), 1000),
            Flow::new(NodeId(1), NodeId(2), 3),
        ];
        let sampled = sample_flows(&flows, 10);
        assert_eq!(sampled.len(), 2);
        assert_eq!(sampled[0].bytes, 100);
        assert_eq!(sampled[1].bytes, 1, "small flows never vanish");
    }

    #[test]
    #[should_panic(expected = "sampling factor")]
    fn zero_factor_panics() {
        sample_flows(&[], 0);
    }

    #[test]
    fn totals() {
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1), 10),
            Flow::new(NodeId(2), NodeId(3), 32),
        ];
        assert_eq!(total_bytes(&flows), 42);
    }
}

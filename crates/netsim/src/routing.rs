//! Deterministic latency-aware shortest-path routing tables.

use topology::{HwParams, Link, LinkId, NodeId, Topology};

/// Precomputed routing: for every (current node, destination) pair, the
/// link to take next. Built from per-destination Dijkstra over the
/// latency cost of each link (router pipeline + wire delay), so long Kite
/// or SWAP links are charged their real wire length.
#[derive(Clone, Debug)]
pub struct RouteTable {
    next: Vec<Vec<Option<LinkId>>>, // [dst][node] -> link toward dst
}

impl RouteTable {
    /// Builds the table for a topology under a hardware model.
    pub fn build(topo: &Topology, hw: &HwParams) -> RouteTable {
        let cost = |l: &Link| hw.hop_cycles(l.length_hops) as f64;
        let n = topo.node_count();
        let mut next = vec![vec![None; n]; n];
        for (dst, next_row) in next.iter_mut().enumerate() {
            let res = topo.dijkstra(NodeId(topology::narrow::u32_idx(dst)), cost);
            // res[v] = (cost, parent link toward dst on the shortest-path
            // tree rooted at dst); the parent link IS the next hop from v.
            for (v, entry) in res.iter().enumerate() {
                next_row[v] = entry.1;
            }
        }
        RouteTable { next }
    }

    /// Builds a detour table that never routes over `dead` links: the
    /// same per-destination Dijkstra with the dead links priced at
    /// infinity, so surviving traffic re-routes around a fault region.
    /// Pairs that only connect through dead links end up unroutable
    /// ([`RouteTable::next_link`] returns `None` along the way); callers
    /// must drop flows touching disconnected nodes.
    pub fn build_excluding(topo: &Topology, hw: &HwParams, dead: &[LinkId]) -> RouteTable {
        let cost = |l: &Link| {
            if dead.contains(&l.id) {
                f64::INFINITY
            } else {
                hw.hop_cycles(l.length_hops) as f64
            }
        };
        let n = topo.node_count();
        let mut next = vec![vec![None; n]; n];
        for (dst, next_row) in next.iter_mut().enumerate() {
            let res = topo.dijkstra(NodeId(topology::narrow::u32_idx(dst)), cost);
            for (v, entry) in res.iter().enumerate() {
                // An infinite-cost entry means dst is unreachable from v
                // without a dead link; leave the hop empty rather than
                // recording a parent on the far side of the fault.
                next_row[v] = if entry.0.is_finite() { entry.1 } else { None };
            }
        }
        RouteTable { next }
    }

    /// The link to take from `at` toward `dst`, or `None` when `at == dst`.
    pub fn next_link(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next[dst.index()][at.index()]
    }

    /// Full path from `src` to `dst` as a link sequence.
    ///
    /// # Panics
    ///
    /// Panics if the topology was disconnected (cannot happen for
    /// builder-validated topologies).
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut links = Vec::new();
        self.path_into(topo, src, dst, &mut links);
        links
    }

    /// [`RouteTable::path`] into a caller-owned scratch buffer (cleared
    /// first). The packet/flow setup loops call this once per flow with a
    /// single reused buffer, so steady-state path walking performs no
    /// heap allocation at all (pinned by the `path_alloc` test).
    ///
    /// # Panics
    ///
    /// Panics if the topology was disconnected (cannot happen for
    /// builder-validated topologies).
    pub fn path_into(&self, topo: &Topology, src: NodeId, dst: NodeId, links: &mut Vec<LinkId>) {
        links.clear();
        let mut at = src;
        while at != dst {
            let lid = self
                .next_link(at, dst)
                .expect("connected topology always routes");
            links.push(lid);
            at = topo.link(lid).opposite(at);
            debug_assert!(links.len() <= topo.node_count(), "routing loop");
        }
    }

    /// Hop count (links traversed) from `src` to `dst`, allocation-free.
    pub fn hops(&self, topo: &Topology, src: NodeId, dst: NodeId) -> usize {
        let mut hops = 0;
        let mut at = src;
        while at != dst {
            let lid = self
                .next_link(at, dst)
                .expect("connected topology always routes");
            at = topo.link(lid).opposite(at);
            hops += 1;
            debug_assert!(hops <= topo.node_count(), "routing loop");
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{floret, kite, mesh2d};

    #[test]
    fn mesh_routes_are_manhattan() {
        let topo = mesh2d(5, 5).unwrap();
        let hw = HwParams::default();
        let rt = RouteTable::build(&topo, &hw);
        let src = topo.node_at(topology::Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(topology::Coord::new2(4, 3)).unwrap();
        assert_eq!(rt.hops(&topo, src, dst), 7);
        assert!(rt.next_link(dst, dst).is_none());
    }

    #[test]
    fn paths_terminate_everywhere() {
        for topo in [
            mesh2d(6, 6).unwrap(),
            kite(6, 6).unwrap(),
            floret(6, 6, 4).unwrap().0,
        ] {
            let rt = RouteTable::build(&topo, &HwParams::default());
            for s in 0..topo.node_count() {
                for d in 0..topo.node_count() {
                    let p = rt.path(
                        &topo,
                        NodeId(topology::narrow::u32_idx(s)),
                        NodeId(topology::narrow::u32_idx(d)),
                    );
                    if s == d {
                        assert!(p.is_empty());
                    } else {
                        assert!(!p.is_empty());
                        // Path must actually end at d.
                        let mut at = NodeId(topology::narrow::u32_idx(s));
                        for lid in &p {
                            at = topo.link(*lid).opposite(at);
                        }
                        assert_eq!(at, NodeId(topology::narrow::u32_idx(d)));
                    }
                }
            }
        }
    }

    #[test]
    fn detour_table_avoids_dead_links() {
        let topo = mesh2d(5, 5).unwrap();
        let hw = HwParams::default();
        let full = RouteTable::build(&topo, &hw);
        let src = topo.node_at(topology::Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(topology::Coord::new2(4, 0)).unwrap();
        // Kill every link on the direct path; the detour must route
        // around them and never traverse a dead link.
        let dead = full.path(&topo, src, dst);
        let detour = RouteTable::build_excluding(&topo, &hw, &dead);
        let path = detour.path(&topo, src, dst);
        assert!(!path.is_empty());
        for lid in &path {
            assert!(!dead.contains(lid), "detour used dead link {lid:?}");
        }
        assert!(
            path.len() >= full.hops(&topo, src, dst),
            "a detour can never be shorter than the direct route"
        );
        // With no dead links the detour builder reproduces the full table.
        let rebuilt = RouteTable::build_excluding(&topo, &hw, &[]);
        for s in 0..topo.node_count() {
            for d in 0..topo.node_count() {
                let (s, d) = (
                    NodeId(topology::narrow::u32_idx(s)),
                    NodeId(topology::narrow::u32_idx(d)),
                );
                assert_eq!(full.hops(&topo, s, d), rebuilt.hops(&topo, s, d));
            }
        }
    }

    #[test]
    fn fully_cut_node_is_unroutable_not_looping() {
        let topo = mesh2d(3, 3).unwrap();
        let hw = HwParams::default();
        let corner = topo.node_at(topology::Coord::new2(0, 0)).unwrap();
        // Cut every link touching the corner node.
        let dead: Vec<LinkId> = topo
            .links()
            .iter()
            .filter(|l| l.a == corner || l.b == corner)
            .map(|l| l.id)
            .collect();
        assert_eq!(dead.len(), 2);
        let detour = RouteTable::build_excluding(&topo, &hw, &dead);
        let far = topo.node_at(topology::Coord::new2(2, 2)).unwrap();
        assert_eq!(detour.next_link(corner, far), None);
        assert_eq!(detour.next_link(far, corner), None);
        // Surviving pairs still route.
        let mid = topo.node_at(topology::Coord::new2(1, 1)).unwrap();
        assert!(detour.next_link(mid, far).is_some());
    }

    #[test]
    fn kite_prefers_cheap_paths() {
        // Route cost on Kite accounts for 2-hop wire lengths; a route's
        // total latency must never beat the Dijkstra cost bound.
        let topo = kite(8, 8).unwrap();
        let hw = HwParams::default();
        let rt = RouteTable::build(&topo, &hw);
        let src = NodeId(0);
        let dst = NodeId(63);
        let path = rt.path(&topo, src, dst);
        let cost: u64 = path
            .iter()
            .map(|l| hw.hop_cycles(topo.link(*l).length_hops))
            .sum();
        let best = topo.dijkstra(src, |l| hw.hop_cycles(l.length_hops) as f64)[dst.index()].0;
        assert!((cost as f64 - best).abs() < 1e-9);
    }
}

//! Closed-form NoI/NoC performance and energy model.
//!
//! Fast enough for optimization inner loops (the MOO placement search of
//! Section III evaluates thousands of candidate mappings); the
//! discrete-event simulator in [`crate::simulate`] validates its trends.

use serde::{Deserialize, Serialize};
use topology::{HwParams, Topology};

use crate::flow::Flow;
use crate::routing::RouteTable;

/// Analytical performance/energy report for one traffic pattern.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalReport {
    /// Mean zero-load packet latency over flows (header path delay plus
    /// serialization), cycles.
    pub mean_flow_latency_cycles: f64,
    /// Communication makespan lower bound: max of the busiest-link
    /// occupancy and the slowest single flow, cycles.
    pub makespan_cycles: u64,
    /// Total interconnect energy, pJ.
    pub total_energy_pj: f64,
    /// Total flit-hop events (traffic-volume proxy).
    pub flit_hops: u64,
    /// Flits crossing the single busiest directed link channel.
    pub max_link_flits: u64,
    /// Mean hop count over flows, weighted by bytes.
    pub mean_weighted_hops: f64,
}

/// Evaluates `flows` on `topo` analytically.
///
/// Per flow: the header traverses each hop in `router_pipeline +
/// wire_cycles * length` cycles and the payload pipelines behind it at one
/// flit per cycle (wormhole/cut-through). Link occupancies bound the
/// makespan from below; energy charges every flit for each router it
/// crosses (scaled by the router's radix) and each millimetre of wire.
pub fn analyze(topo: &Topology, hw: &HwParams, flows: &[Flow]) -> AnalyticalReport {
    let rt = RouteTable::build(topo, hw);
    analyze_with_table(topo, hw, flows, &rt)
}

/// [`analyze`] with a prebuilt routing table (for optimization loops that
/// evaluate many traffic patterns on one topology).
pub fn analyze_with_table(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    rt: &RouteTable,
) -> AnalyticalReport {
    // Directed channel loads (full-duplex links), matching the DES.
    let mut link_flits = vec![0u64; 2 * topo.link_count()];
    let mut total_latency = 0.0f64;
    let mut slowest_flow = 0u64;
    let mut energy_pj = 0.0f64;
    let mut flit_hops = 0u64;
    let mut weighted_hops = 0.0f64;
    let mut total_bytes = 0u64;

    // Reused scratch: routing allocates nothing per flow (see
    // `RouteTable::path_into`).
    let mut path = Vec::new();
    for f in flows {
        if f.src == f.dst || f.bytes == 0 {
            continue;
        }
        rt.path_into(topo, f.src, f.dst, &mut path);
        let flits = f.bytes.div_ceil(hw.flit_bytes as u64).max(1);
        let bits = f.bytes * 8;
        let mut header_cycles = 0u64;
        let mut at = f.src;
        for lid in &path {
            let link = topo.link(*lid);
            header_cycles += hw.hop_cycles(link.length_hops);
            let ch = if link.a == at {
                lid.index()
            } else {
                lid.index() + topo.link_count()
            };
            link_flits[ch] += flits;
            flit_hops += flits;
            // Energy: traverse the upstream router, then the wire.
            let ports = topo.ports(at);
            energy_pj += hw.hop_energy_pj(bits, ports, link.length_hops);
            at = link.opposite(at);
        }
        // Final ejection through the destination router.
        energy_pj += bits as f64 * hw.router_energy_pj_per_bit(topo.ports(f.dst));
        let finish = header_cycles + flits;
        total_latency += finish as f64;
        slowest_flow = slowest_flow.max(finish);
        weighted_hops += path.len() as f64 * f.bytes as f64;
        total_bytes += f.bytes;
    }

    let n_flows = flows
        .iter()
        .filter(|f| f.src != f.dst && f.bytes > 0)
        .count()
        .max(1);
    let max_link_flits = link_flits.iter().copied().max().unwrap_or(0);
    AnalyticalReport {
        mean_flow_latency_cycles: total_latency / n_flows as f64,
        makespan_cycles: slowest_flow.max(max_link_flits),
        total_energy_pj: energy_pj,
        flit_hops,
        max_link_flits,
        mean_weighted_hops: if total_bytes == 0 {
            0.0
        } else {
            weighted_hops / total_bytes as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{mesh2d, Coord, NodeId};

    fn mesh5() -> Topology {
        mesh2d(5, 5).unwrap()
    }

    #[test]
    fn single_flow_zero_load() {
        let topo = mesh5();
        let hw = HwParams::default();
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(3, 0)).unwrap();
        let flows = [Flow::new(src, dst, 64)];
        let rep = analyze(&topo, &hw, &flows);
        // 3 hops x (4 + 1) cycles header + 2 flits payload.
        assert_eq!(rep.makespan_cycles, 3 * 5 + 2);
        assert!((rep.mean_flow_latency_cycles - 17.0).abs() < 1e-9);
        assert_eq!(rep.flit_hops, 6);
        assert!((rep.mean_weighted_hops - 3.0).abs() < 1e-9);
    }

    #[test]
    fn self_flows_are_free() {
        let topo = mesh5();
        let hw = HwParams::default();
        let flows = [Flow::new(NodeId(0), NodeId(0), 1_000_000)];
        let rep = analyze(&topo, &hw, &flows);
        assert_eq!(rep.total_energy_pj, 0.0);
        assert_eq!(rep.makespan_cycles, 0);
    }

    #[test]
    fn bottleneck_bound_kicks_in() {
        // Many flows over the same link: makespan is bounded by the link
        // occupancy, not the single-flow latency.
        let topo = mesh5();
        let hw = HwParams::default();
        let a = topo.node_at(Coord::new2(0, 0)).unwrap();
        let b = topo.node_at(Coord::new2(1, 0)).unwrap();
        let flows: Vec<Flow> = (0..10).map(|_| Flow::new(a, b, 3200)).collect();
        let rep = analyze(&topo, &hw, &flows);
        let flits_each = 3200 / 32;
        assert_eq!(rep.max_link_flits, 10 * flits_each);
        assert_eq!(rep.makespan_cycles, 10 * flits_each);
    }

    #[test]
    fn energy_scales_with_bytes() {
        let topo = mesh5();
        let hw = HwParams::default();
        let a = NodeId(0);
        let b = NodeId(24);
        let e1 = analyze(&topo, &hw, &[Flow::new(a, b, 1000)]).total_energy_pj;
        let e2 = analyze(&topo, &hw, &[Flow::new(a, b, 2000)]).total_energy_pj;
        assert!((e2 / e1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn longer_paths_cost_more_energy() {
        let topo = mesh5();
        let hw = HwParams::default();
        let near = analyze(&topo, &hw, &[Flow::new(NodeId(0), NodeId(1), 1000)]);
        let far = analyze(&topo, &hw, &[Flow::new(NodeId(0), NodeId(24), 1000)]);
        assert!(far.total_energy_pj > 2.0 * near.total_energy_pj);
    }

    #[test]
    fn empty_traffic() {
        let topo = mesh5();
        let rep = analyze(&topo, &HwParams::default(), &[]);
        assert_eq!(rep.makespan_cycles, 0);
        assert_eq!(rep.total_energy_pj, 0.0);
    }
}

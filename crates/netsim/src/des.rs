//! Packet-level discrete-event simulator with virtual cut-through
//! switching.
//!
//! Flows are segmented into packets; every directed link channel and every
//! source network interface is a FIFO resource. A packet occupies each
//! channel on its path for its serialization time; the header advances one
//! hop per `router_pipeline + wire` delay and the payload streams behind
//! it (cut-through). Contention appears as busy channels that delay the
//! header. The simulation is event-driven and fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use topology::{HwParams, LinkId, NodeId, Topology};

use crate::flow::Flow;
use crate::routing::RouteTable;

/// Simulator knobs.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum packet payload in bytes; flows are segmented into packets
    /// of this size.
    pub packet_bytes: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { packet_bytes: 1024 }
    }
}

/// Result of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last packet was delivered.
    pub makespan_cycles: u64,
    /// Mean packet latency (injection queueing included), cycles.
    pub mean_packet_latency_cycles: f64,
    /// 95th-percentile packet latency, cycles.
    pub p95_packet_latency_cycles: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Total flits moved across links.
    pub flit_hops: u64,
    /// Interconnect energy, pJ (path-based, identical accounting to the
    /// analytical model).
    pub total_energy_pj: f64,
}

#[derive(PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u32, // packet id, deterministic tie-break
    hop: u16, // next channel index within the packet's path
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earliest time first, then packet id, then hop.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
            .then_with(|| other.hop.cmp(&self.hop))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A packet's route: the NI channel then directed link channels.
struct Packet {
    channels: Vec<u32>,
    hop_delay: Vec<u64>, // header delay for each channel traversal
    ser_cycles: u64,
    delivered_at: u64,
}

/// Runs the simulator on `flows` over `topo`.
///
/// All packets are created at cycle 0 (one inference burst); injection
/// serialization at the source NI provides natural pacing. Returns
/// aggregate latency/energy statistics.
///
/// # Panics
///
/// Panics if a flow references a node outside the topology.
pub fn simulate(topo: &Topology, hw: &HwParams, flows: &[Flow], cfg: &SimConfig) -> SimReport {
    let rt = RouteTable::build(topo, hw);
    simulate_with_table(topo, hw, flows, cfg, &rt)
}

/// [`simulate`] with a prebuilt routing table.
pub fn simulate_with_table(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
) -> SimReport {
    assert!(cfg.packet_bytes > 0, "packet size must be positive");
    let n_links = topo.link_count();
    // Channel layout: [0, n_links) = link forward (a->b), [n_links,
    // 2*n_links) = link backward, [2*n_links, 2*n_links + nodes) = NIs.
    let ni_base = 2 * n_links;
    let mut busy_until = vec![0u64; ni_base + topo.node_count()];

    let channel_of = |lid: LinkId, from: NodeId| -> u32 {
        let link = topo.link(lid);
        if link.a == from {
            lid.0
        } else {
            lid.0 + n_links as u32
        }
    };

    // Build packets.
    let mut packets: Vec<Packet> = Vec::new();
    let mut energy_pj = 0.0f64;
    let mut flit_hops = 0u64;
    for f in flows {
        if f.src == f.dst || f.bytes == 0 {
            continue;
        }
        let path = rt.path(topo, f.src, f.dst);
        let mut remaining = f.bytes;
        while remaining > 0 {
            let size = remaining.min(cfg.packet_bytes as u64);
            remaining -= size;
            let flits = size.div_ceil(hw.flit_bytes as u64).max(1);
            let bits = size * 8;
            let mut channels = Vec::with_capacity(path.len() + 1);
            let mut hop_delay = Vec::with_capacity(path.len() + 1);
            // NI injection: router pipeline to enter the network.
            channels.push(ni_base as u32 + f.src.0);
            hop_delay.push(hw.router_pipeline_cycles as u64);
            let mut at = f.src;
            for lid in &path {
                let link = topo.link(*lid);
                channels.push(channel_of(*lid, at));
                hop_delay.push(hw.hop_cycles(link.length_hops));
                energy_pj += hw.hop_energy_pj(bits, topo.ports(at), link.length_hops);
                flit_hops += flits;
                at = link.opposite(at);
            }
            energy_pj += bits as f64 * hw.router_energy_pj_per_bit(topo.ports(f.dst));
            packets.push(Packet {
                channels,
                hop_delay,
                ser_cycles: flits,
                delivered_at: 0,
            });
        }
    }

    // Event loop.
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut head_time: Vec<u64> = vec![0; packets.len()];
    for seq in 0..packets.len() {
        heap.push(Event {
            time: 0,
            seq: seq as u32,
            hop: 0,
        });
    }
    let mut delivered = 0usize;
    while let Some(ev) = heap.pop() {
        let p = &mut packets[ev.seq as usize];
        let hop = ev.hop as usize;
        if hop >= p.channels.len() {
            // Tail drains one serialization window after the header lands.
            p.delivered_at = ev.time + p.ser_cycles;
            delivered += 1;
            continue;
        }
        let ch = p.channels[hop] as usize;
        if busy_until[ch] > ev.time {
            // Channel occupied: retry when it frees (FIFO by heap order).
            heap.push(Event {
                time: busy_until[ch],
                seq: ev.seq,
                hop: ev.hop,
            });
            continue;
        }
        // Acquire the channel for the full serialization window.
        busy_until[ch] = ev.time + p.ser_cycles;
        let header_arrives = ev.time + p.hop_delay[hop];
        head_time[ev.seq as usize] = header_arrives;
        heap.push(Event {
            time: header_arrives,
            seq: ev.seq,
            hop: ev.hop + 1,
        });
    }
    debug_assert_eq!(delivered, packets.len());

    let mut latencies: Vec<u64> = packets.iter().map(|p| p.delivered_at).collect();
    latencies.sort_unstable();
    let makespan = latencies.last().copied().unwrap_or(0);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let p95 = if latencies.is_empty() {
        0
    } else {
        latencies[((latencies.len() - 1) as f64 * 0.95) as usize]
    };
    SimReport {
        makespan_cycles: makespan,
        mean_packet_latency_cycles: mean,
        p95_packet_latency_cycles: p95,
        packets: latencies.len() as u64,
        flit_hops,
        total_energy_pj: energy_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::analyze;
    use topology::{mesh2d, Coord};

    fn mesh5() -> Topology {
        mesh2d(5, 5).unwrap()
    }

    #[test]
    fn single_packet_matches_hand_count() {
        let topo = mesh5();
        let hw = HwParams::default();
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(2, 0)).unwrap();
        let rep = simulate(
            &topo,
            &hw,
            &[Flow::new(src, dst, 64)],
            &SimConfig::default(),
        );
        // NI (4 cycles) + 2 hops x 5 cycles + 2 flits tail.
        assert_eq!(rep.makespan_cycles, 4 + 10 + 2);
        assert_eq!(rep.packets, 1);
    }

    #[test]
    fn contention_delays_packets() {
        let topo = mesh5();
        let hw = HwParams::default();
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(4, 4)).unwrap();
        let one = simulate(
            &topo,
            &hw,
            &[Flow::new(src, dst, 1024)],
            &SimConfig::default(),
        );
        let flows: Vec<Flow> = (0..8).map(|_| Flow::new(src, dst, 1024)).collect();
        let many = simulate(&topo, &hw, &flows, &SimConfig::default());
        assert!(many.makespan_cycles > one.makespan_cycles);
        assert!(many.mean_packet_latency_cycles > one.mean_packet_latency_cycles);
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..20)
            .map(|i| {
                Flow::new(
                    NodeId(i % 25),
                    NodeId((i * 7 + 3) % 25),
                    500 + i as u64 * 37,
                )
            })
            .collect();
        let a = simulate(&topo, &hw, &flows, &SimConfig::default());
        let b = simulate(&topo, &hw, &flows, &SimConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn des_energy_matches_analytical() {
        // Both models use identical path-energy accounting.
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..10)
            .map(|i| Flow::new(NodeId(i), NodeId(24 - i), 2048))
            .collect();
        let des = simulate(&topo, &hw, &flows, &SimConfig::default());
        let ana = analyze(&topo, &hw, &flows);
        assert!((des.total_energy_pj - ana.total_energy_pj).abs() / ana.total_energy_pj < 1e-9);
    }

    #[test]
    fn des_never_beats_analytical_bound() {
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..30)
            .map(|i| Flow::new(NodeId((i * 3) % 25), NodeId((i * 11 + 5) % 25), 4096))
            .collect();
        let des = simulate(&topo, &hw, &flows, &SimConfig::default());
        let ana = analyze(&topo, &hw, &flows);
        assert!(
            des.makespan_cycles >= ana.makespan_cycles,
            "DES {} cannot beat the analytical lower bound {}",
            des.makespan_cycles,
            ana.makespan_cycles
        );
    }

    #[test]
    fn packet_segmentation() {
        let topo = mesh5();
        let hw = HwParams::default();
        let rep = simulate(
            &topo,
            &hw,
            &[Flow::new(NodeId(0), NodeId(1), 5000)],
            &SimConfig { packet_bytes: 1024 },
        );
        assert_eq!(rep.packets, 5);
    }

    #[test]
    fn empty_flows_ok() {
        let topo = mesh5();
        let rep = simulate(&topo, &HwParams::default(), &[], &SimConfig::default());
        assert_eq!(rep.makespan_cycles, 0);
        assert_eq!(rep.packets, 0);
    }
}

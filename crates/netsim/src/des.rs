//! Packet-level discrete-event simulator with virtual cut-through
//! switching.
//!
//! Flows are segmented into packets; every directed link channel and every
//! source network interface is a FIFO resource. A packet occupies each
//! channel on its path for its serialization time; the header advances one
//! hop per `router_pipeline + wire` delay and the payload streams behind
//! it (cut-through). Contention appears as busy channels that delay the
//! header.
//!
//! The event loop is wait-queue based: a packet whose header reaches a
//! busy channel is parked once in that channel's FIFO queue and woken by
//! a single channel-release event — there is no retry polling, so every
//! packet costs one scheduler event per hop (plus its delivery event) and
//! one wake per contended acquisition. Events are dispatched by a
//! bucketed [`CalendarQueue`] (`O(E)` expected instead of the old
//! `O(E log E)` heap) that preserves the heap's exact deterministic
//! `(time, key)` dequeue order. Service order on a contended channel is
//! strictly by header arrival time, and the simulation is fully
//! deterministic.
//!
//! All simulator state is arena-backed SoA held in a reusable
//! [`SimScratch`]: packet hop records live in flat vectors sliced by a
//! per-packet offset table, and wait-queue nodes come from a pooled
//! free-list chained by index — no per-packet heap allocation, and a warm
//! scratch runs the whole simulation without allocating at all. The
//! time-0 injection burst (every packet enters at cycle 0) is dispatched
//! directly in `(time, key)` order instead of through the calendar, whose
//! single-bucket min-scan would otherwise make the initial drain
//! quadratic in the packet count.

use serde::{Deserialize, Serialize};
use topology::{HwParams, LinkId, NodeId, Topology};

use crate::calendar::CalendarQueue;
use crate::flow::Flow;
use crate::routing::RouteTable;

/// Simulator knobs.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum packet payload in bytes; flows are segmented into packets
    /// of this size.
    pub packet_bytes: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { packet_bytes: 1024 }
    }
}

/// Result of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last packet was delivered.
    pub makespan_cycles: u64,
    /// Mean packet latency (injection queueing included), cycles.
    pub mean_packet_latency_cycles: f64,
    /// 95th-percentile packet latency (nearest-rank), cycles.
    pub p95_packet_latency_cycles: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Total flits moved across links.
    pub flit_hops: u64,
    /// Interconnect energy, pJ (path-based, identical accounting to the
    /// analytical model).
    pub total_energy_pj: f64,
    /// Mean header latency per channel traversal (wait + pipeline +
    /// wire), cycles.
    pub mean_hop_header_latency_cycles: f64,
    /// Worst single-traversal header latency observed, cycles.
    pub max_hop_header_latency_cycles: u64,
    /// Cycles headers spent parked in channel wait queues, summed over
    /// all traversals (pure contention; zero on an idle network).
    pub total_channel_wait_cycles: u64,
    /// Heap events processed by the scheduler: one per channel traversal
    /// and one delivery event per packet, plus one wake per contended
    /// channel acquisition.
    pub heap_events: u64,
    /// Cycles headers spent stalled at transiently faulted channels,
    /// summed over all deferrals (zero on a healthy network).
    pub total_fault_wait_cycles: u64,
    /// Header arrivals deferred by a channel fault window.
    pub faulted_traversals: u64,
}

/// Transient channel fault windows for one simulation run: a header
/// arriving at a faulted channel defers (one re-scheduled event) to the
/// window end, accumulating [`SimReport::total_fault_wait_cycles`].
/// Windows gate header *arrivals*; a header already parked in the
/// channel's FIFO when the fault strikes is granted normally, modelling
/// a link that drops its handshake but preserves buffered flits.
#[derive(Clone, Debug, Default)]
pub struct LinkFaults {
    /// `windows[channel]` holds ascending, non-overlapping `[start, end)`
    /// fault intervals in cycles.
    windows: Vec<Vec<(u64, u64)>>,
}

impl LinkFaults {
    /// A fault set with no windows (the healthy network).
    pub fn none() -> LinkFaults {
        LinkFaults::default()
    }

    /// Builds the per-channel window set from undirected link faults:
    /// each `(link, start, end)` blackout covers both directed channels
    /// of the link. Windows are sorted and merged per channel.
    pub fn from_link_windows(topo: &Topology, faults: &[(LinkId, u64, u64)]) -> LinkFaults {
        let n_links = topo.link_count();
        let mut windows = vec![Vec::new(); 2 * n_links + topo.node_count()];
        for &(lid, start, end) in faults {
            if end <= start {
                continue;
            }
            windows[lid.0 as usize].push((start, end));
            windows[lid.0 as usize + n_links].push((start, end));
        }
        for w in &mut windows {
            w.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(w.len());
            for &(s, e) in w.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *w = merged;
        }
        LinkFaults { windows }
    }

    /// True when no channel has a fault window.
    pub fn is_empty(&self) -> bool {
        self.windows.iter().all(Vec::is_empty)
    }

    /// The end of the fault window covering channel `ch` at time `t`,
    /// or `None` when the channel is healthy at `t`.
    fn blocked_until(&self, ch: usize, t: u64) -> Option<u64> {
        let w = self.windows.get(ch)?;
        // Last window starting at or before t; windows are disjoint.
        let idx = w.partition_point(|&(s, _)| s <= t);
        let &(_, end) = w.get(idx.checked_sub(1)?)?;
        (t < end).then_some(end)
    }
}

#[derive(PartialEq, Eq)]
enum EventKind {
    /// A channel finished serializing its current packet; serve the next
    /// waiter from the channel's FIFO queue.
    Free { ch: u32 },
    /// A packet header arrives wanting its `hop`-th channel.
    Header { seq: u32, hop: u16 },
}

impl EventKind {
    /// Packs the deterministic secondary sort key `(tag, id, hop)` into
    /// one `u64` whose integer order equals the tuple order: releases
    /// drain before new arrivals at the same cycle (a header landing
    /// exactly when a contended channel frees queues behind the earlier
    /// waiters). This is the event key fed to the [`CalendarQueue`].
    fn order_key(&self) -> u64 {
        match *self {
            EventKind::Free { ch } => (ch as u64) << 16,
            EventKind::Header { seq, hop } => (1u64 << 48) | ((seq as u64) << 16) | hop as u64,
        }
    }

    /// Inverse of [`EventKind::order_key`].
    fn from_order_key(key: u64) -> EventKind {
        // pim-lint: allow(truncating-cast) -- unpacking the masked 32-bit id field of order_key
        let id = ((key >> 16) & 0xFFFF_FFFF) as u32;
        if key >> 48 == 0 {
            EventKind::Free { ch: id }
        } else {
            EventKind::Header {
                seq: id,
                // pim-lint: allow(truncating-cast) -- unpacking the masked 16-bit hop field of order_key
                hop: (key & 0xFFFF) as u16,
            }
        }
    }
}

/// Sentinel index for "no node" in the wait-queue free lists.
const NIL: u32 = u32::MAX;

/// A parked header in a channel's FIFO wait queue. Nodes live in the
/// scratch's shared pool and are chained through `next` (per-channel
/// queue when parked, free list when recycled).
#[derive(Clone, Copy)]
struct WaitNode {
    seq: u32,
    hop: u16,
    arrived: u64,
    next: u32,
}

/// Arena-backed SoA packet storage. The hop records of every packet of a
/// run live in two flat vectors (`channels`, `hop_delay`) sliced by the
/// `offsets` table, so segmenting a flow into packets appends to four
/// vectors instead of allocating two boxed `Vec`s per packet.
// pim-lint: scratch
#[derive(Default)]
struct PacketArena {
    /// `offsets[i]..offsets[i + 1]` bounds packet `i`'s hop records;
    /// always one longer than the packet count.
    offsets: Vec<u32>,
    /// Channel id of each traversal: the source NI, then directed links.
    channels: Vec<u32>,
    /// Header delay of each traversal.
    hop_delay: Vec<u64>,
    ser_cycles: Vec<u64>,
    delivered_at: Vec<u64>,
}

impl PacketArena {
    fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.channels.clear();
        self.hop_delay.clear();
        self.ser_cycles.clear();
        self.delivered_at.clear();
    }

    fn len(&self) -> usize {
        self.ser_cycles.len()
    }

    /// First hop-record index of packet `seq`.
    fn start(&self, seq: usize) -> usize {
        self.offsets[seq] as usize
    }

    /// Number of channel traversals of packet `seq`.
    fn hops(&self, seq: usize) -> usize {
        (self.offsets[seq + 1] - self.offsets[seq]) as usize
    }
}

/// Aggregate per-hop scheduler statistics of one event-loop run.
#[derive(Default)]
struct LoopStats {
    hop_traversals: u64,
    hop_latency_total: u64,
    hop_latency_max: u64,
    wait_total: u64,
    heap_events: u64,
    fault_wait_total: u64,
    faulted_traversals: u64,
}

/// Reusable simulator state: the packet arena, the scheduler (busy
/// times, wait queues, calendar), and the report buffers. Construct one
/// per worker and pass it to [`simulate_with_scratch`] run after run —
/// every buffer is cleared with capacity kept, so a warm scratch makes
/// the whole simulation allocation-free.
pub struct SimScratch {
    arena: PacketArena,
    busy_until: Vec<u64>,
    wait_head: Vec<u32>,
    wait_tail: Vec<u32>,
    wait_nodes: Vec<WaitNode>,
    free_node: u32,
    queue: CalendarQueue,
    stats: LoopStats,
    latencies: Vec<u64>,
    path: Vec<LinkId>,
}

impl Default for SimScratch {
    fn default() -> Self {
        SimScratch::new()
    }
}

impl std::fmt::Debug for SimScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimScratch").finish_non_exhaustive()
    }
}

impl SimScratch {
    /// An empty scratch; every buffer grows on first use and stays warm.
    pub fn new() -> Self {
        SimScratch {
            arena: PacketArena::default(),
            busy_until: Vec::new(),
            wait_head: Vec::new(),
            wait_tail: Vec::new(),
            wait_nodes: Vec::new(),
            free_node: NIL,
            queue: CalendarQueue::new(8),
            stats: LoopStats::default(),
            latencies: Vec::new(),
            path: Vec::new(),
        }
    }

    /// Clears every buffer (capacity kept), returning the scratch to the
    /// state a fresh [`SimScratch::new`] would observe. The simulator
    /// entry points re-clear internally before each run; this is the
    /// invariant-documenting form the `scratch-reset` lint checks.
    pub fn reset(&mut self) {
        self.arena.clear();
        self.latencies.clear();
        self.path.clear();
        self.reset_engine(0);
    }

    fn reset_engine(&mut self, n_channels: usize) {
        self.busy_until.clear();
        self.busy_until.resize(n_channels, 0);
        self.wait_head.clear();
        self.wait_head.resize(n_channels, NIL);
        self.wait_tail.clear();
        self.wait_tail.resize(n_channels, NIL);
        self.wait_nodes.clear();
        self.free_node = NIL;
        self.queue.clear();
        self.stats = LoopStats::default();
    }

    fn has_waiters(&self, ch: usize) -> bool {
        self.wait_head[ch] != NIL
    }

    /// Appends a parked header to channel `ch`'s FIFO, recycling a free
    /// node when one exists.
    fn park(&mut self, ch: usize, seq: u32, hop: u16, arrived: u64) {
        let node = WaitNode {
            seq,
            hop,
            arrived,
            next: NIL,
        };
        let idx = if self.free_node != NIL {
            let idx = self.free_node;
            self.free_node = self.wait_nodes[idx as usize].next;
            self.wait_nodes[idx as usize] = node;
            idx
        } else {
            self.wait_nodes.push(node);
            topology::narrow::u32_idx(self.wait_nodes.len() - 1)
        };
        if self.wait_tail[ch] == NIL {
            self.wait_head[ch] = idx;
        } else {
            self.wait_nodes[self.wait_tail[ch] as usize].next = idx;
        }
        self.wait_tail[ch] = idx;
    }

    /// Pops the front waiter of channel `ch` and returns its node to the
    /// free list.
    fn pop_waiter(&mut self, ch: usize) -> WaitNode {
        let idx = self.wait_head[ch];
        assert!(
            idx != NIL,
            "a Free event is only armed while waiters are parked"
        );
        let node = self.wait_nodes[idx as usize];
        self.wait_head[ch] = node.next;
        if node.next == NIL {
            self.wait_tail[ch] = NIL;
        }
        self.wait_nodes[idx as usize].next = self.free_node;
        self.free_node = idx;
        node
    }

    /// Grants packet `seq` its `hop`-th channel at `now` (the header
    /// arrived wanting it at `arrived <= now`) and schedules the next
    /// hop.
    fn acquire(&mut self, seq: u32, hop: u16, now: u64, arrived: u64) {
        let start = self.arena.start(seq as usize);
        let ch = self.arena.channels[start + hop as usize] as usize;
        self.busy_until[ch] = now + self.arena.ser_cycles[seq as usize];
        let header_arrives = now + self.arena.hop_delay[start + hop as usize];
        let hop_latency = header_arrives - arrived;
        self.stats.hop_traversals += 1;
        self.stats.hop_latency_total += hop_latency;
        self.stats.hop_latency_max = self.stats.hop_latency_max.max(hop_latency);
        self.stats.wait_total += now - arrived;
        self.queue.push(
            header_arrives,
            EventKind::Header { seq, hop: hop + 1 }.order_key(),
        );
    }

    /// Handles a Header event: deliver past the last hop, defer off a
    /// faulted channel, acquire a free channel, or park on a busy one
    /// (the first waiter arms the channel's release event). Returns
    /// `true` on delivery.
    fn dispatch_header(&mut self, seq: u32, hop: u16, time: u64, faults: &LinkFaults) -> bool {
        let s = seq as usize;
        if hop as usize >= self.arena.hops(s) {
            // Tail drains one serialization window after the header
            // lands.
            self.arena.delivered_at[s] = time + self.arena.ser_cycles[s];
            return true;
        }
        let ch = self.arena.channels[self.arena.start(s) + hop as usize] as usize;
        if let Some(end) = faults.blocked_until(ch, time) {
            // The channel is mid-blackout: defer the header to the
            // window end with a single rescheduled event (re-checked on
            // arrival, so back-to-back windows chain naturally).
            self.stats.fault_wait_total += end - time;
            self.stats.faulted_traversals += 1;
            self.queue
                .push(end, EventKind::Header { seq, hop }.order_key());
            return false;
        }
        if self.busy_until[ch] <= time && !self.has_waiters(ch) {
            self.acquire(seq, hop, time, time);
        } else {
            if !self.has_waiters(ch) {
                self.queue.push(
                    self.busy_until[ch],
                    EventKind::Free {
                        ch: topology::narrow::u32_idx(ch),
                    }
                    .order_key(),
                );
            }
            self.park(ch, seq, hop, time);
        }
        false
    }
}

/// Runs the simulator on `flows` over `topo`.
///
/// All packets are created at cycle 0 (one inference burst); injection
/// serialization at the source NI provides natural pacing. Returns
/// aggregate latency/energy statistics.
///
/// # Panics
///
/// Panics if a flow references a node outside the topology.
pub fn simulate(topo: &Topology, hw: &HwParams, flows: &[Flow], cfg: &SimConfig) -> SimReport {
    let rt = RouteTable::build(topo, hw);
    simulate_with_table(topo, hw, flows, cfg, &rt)
}

/// Segments `flows` into packets with per-hop channel ids and delays,
/// appending to the arena. Flows with `src == dst` or zero bytes carry
/// no traffic and produce no packets (and contribute no energy).
fn build_packets_into(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
    arena: &mut PacketArena,
    path: &mut Vec<LinkId>,
) -> (f64, u64) {
    let n_links = topo.link_count();
    let ni_base = 2 * n_links;
    let channel_of = |lid: LinkId, from: NodeId| -> u32 {
        let link = topo.link(lid);
        if link.a == from {
            lid.0
        } else {
            lid.0 + topology::narrow::u32_idx(n_links)
        }
    };

    arena.clear();
    let mut energy_pj = 0.0f64;
    let mut flit_hops = 0u64;
    for f in flows {
        if f.src == f.dst || f.bytes == 0 {
            continue;
        }
        // `path_into` clears and refills the scratch buffer per flow, so
        // routing never allocates once the buffer is warm.
        rt.path_into(topo, f.src, f.dst, path);
        let mut remaining = f.bytes;
        while remaining > 0 {
            let size = remaining.min(cfg.packet_bytes as u64);
            remaining -= size;
            let flits = size.div_ceil(hw.flit_bytes as u64).max(1);
            let bits = size * 8;
            // NI injection: router pipeline to enter the network.
            arena
                .channels
                .push(topology::narrow::u32_idx(ni_base) + f.src.0);
            arena.hop_delay.push(hw.router_pipeline_cycles as u64);
            let mut at = f.src;
            for lid in path.iter() {
                let link = topo.link(*lid);
                arena.channels.push(channel_of(*lid, at));
                arena.hop_delay.push(hw.hop_cycles(link.length_hops));
                energy_pj += hw.hop_energy_pj(bits, topo.ports(at), link.length_hops);
                flit_hops += flits;
                at = link.opposite(at);
            }
            energy_pj += bits as f64 * hw.router_energy_pj_per_bit(topo.ports(f.dst));
            arena
                .offsets
                .push(topology::narrow::u32_idx(arena.channels.len()));
            arena.ser_cycles.push(flits);
            arena.delivered_at.push(0);
        }
    }
    (energy_pj, flit_hops)
}

/// The wait-queue event loop. Each packet enters the calendar once per
/// hop; a header that finds its channel busy parks in the channel's FIFO
/// and is woken by a single [`EventKind::Free`] event, so contended
/// channels serve strictly in header-arrival order.
fn run_event_loop(st: &mut SimScratch, n_channels: usize, faults: &LinkFaults) {
    st.reset_engine(n_channels);
    let n = st.arena.len();
    let mut delivered = 0usize;

    // Time-0 burst fast path. Every packet is injected at cycle 0, so
    // routing the burst through the calendar lands all n Header events
    // in one bucket and the initial drain's min-scan goes quadratic in
    // n. When every first-hop delay is >= 1 (serialization always is),
    // every event generated while draining the burst lands strictly
    // after cycle 0, so dispatching seqs in ascending order IS the
    // queue's (time, key) dequeue order for the burst — bypass the
    // calendar, with identical heap_events accounting.
    let burst_direct = (0..n).all(|s| st.arena.hop_delay[st.arena.start(s)] > 0);
    if burst_direct {
        for seq in 0..n {
            st.stats.heap_events += 1;
            if st.dispatch_header(topology::narrow::u32_idx(seq), 0, 0, faults) {
                delivered += 1;
            }
        }
    } else {
        for seq in 0..n {
            st.queue.push(
                0,
                EventKind::Header {
                    seq: topology::narrow::u32_idx(seq),
                    hop: 0,
                }
                .order_key(),
            );
        }
    }

    while let Some((time, key)) = st.queue.pop() {
        st.stats.heap_events += 1;
        match EventKind::from_order_key(key) {
            EventKind::Header { seq, hop } => {
                if st.dispatch_header(seq, hop, time, faults) {
                    delivered += 1;
                }
            }
            EventKind::Free { ch } => {
                let w = st.pop_waiter(ch as usize);
                st.acquire(w.seq, w.hop, time, w.arrived);
                if st.has_waiters(ch as usize) {
                    st.queue.push(
                        st.busy_until[ch as usize],
                        EventKind::Free { ch }.order_key(),
                    );
                }
            }
        }
    }
    debug_assert_eq!(delivered, n);
}

/// Nearest-rank percentile on an ascending-sorted slice: the smallest
/// value with at least `pct`% of the samples at or below it.
fn percentile_nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// [`simulate`] with a prebuilt routing table.
pub fn simulate_with_table(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
) -> SimReport {
    simulate_with_scratch(topo, hw, flows, cfg, rt, &mut SimScratch::new())
}

/// [`simulate_with_table`] against caller-owned [`SimScratch`]. The
/// report is identical whatever state the scratch is in; reusing one
/// scratch across runs skips all steady-state allocation.
pub fn simulate_with_scratch(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
    scratch: &mut SimScratch,
) -> SimReport {
    simulate_faulty_with_scratch(topo, hw, flows, cfg, rt, &LinkFaults::none(), scratch)
}

/// [`simulate_with_scratch`] under transient channel fault windows: a
/// header arriving at a blacked-out channel stalls (one rescheduled
/// event) until the window ends, and the report carries the stall total
/// in [`SimReport::total_fault_wait_cycles`]. With an empty
/// [`LinkFaults`] the run is bit-identical to the healthy simulator.
pub fn simulate_faulty_with_scratch(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
    faults: &LinkFaults,
    scratch: &mut SimScratch,
) -> SimReport {
    assert!(cfg.packet_bytes > 0, "packet size must be positive");
    let (energy_pj, flit_hops) = {
        let SimScratch { arena, path, .. } = scratch;
        build_packets_into(topo, hw, flows, cfg, rt, arena, path)
    };
    let n_channels = 2 * topo.link_count() + topo.node_count();
    run_event_loop(scratch, n_channels, faults);

    scratch.latencies.clear();
    scratch
        .latencies
        .extend_from_slice(&scratch.arena.delivered_at);
    scratch.latencies.sort_unstable();
    let latencies = &scratch.latencies;
    let stats = &scratch.stats;
    let makespan = latencies.last().copied().unwrap_or(0);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    SimReport {
        makespan_cycles: makespan,
        mean_packet_latency_cycles: mean,
        p95_packet_latency_cycles: percentile_nearest_rank(latencies, 95),
        packets: latencies.len() as u64,
        flit_hops,
        total_energy_pj: energy_pj,
        mean_hop_header_latency_cycles: if stats.hop_traversals == 0 {
            0.0
        } else {
            stats.hop_latency_total as f64 / stats.hop_traversals as f64
        },
        max_hop_header_latency_cycles: stats.hop_latency_max,
        total_channel_wait_cycles: stats.wait_total,
        heap_events: stats.heap_events,
        total_fault_wait_cycles: stats.fault_wait_total,
        faulted_traversals: stats.faulted_traversals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::analyze;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use topology::{mesh2d, Coord};

    fn mesh5() -> Topology {
        mesh2d(5, 5).unwrap()
    }

    /// AoS packet mirror of the arena, for the reference loops.
    struct Packet {
        channels: Vec<u32>,
        hop_delay: Vec<u64>,
        ser_cycles: u64,
        delivered_at: u64,
    }

    fn build_packets(
        topo: &Topology,
        hw: &HwParams,
        flows: &[Flow],
        cfg: &SimConfig,
        rt: &RouteTable,
    ) -> (PacketArena, f64, u64) {
        let mut arena = PacketArena::default();
        let mut path = Vec::new();
        let (energy, flits) = build_packets_into(topo, hw, flows, cfg, rt, &mut arena, &mut path);
        (arena, energy, flits)
    }

    fn arena_to_aos(arena: &PacketArena) -> Vec<Packet> {
        (0..arena.len())
            .map(|s| {
                let lo = arena.start(s);
                let hi = lo + arena.hops(s);
                Packet {
                    channels: arena.channels[lo..hi].to_vec(),
                    hop_delay: arena.hop_delay[lo..hi].to_vec(),
                    ser_cycles: arena.ser_cycles[s],
                    delivered_at: arena.delivered_at[s],
                }
            })
            .collect()
    }

    fn run_arena(arena: PacketArena, n_channels: usize) -> SimScratch {
        let mut st = SimScratch::new();
        st.arena = arena;
        run_event_loop(&mut st, n_channels, &LinkFaults::none());
        st
    }

    /// The seed's retry-polling event loop, kept verbatim as a reference:
    /// busy channels re-push the same header event until the channel
    /// frees, and ties at the release cycle are broken by packet `seq`
    /// (not arrival order). Returns the per-packet delivery times and the
    /// number of heap events processed.
    fn retry_polling_reference(packets: &mut [Packet], n_channels: usize) -> (Vec<u64>, u64) {
        #[derive(PartialEq, Eq)]
        struct Ev {
            time: u64,
            seq: u32,
            hop: u16,
        }
        impl Ord for Ev {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .time
                    .cmp(&self.time)
                    .then_with(|| other.seq.cmp(&self.seq))
                    .then_with(|| other.hop.cmp(&self.hop))
            }
        }
        impl PartialOrd for Ev {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut busy_until = vec![0u64; n_channels];
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut heap_events = 0u64;
        for seq in 0..packets.len() {
            heap.push(Ev {
                time: 0,
                seq: topology::narrow::u32_idx(seq),
                hop: 0,
            });
        }
        while let Some(ev) = heap.pop() {
            heap_events += 1;
            let p = &mut packets[ev.seq as usize];
            let hop = ev.hop as usize;
            if hop >= p.channels.len() {
                p.delivered_at = ev.time + p.ser_cycles;
                continue;
            }
            let ch = p.channels[hop] as usize;
            if busy_until[ch] > ev.time {
                heap.push(Ev {
                    time: busy_until[ch],
                    seq: ev.seq,
                    hop: ev.hop,
                });
                continue;
            }
            busy_until[ch] = ev.time + p.ser_cycles;
            heap.push(Ev {
                time: ev.time + p.hop_delay[hop],
                seq: ev.seq,
                hop: ev.hop + 1,
            });
        }
        (
            packets.iter().map(|p| p.delivered_at).collect(),
            heap_events,
        )
    }

    fn contention_burst() -> Vec<Flow> {
        // Many sources funneling into one sink: heavy FIFO contention.
        (0..24)
            .map(|i| Flow::new(NodeId(i), NodeId(24), 4096))
            .collect()
    }

    #[test]
    fn single_packet_matches_hand_count() {
        let topo = mesh5();
        let hw = HwParams::default();
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(2, 0)).unwrap();
        let rep = simulate(
            &topo,
            &hw,
            &[Flow::new(src, dst, 64)],
            &SimConfig::default(),
        );
        // NI (4 cycles) + 2 hops x 5 cycles + 2 flits tail.
        assert_eq!(rep.makespan_cycles, 4 + 10 + 2);
        assert_eq!(rep.packets, 1);
        // Three uncontended traversals: NI (4) + two link hops (5 each).
        assert_eq!(rep.total_channel_wait_cycles, 0);
        assert_eq!(rep.max_hop_header_latency_cycles, 5);
        assert!((rep.mean_hop_header_latency_cycles - 14.0 / 3.0).abs() < 1e-12);
        // One heap event per hop plus the delivery event, no contention.
        assert_eq!(rep.heap_events, 4);
    }

    #[test]
    fn contention_delays_packets() {
        let topo = mesh5();
        let hw = HwParams::default();
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(4, 4)).unwrap();
        let one = simulate(
            &topo,
            &hw,
            &[Flow::new(src, dst, 1024)],
            &SimConfig::default(),
        );
        let flows: Vec<Flow> = (0..8).map(|_| Flow::new(src, dst, 1024)).collect();
        let many = simulate(&topo, &hw, &flows, &SimConfig::default());
        assert!(many.makespan_cycles > one.makespan_cycles);
        assert!(many.mean_packet_latency_cycles > one.mean_packet_latency_cycles);
        assert_eq!(one.total_channel_wait_cycles, 0);
        assert!(many.total_channel_wait_cycles > 0, "contention must queue");
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..20)
            .map(|i| {
                Flow::new(
                    NodeId(i % 25),
                    NodeId((i * 7 + 3) % 25),
                    500 + i as u64 * 37,
                )
            })
            .collect();
        let a = simulate(&topo, &hw, &flows, &SimConfig::default());
        let b = simulate(&topo, &hw, &flows, &SimConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch reused across different workloads must reproduce
        // fresh-scratch reports exactly, whatever it ran before.
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let burst = contention_burst();
        let sparse: Vec<Flow> = (0..5)
            .map(|i| Flow::new(NodeId(i * 5), NodeId(i * 5 + 4), 512))
            .collect();

        let mut scratch = SimScratch::new();
        let first = simulate_with_scratch(&topo, &hw, &burst, &cfg, &rt, &mut scratch);
        let dirty = simulate_with_scratch(&topo, &hw, &sparse, &cfg, &rt, &mut scratch);
        let rerun = simulate_with_scratch(&topo, &hw, &burst, &cfg, &rt, &mut scratch);

        assert_eq!(first, simulate_with_table(&topo, &hw, &burst, &cfg, &rt));
        assert_eq!(dirty, simulate_with_table(&topo, &hw, &sparse, &cfg, &rt));
        assert_eq!(first, rerun);
    }

    #[test]
    fn zero_first_hop_delay_falls_back_to_queue() {
        // router_pipeline_cycles = 0 defeats the burst fast path's
        // precondition (first-hop headers would re-enter cycle 0); the
        // fallback must still order the burst exactly like the reference
        // retry-polling loop on a contention-free pattern.
        let topo = mesh5();
        let hw = HwParams {
            router_pipeline_cycles: 0,
            ..HwParams::default()
        };
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let flows: Vec<Flow> = (0..5)
            .map(|i| Flow::new(NodeId(i * 5), NodeId(i * 5 + 4), 512))
            .collect();
        let (arena, _, _) = build_packets(&topo, &hw, &flows, &cfg, &rt);
        assert!(arena.hop_delay[arena.start(0)] == 0, "guard must trip");
        let n_channels = 2 * topo.link_count() + topo.node_count();
        let mut legacy = arena_to_aos(&arena);
        let st = run_arena(arena, n_channels);
        let (old, _) = retry_polling_reference(&mut legacy, n_channels);
        assert_eq!(st.arena.delivered_at, old);
    }

    #[test]
    fn des_energy_matches_analytical() {
        // Both models use identical path-energy accounting.
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..10)
            .map(|i| Flow::new(NodeId(i), NodeId(24 - i), 2048))
            .collect();
        let des = simulate(&topo, &hw, &flows, &SimConfig::default());
        let ana = analyze(&topo, &hw, &flows);
        assert!((des.total_energy_pj - ana.total_energy_pj).abs() / ana.total_energy_pj < 1e-9);
    }

    #[test]
    fn des_never_beats_analytical_bound() {
        let topo = mesh5();
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..30)
            .map(|i| Flow::new(NodeId((i * 3) % 25), NodeId((i * 11 + 5) % 25), 4096))
            .collect();
        let des = simulate(&topo, &hw, &flows, &SimConfig::default());
        let ana = analyze(&topo, &hw, &flows);
        assert!(
            des.makespan_cycles >= ana.makespan_cycles,
            "DES {} cannot beat the analytical lower bound {}",
            des.makespan_cycles,
            ana.makespan_cycles
        );
    }

    #[test]
    fn packet_segmentation() {
        let topo = mesh5();
        let hw = HwParams::default();
        let rep = simulate(
            &topo,
            &hw,
            &[Flow::new(NodeId(0), NodeId(1), 5000)],
            &SimConfig { packet_bytes: 1024 },
        );
        assert_eq!(rep.packets, 5);
    }

    #[test]
    fn empty_flows_ok() {
        let topo = mesh5();
        let rep = simulate(&topo, &HwParams::default(), &[], &SimConfig::default());
        assert_eq!(rep.makespan_cycles, 0);
        assert_eq!(rep.packets, 0);
        assert_eq!(rep.heap_events, 0);
    }

    #[test]
    fn degenerate_flows_carry_no_traffic() {
        // `src == dst` and zero-byte flows are skipped during packet
        // building: no packets, no flits, no energy.
        let topo = mesh5();
        let hw = HwParams::default();
        let degenerate = [
            Flow::new(NodeId(3), NodeId(3), 4096),
            Flow::new(NodeId(0), NodeId(24), 0),
            Flow::new(NodeId(7), NodeId(7), 0),
        ];
        let rep = simulate(&topo, &hw, &degenerate, &SimConfig::default());
        assert_eq!(rep.packets, 0);
        assert_eq!(rep.flit_hops, 0);
        assert_eq!(rep.total_energy_pj, 0.0);
        assert_eq!(rep.makespan_cycles, 0);

        // Mixed with one real flow, only the real flow is simulated.
        let mut mixed = degenerate.to_vec();
        mixed.push(Flow::new(NodeId(0), NodeId(1), 64));
        let mixed_rep = simulate(&topo, &hw, &mixed, &SimConfig::default());
        let alone = simulate(
            &topo,
            &hw,
            &[Flow::new(NodeId(0), NodeId(1), 64)],
            &SimConfig::default(),
        );
        assert_eq!(mixed_rep, alone);
        assert_eq!(mixed_rep.packets, 1);
    }

    #[test]
    fn p95_nearest_rank_boundaries() {
        // n = 1: the only sample is every percentile.
        assert_eq!(percentile_nearest_rank(&[42], 95), 42);
        // n = 20: rank ceil(0.95 * 20) = 19 -> the 19th smallest.
        let v20: Vec<u64> = (1..=20).collect();
        assert_eq!(percentile_nearest_rank(&v20, 95), 19);
        // n = 100: rank ceil(0.95 * 100) = 95 -> the 95th smallest.
        let v100: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&v100, 95), 95);
        // n = 10: rank ceil(9.5) = 10 -> the max. The seed's floor
        // truncation under-reported this as the 9th sample.
        let v10: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        assert_eq!(percentile_nearest_rank(&v10, 95), 1000);
        // Empty input stays 0.
        assert_eq!(percentile_nearest_rank(&[], 95), 0);
    }

    #[test]
    fn p95_reported_for_single_packet() {
        let topo = mesh5();
        let hw = HwParams::default();
        let rep = simulate(
            &topo,
            &hw,
            &[Flow::new(NodeId(0), NodeId(2), 64)],
            &SimConfig::default(),
        );
        // With one packet, p95 must equal the makespan, not under-report.
        assert_eq!(rep.p95_packet_latency_cycles, rep.makespan_cycles);
    }

    /// Regression for the seed's unfair tie-break: a late-arriving packet
    /// with a lower `seq` must NOT jump ahead of an earlier-arrived
    /// packet waiting on the same busy channel.
    #[test]
    fn busy_channel_serves_in_arrival_order() {
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let n = |x, y| topo.node_at(Coord::new2(x, y)).unwrap();
        // seq 0 occupies the (2,0)->(3,0) channel for a long window;
        // seq 1 (low seq) reaches that channel LATE (3 hops away);
        // seq 2 (high seq) reaches it EARLY (1 hop closer).
        let flows = [
            Flow::new(n(2, 0), n(3, 0), 1024),
            Flow::new(n(0, 0), n(4, 0), 64),
            Flow::new(n(1, 0), n(4, 0), 64),
        ];
        let (arena, _, _) = build_packets(&topo, &hw, &flows, &cfg, &rt);
        assert_eq!(arena.len(), 3);
        let n_channels = 2 * topo.link_count() + topo.node_count();

        let mut legacy = arena_to_aos(&arena);
        let st = run_arena(arena, n_channels);
        assert!(
            st.arena.delivered_at[2] < st.arena.delivered_at[1],
            "FIFO: the earlier-arrived seq 2 ({}) must finish before the \
             late low-seq packet ({})",
            st.arena.delivered_at[2],
            st.arena.delivered_at[1]
        );

        // The retry-polling seed loop got this backwards: at the release
        // cycle its tie-break by `seq` let packet 1 jump the queue.
        let (delivered, _) = retry_polling_reference(&mut legacy, n_channels);
        assert!(
            delivered[1] < delivered[2],
            "reference seed loop should exhibit the seq queue-jump"
        );
    }

    /// The wait-queue loop must do at most half the heap work of the
    /// seed's retry-polling loop under heavy contention (the PR's ≥2×
    /// scheduler-efficiency acceptance bar).
    #[test]
    fn wait_queue_halves_heap_events_under_contention() {
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let flows = contention_burst();
        let n_channels = 2 * topo.link_count() + topo.node_count();

        let (arena, _, _) = build_packets(&topo, &hw, &flows, &cfg, &rt);
        let mut legacy = arena_to_aos(&arena);
        let st = run_arena(arena, n_channels);
        let (_, legacy_events) = retry_polling_reference(&mut legacy, n_channels);

        assert!(
            legacy_events >= 2 * st.stats.heap_events,
            "retry polling {legacy_events} vs wait queues {} heap events",
            st.stats.heap_events
        );
        // Both loops agree on the aggregate timeline under this funnel
        // pattern's unambiguous FIFO order.
        assert!(st.stats.heap_events > 0);
    }

    #[test]
    fn empty_fault_set_is_bit_identical_to_healthy_run() {
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let flows = contention_burst();
        let healthy = simulate_with_table(&topo, &hw, &flows, &cfg, &rt);
        let faulty = simulate_faulty_with_scratch(
            &topo,
            &hw,
            &flows,
            &cfg,
            &rt,
            &LinkFaults::none(),
            &mut SimScratch::new(),
        );
        assert_eq!(healthy, faulty);
        assert_eq!(faulty.total_fault_wait_cycles, 0);
        assert_eq!(faulty.faulted_traversals, 0);
    }

    #[test]
    fn faulted_channel_defers_headers_and_counts_the_stall() {
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let src = topo.node_at(Coord::new2(0, 0)).unwrap();
        let dst = topo.node_at(Coord::new2(2, 0)).unwrap();
        let flows = [Flow::new(src, dst, 64)];
        let healthy = simulate_with_table(&topo, &hw, &flows, &cfg, &rt);

        // Black out every link for a long window starting at cycle 0:
        // the packet's first link hop must stall until the window ends.
        let windows: Vec<(LinkId, u64, u64)> = (0..topo.link_count())
            .map(|l| (LinkId(topology::narrow::u32_idx(l)), 0, 1_000))
            .collect();
        let faults = LinkFaults::from_link_windows(&topo, &windows);
        assert!(!faults.is_empty());
        let faulty = simulate_faulty_with_scratch(
            &topo,
            &hw,
            &flows,
            &cfg,
            &rt,
            &faults,
            &mut SimScratch::new(),
        );
        assert!(faulty.faulted_traversals > 0);
        assert!(faulty.total_fault_wait_cycles > 0);
        assert!(
            faulty.makespan_cycles > healthy.makespan_cycles,
            "blackout {} must delay the healthy makespan {}",
            faulty.makespan_cycles,
            healthy.makespan_cycles
        );
        // The NI channel is never faulted, so the stall starts when the
        // header reaches the first *link* channel and ends at cycle 1000.
        assert_eq!(
            faulty.makespan_cycles,
            1_000 + healthy.makespan_cycles - u64::from(hw.router_pipeline_cycles)
        );
    }

    #[test]
    fn fault_window_merging_and_lookup() {
        let topo = mesh5();
        let faults = LinkFaults::from_link_windows(
            &topo,
            &[
                (LinkId(0), 10, 20),
                (LinkId(0), 15, 30), // overlaps -> merges to [10, 30)
                (LinkId(0), 40, 40), // degenerate -> dropped
                (LinkId(1), 5, 8),
            ],
        );
        assert_eq!(faults.blocked_until(0, 9), None);
        assert_eq!(faults.blocked_until(0, 10), Some(30));
        assert_eq!(faults.blocked_until(0, 29), Some(30));
        assert_eq!(faults.blocked_until(0, 30), None);
        assert_eq!(faults.blocked_until(0, 40), None);
        // The reverse directed channel of LinkId(1) shares the window.
        let rev = 1 + topo.link_count();
        assert_eq!(faults.blocked_until(rev, 6), Some(8));
    }

    #[test]
    fn makespan_unchanged_by_wait_queue_rework_without_contention() {
        // On a contention-free run, the rework must be observationally
        // identical to the seed loop.
        let topo = mesh5();
        let hw = HwParams::default();
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let flows: Vec<Flow> = (0..5)
            .map(|i| Flow::new(NodeId(i * 5), NodeId(i * 5 + 4), 512))
            .collect();
        let (arena, _, _) = build_packets(&topo, &hw, &flows, &cfg, &rt);
        let n_channels = 2 * topo.link_count() + topo.node_count();
        let mut legacy = arena_to_aos(&arena);
        let st = run_arena(arena, n_channels);
        let (old, _) = retry_polling_reference(&mut legacy, n_channels);
        assert_eq!(st.arena.delivered_at, old);
    }
}

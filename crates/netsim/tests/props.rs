//! Property-based tests of routing and simulation invariants across
//! random topologies and traffic.

use netsim::{analyze, simulate, CalendarQueue, Flow, RouteTable, SimConfig};
use proptest::prelude::*;
use topology::{floret, kite, mesh2d, HwParams, NodeId};

fn arb_topology(idx: usize) -> topology::Topology {
    match idx % 3 {
        0 => mesh2d(6, 6).unwrap(),
        1 => kite(6, 6).unwrap(),
        _ => floret(6, 6, 4).unwrap().0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routes_terminate_and_reach(topo_idx in 0usize..3, s in 0u32..36, d in 0u32..36) {
        let topo = arb_topology(topo_idx);
        let rt = RouteTable::build(&topo, &HwParams::default());
        let path = rt.path(&topo, NodeId(s), NodeId(d));
        let mut at = NodeId(s);
        for lid in &path {
            at = topo.link(*lid).opposite(at);
        }
        prop_assert_eq!(at, NodeId(d));
        prop_assert!(path.len() <= topo.node_count());
    }

    #[test]
    fn des_dominates_bound_on_any_topology(
        topo_idx in 0usize..3,
        seed in 0u64..500,
        n in 1usize..25,
    ) {
        let topo = arb_topology(topo_idx);
        let hw = HwParams::default();
        let flows: Vec<Flow> = (0..n)
            .map(|i| {
                let s = ((seed as usize + i * 11) % 36) as u32;
                let d = ((seed as usize + i * 17 + 3) % 36) as u32;
                Flow::new(NodeId(s), NodeId(d), 32 + (seed + i as u64) % 2048)
            })
            .collect();
        let ana = analyze(&topo, &hw, &flows);
        let des = simulate(&topo, &hw, &flows, &SimConfig::default());
        prop_assert!(des.makespan_cycles >= ana.makespan_cycles);
        prop_assert!(des.flit_hops == ana.flit_hops);
    }

    /// The calendar queue must dequeue random event sets in exactly the
    /// order a binary min-heap over `(time, key)` would — the event-loop
    /// swap is only sound if the two disciplines agree on every tie.
    #[test]
    fn calendar_queue_matches_binary_heap_order(
        raw in proptest::collection::vec(0u64..u64::MAX, 0..400),
        width in 1u64..64,
    ) {
        // Derive (time, key) pairs from one random word each: times
        // cluster (mod 4096) so duplicates and ties are common.
        let events: Vec<(u64, u64)> = raw
            .iter()
            .map(|r| ((r >> 12) % 4096, r & 0xFFF))
            .collect();

        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            events.iter().map(|&e| std::cmp::Reverse(e)).collect();
        let mut cal = CalendarQueue::new(width);
        for &(t, k) in &events {
            cal.push(t, k);
        }
        while let Some(std::cmp::Reverse(expect)) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(expect));
        }
        prop_assert_eq!(cal.pop(), None);
        prop_assert!(cal.is_empty());
    }

    #[test]
    fn energy_is_additive_over_flows(seed in 0u64..200) {
        let topo = mesh2d(5, 5).unwrap();
        let hw = HwParams::default();
        let f1 = Flow::new(NodeId((seed % 25) as u32), NodeId(((seed + 7) % 25) as u32), 777);
        let f2 = Flow::new(NodeId(((seed + 3) % 25) as u32), NodeId(((seed + 11) % 25) as u32), 1234);
        let e1 = analyze(&topo, &hw, &[f1]).total_energy_pj;
        let e2 = analyze(&topo, &hw, &[f2]).total_energy_pj;
        let both = analyze(&topo, &hw, &[f1, f2]).total_energy_pj;
        prop_assert!((both - (e1 + e2)).abs() < 1e-6);
    }
}

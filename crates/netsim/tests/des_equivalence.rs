//! Differential equivalence of the arena/SoA event loop.
//!
//! `reference_simulate` below is a test-only retelling of the simulator
//! as it stood **before** the arena/SoA rewrite: each packet owns boxed
//! `Vec`s (AoS), channel wait queues are `VecDeque`s, and every event —
//! including the whole time-0 injection burst — goes through the
//! calendar. It is built purely from `netsim`'s public API and computes
//! the full [`SimReport`]. The production engine replaces all of that
//! with flat arenas, an index-linked wait-node pool, and a direct burst
//! dispatch, and must stay *observationally identical*: every field of
//! the report, including float sums (same accumulation order),
//! nearest-rank p95s, and `heap_events`, must match bit for bit on any
//! topology, flow set, and packet size — with a fresh scratch or one
//! dirtied by arbitrary earlier runs.

use std::collections::VecDeque;

use netsim::{
    simulate_with_scratch, simulate_with_table, CalendarQueue, Flow, RouteTable, SimConfig,
    SimReport, SimScratch,
};
use proptest::prelude::*;
use topology::{floret, kite, mesh2d, HwParams, NodeId, Topology};

/// AoS packet record, as the pre-arena engine stored it.
struct Packet {
    channels: Vec<u32>,
    hop_delay: Vec<u64>,
    ser_cycles: u64,
    delivered_at: u64,
}

/// Event key packing shared with the engine: releases (tag 0) drain
/// before header arrivals (tag 1) at the same cycle, headers order by
/// `(seq, hop)`.
fn free_key(ch: u32) -> u64 {
    (ch as u64) << 16
}
fn header_key(seq: u32, hop: u16) -> u64 {
    (1u64 << 48) | ((seq as u64) << 16) | hop as u64
}

fn percentile_nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// The pre-arena wait-queue simulator, end to end: AoS packet build
/// (same flow/hop iteration order, so float energy sums agree exactly),
/// a calendar-driven loop with `VecDeque` wait queues, and the same
/// report arithmetic.
fn reference_simulate(
    topo: &Topology,
    hw: &HwParams,
    flows: &[Flow],
    cfg: &SimConfig,
    rt: &RouteTable,
) -> SimReport {
    assert!(cfg.packet_bytes > 0);
    let n_links = topo.link_count();
    let ni_base = 2 * n_links;
    let n_channels = 2 * n_links + topo.node_count();

    // --- AoS packet build ---------------------------------------------
    let mut packets: Vec<Packet> = Vec::new();
    let mut energy_pj = 0.0f64;
    let mut flit_hops = 0u64;
    for f in flows {
        if f.src == f.dst || f.bytes == 0 {
            continue;
        }
        let path = rt.path(topo, f.src, f.dst);
        let mut remaining = f.bytes;
        while remaining > 0 {
            let size = remaining.min(cfg.packet_bytes as u64);
            remaining -= size;
            let flits = size.div_ceil(hw.flit_bytes as u64).max(1);
            let bits = size * 8;
            let mut channels = vec![ni_base as u32 + f.src.0];
            let mut hop_delay = vec![hw.router_pipeline_cycles as u64];
            let mut at = f.src;
            for lid in &path {
                let link = topo.link(*lid);
                channels.push(if link.a == at {
                    lid.0
                } else {
                    lid.0 + n_links as u32
                });
                hop_delay.push(hw.hop_cycles(link.length_hops));
                energy_pj += hw.hop_energy_pj(bits, topo.ports(at), link.length_hops);
                flit_hops += flits;
                at = link.opposite(at);
            }
            energy_pj += bits as f64 * hw.router_energy_pj_per_bit(topo.ports(f.dst));
            packets.push(Packet {
                channels,
                hop_delay,
                ser_cycles: flits,
                delivered_at: 0,
            });
        }
    }

    // --- Wait-queue event loop, everything through the calendar -------
    let mut busy_until = vec![0u64; n_channels];
    let mut waiters: Vec<VecDeque<(u32, u16, u64)>> = vec![VecDeque::new(); n_channels];
    let mut queue = CalendarQueue::new(8);
    let mut hop_traversals = 0u64;
    let mut hop_latency_total = 0u64;
    let mut hop_latency_max = 0u64;
    let mut wait_total = 0u64;
    let mut heap_events = 0u64;

    for seq in 0..packets.len() {
        queue.push(0, header_key(seq as u32, 0));
    }

    // Grants `seq` its `hop`-th channel at `now` and schedules the next
    // header arrival.
    macro_rules! acquire {
        ($seq:expr, $hop:expr, $now:expr, $arrived:expr) => {{
            let p = &packets[$seq as usize];
            let ch = p.channels[$hop as usize] as usize;
            busy_until[ch] = $now + p.ser_cycles;
            let header_arrives = $now + p.hop_delay[$hop as usize];
            let hop_latency = header_arrives - $arrived;
            hop_traversals += 1;
            hop_latency_total += hop_latency;
            hop_latency_max = hop_latency_max.max(hop_latency);
            wait_total += $now - $arrived;
            queue.push(header_arrives, header_key($seq, $hop + 1));
        }};
    }

    while let Some((time, key)) = queue.pop() {
        heap_events += 1;
        if key >> 48 == 0 {
            // Free: serve the channel's front waiter, re-arm if more.
            let ch = ((key >> 16) & 0xFFFF_FFFF) as usize;
            let (seq, hop, arrived) = waiters[ch]
                .pop_front()
                .expect("Free armed only while waiters are parked");
            acquire!(seq, hop, time, arrived);
            if !waiters[ch].is_empty() {
                queue.push(busy_until[ch], free_key(ch as u32));
            }
        } else {
            let seq = ((key >> 16) & 0xFFFF_FFFF) as u32;
            let hop = (key & 0xFFFF) as u16;
            let p = &packets[seq as usize];
            if hop as usize >= p.channels.len() {
                packets[seq as usize].delivered_at = time + p.ser_cycles;
                continue;
            }
            let ch = p.channels[hop as usize] as usize;
            if busy_until[ch] <= time && waiters[ch].is_empty() {
                acquire!(seq, hop, time, time);
            } else {
                if waiters[ch].is_empty() {
                    queue.push(busy_until[ch], free_key(ch as u32));
                }
                waiters[ch].push_back((seq, hop, time));
            }
        }
    }

    // --- Report -------------------------------------------------------
    let mut latencies: Vec<u64> = packets.iter().map(|p| p.delivered_at).collect();
    latencies.sort_unstable();
    let makespan = latencies.last().copied().unwrap_or(0);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    SimReport {
        makespan_cycles: makespan,
        mean_packet_latency_cycles: mean,
        p95_packet_latency_cycles: percentile_nearest_rank(&latencies, 95),
        packets: latencies.len() as u64,
        flit_hops,
        total_energy_pj: energy_pj,
        mean_hop_header_latency_cycles: if hop_traversals == 0 {
            0.0
        } else {
            hop_latency_total as f64 / hop_traversals as f64
        },
        max_hop_header_latency_cycles: hop_latency_max,
        total_channel_wait_cycles: wait_total,
        heap_events,
        total_fault_wait_cycles: 0,
        faulted_traversals: 0,
    }
}

fn arb_topology(idx: usize) -> Topology {
    match idx % 3 {
        0 => mesh2d(6, 6).unwrap(),
        1 => kite(6, 6).unwrap(),
        _ => floret(6, 6, 4).unwrap().0,
    }
}

/// Deterministic flow set from a seed; deliberately includes degenerate
/// flows (`src == dst`, zero bytes) and both tiny and multi-packet
/// volumes.
fn flow_set(seed: u64, n: usize) -> Vec<Flow> {
    (0..n)
        .map(|i| {
            let s = ((seed as usize).wrapping_add(i * 13)) % 36;
            let d = if i % 7 == 3 {
                s // degenerate: src == dst
            } else {
                ((seed as usize).wrapping_add(i * 19 + 5)) % 36
            };
            let bytes = if i % 11 == 6 {
                0 // degenerate: no payload
            } else {
                17 + (seed.wrapping_mul(31) + i as u64 * 911) % 6000
            };
            Flow::new(NodeId(s as u32), NodeId(d as u32), bytes)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arena engine reproduces the pre-arena loop's `SimReport`
    /// exactly — fresh scratch and dirty scratch alike — on random
    /// topologies, flow sets, and packet sizes.
    #[test]
    fn arena_engine_matches_pre_arena_reference(
        topo_idx in 0usize..3,
        seed in 0u64..10_000,
        n in 0usize..30,
        pb_idx in 0usize..4,
    ) {
        let topo = arb_topology(topo_idx);
        let hw = HwParams::default();
        let cfg = SimConfig { packet_bytes: [64u32, 256, 1024, 4096][pb_idx] };
        let rt = RouteTable::build(&topo, &hw);
        let flows = flow_set(seed, n);

        let expect = reference_simulate(&topo, &hw, &flows, &cfg, &rt);
        let fresh = simulate_with_table(&topo, &hw, &flows, &cfg, &rt);
        prop_assert_eq!(&fresh, &expect);

        // Same run through a scratch dirtied by two unrelated workloads.
        let mut scratch = SimScratch::new();
        simulate_with_scratch(&topo, &hw, &flow_set(seed ^ 0x5DEECE66D, 24), &cfg, &rt, &mut scratch);
        simulate_with_scratch(
            &topo, &hw, &flow_set(seed.wrapping_add(7), 3),
            &SimConfig { packet_bytes: 64 }, &rt, &mut scratch,
        );
        let dirty = simulate_with_scratch(&topo, &hw, &flows, &cfg, &rt, &mut scratch);
        prop_assert_eq!(&dirty, &expect);
    }

    /// A degenerate hardware config (`router_pipeline_cycles == 0`)
    /// defeats the engine's time-0 burst fast path; the calendar
    /// fallback must still match the reference exactly.
    #[test]
    fn burst_fallback_matches_reference(
        topo_idx in 0usize..3,
        seed in 0u64..10_000,
        n in 0usize..20,
    ) {
        let topo = arb_topology(topo_idx);
        let hw = HwParams { router_pipeline_cycles: 0, ..HwParams::default() };
        let cfg = SimConfig::default();
        let rt = RouteTable::build(&topo, &hw);
        let flows = flow_set(seed, n);
        let expect = reference_simulate(&topo, &hw, &flows, &cfg, &rt);
        prop_assert_eq!(simulate_with_table(&topo, &hw, &flows, &cfg, &rt), expect);
    }
}

/// One scratch threaded through a long mixed sequence of runs —
/// alternating topologies, packet sizes, and flow sets — agrees with the
/// reference at every step.
#[test]
fn scratch_sequence_tracks_reference() {
    let hw = HwParams::default();
    let mut scratch = SimScratch::new();
    for step in 0..12u64 {
        let topo = arb_topology(step as usize);
        let rt = RouteTable::build(&topo, &hw);
        let cfg = SimConfig {
            packet_bytes: [128u32, 1024, 4096][step as usize % 3],
        };
        let flows = flow_set(step * 977, 4 + (step as usize * 5) % 26);
        let expect = reference_simulate(&topo, &hw, &flows, &cfg, &rt);
        let got = simulate_with_scratch(&topo, &hw, &flows, &cfg, &rt, &mut scratch);
        assert_eq!(got, expect, "diverged at step {step}");
    }
}

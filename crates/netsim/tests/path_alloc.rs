//! Pins the allocation-free contracts of the netsim hot path: routing
//! via [`netsim::RouteTable::path_into`] allocates nothing once its
//! scratch buffer has grown to the longest path, and an entire
//! simulation through a warm [`netsim::SimScratch`] — packet build,
//! event loop, report assembly — allocates nothing at all. The
//! buffer-reuse rework also changes no observable simulation output
//! (packet counts, report equality).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use netsim::{simulate_with_scratch, simulate_with_table, Flow, RouteTable, SimConfig, SimScratch};
use topology::{kite, mesh2d, HwParams, NodeId};

/// The allocation counter is process-global, so tests in this binary
/// must not run concurrently with the counting window.
static SERIAL: Mutex<()> = Mutex::new(());

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn path_into_is_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    let topo = mesh2d(8, 8).unwrap();
    let rt = RouteTable::build(&topo, &HwParams::default());
    let n = topo.node_count() as u32;
    let mut buf = Vec::new();
    // Warm the scratch to the longest path once.
    rt.path_into(&topo, NodeId(0), NodeId(n - 1), &mut buf);

    let before = alloc_count();
    let mut total_hops = 0usize;
    for s in 0..n {
        for d in 0..n {
            rt.path_into(&topo, NodeId(s), NodeId(d), &mut buf);
            total_hops += buf.len();
        }
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "path_into must not allocate with a warmed scratch buffer"
    );
    assert!(total_hops > 0, "paths were actually walked");
}

/// The whole DES — packet segmentation, the wait-queue event loop under
/// real contention (parks, Free events, node recycling), and report
/// assembly — must run without a single heap allocation once the
/// scratch is warm. The calendar keeps its grown bucket array across
/// `clear()`, the arena and wait-node pool keep their capacity, so a
/// steady-state sweep pays zero allocator traffic per cell.
#[test]
fn warm_simulate_with_scratch_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let topo = mesh2d(6, 6).unwrap();
    let hw = HwParams::default();
    let rt = RouteTable::build(&topo, &hw);
    let cfg = SimConfig { packet_bytes: 512 };
    // Funnel plus background crossings: heavy FIFO contention, so the
    // loop exercises park/pop and the Free re-arm path.
    let mut flows: Vec<Flow> = (0..24)
        .map(|i| Flow::new(NodeId(i), NodeId(35), 4096))
        .collect();
    flows.extend((0..12).map(|i| Flow::new(NodeId(35 - i), NodeId(i * 3 % 36), 2048)));

    // Two warm-up runs: the first grows every buffer, but a mid-run
    // calendar `grow()` redistributes events modulo the doubled bucket
    // count, so individual bucket capacities only stabilize on the
    // second pass (which runs start-to-finish at the final count).
    let mut scratch = SimScratch::new();
    let warm = simulate_with_scratch(&topo, &hw, &flows, &cfg, &rt, &mut scratch);
    assert!(warm.total_channel_wait_cycles > 0, "pattern must contend");
    simulate_with_scratch(&topo, &hw, &flows, &cfg, &rt, &mut scratch);

    let before = alloc_count();
    let rerun = simulate_with_scratch(&topo, &hw, &flows, &cfg, &rt, &mut scratch);
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "a warm scratch re-run must not touch the allocator"
    );
    assert_eq!(rerun, warm, "and must stay bit-identical");
}

#[test]
fn path_into_matches_path_everywhere() {
    let _serial = SERIAL.lock().unwrap();
    for topo in [mesh2d(6, 6).unwrap(), kite(6, 6).unwrap()] {
        let rt = RouteTable::build(&topo, &HwParams::default());
        let mut buf = Vec::new();
        for s in 0..topo.node_count() as u32 {
            for d in 0..topo.node_count() as u32 {
                rt.path_into(&topo, NodeId(s), NodeId(d), &mut buf);
                assert_eq!(buf, rt.path(&topo, NodeId(s), NodeId(d)));
                assert_eq!(buf.len(), rt.hops(&topo, NodeId(s), NodeId(d)));
            }
        }
    }
}

#[test]
fn buffer_reuse_preserves_packet_counts() {
    let _serial = SERIAL.lock().unwrap();
    // The DES setup now routes through the shared scratch; its observable
    // output must be exactly what per-flow path vectors produced: one
    // packet per `packet_bytes` segment, identical full reports.
    let topo = mesh2d(5, 5).unwrap();
    let hw = HwParams::default();
    let rt = RouteTable::build(&topo, &hw);
    let flows: Vec<Flow> = (0..20)
        .map(|i| {
            Flow::new(
                NodeId(i % 25),
                NodeId((i * 7 + 3) % 25),
                1500 + 100 * i as u64,
            )
        })
        .collect();
    let cfg = SimConfig { packet_bytes: 1024 };
    let expected_packets: u64 = flows
        .iter()
        .filter(|f| f.src != f.dst && f.bytes > 0)
        .map(|f| f.bytes.div_ceil(u64::from(cfg.packet_bytes)))
        .sum();
    let a = simulate_with_table(&topo, &hw, &flows, &cfg, &rt);
    assert_eq!(a.packets, expected_packets);
    // Deterministic: a second run is bit-identical.
    let b = simulate_with_table(&topo, &hw, &flows, &cfg, &rt);
    assert_eq!(a, b);
}

//! Criterion benchmark for the dataflow axis: expanding one churned
//! placement into per-mode transfer sets (`mapper::transfers_for`) and
//! folding buffer residency into compute costs (`pim::model_cost_with`).
//! The four modes share the aligned-slice walk, so their costs should
//! stay within a small factor of the weight-stationary baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn::{build_model, Dataflow, Dataset, ModelKind, SegmentGraph};
use mapper::{map_task_sfc, transfers_for, CapacityLedger, TaskId};
use pim::{model_cost_with, PimConfig};
use std::hint::black_box;
use std::time::Duration;

fn dataflow(c: &mut Criterion) {
    let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
    let sg = SegmentGraph::from_layer_graph(&g);
    let (_, layout) = topology::floret(10, 10, 6).unwrap();
    let order = layout.global_order();
    let mut led = CapacityLedger::new(100, 1_000_000);
    let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
    let cfg = PimConfig::default();

    let mut group = c.benchmark_group("dataflow-resnet18");
    for df in Dataflow::all() {
        group.bench_function(format!("transfers-{df}"), |b| {
            b.iter(|| transfers_for(black_box(&tp), black_box(&sg), 1, df))
        });
    }
    group.bench_function("model-cost-4-modes", |b| {
        b.iter(|| {
            Dataflow::all()
                .into_iter()
                .map(|df| model_cost_with(black_box(&sg), &cfg, df).energy_pj)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = dataflow
);
criterion_main!(benches);

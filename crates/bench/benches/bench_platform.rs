//! Criterion benches for the end-to-end platform kernels: one Fig. 3/5
//! workload execution (on a `SweepRunner`-cached platform) and one Fig. 6
//! placement evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
use pim_core::{NoiArch, Platform3D, SweepRunner, SystemConfig};
use std::hint::black_box;
use std::time::Duration;

fn workload_run(c: &mut Criterion) {
    let cfg = SystemConfig::datacenter_25d();
    let wl = dnn::table2_workload("WL1").unwrap();
    let runner = SweepRunner::new(&cfg).unwrap();
    let platform = runner.platform(&NoiArch::Floret { lambda: 6 });
    let mut g = c.benchmark_group("platform25");
    g.bench_function("wl1-floret-full-run", |b| {
        b.iter(|| platform.run_workload(black_box(&wl)))
    });
    g.finish();
}

fn placement_eval(c: &mut Criterion) {
    let cfg = SystemConfig::stacked_3d();
    let platform = Platform3D::new(&cfg).unwrap();
    let net = build_model(ModelKind::ResNet34, Dataset::Cifar10).unwrap();
    let sg = SegmentGraph::from_layer_graph(&net);
    let order = platform.sfc_order();
    c.bench_function("platform3d-evaluate-resnet34", |b| {
        b.iter(|| platform.evaluate(black_box(&sg), &order).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(10);
    targets = workload_run, placement_eval
);
criterion_main!(benches);

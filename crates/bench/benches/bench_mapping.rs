//! Criterion benches for the mapping engine: SFC vs greedy task mapping
//! and the churn scheduler that drives Figs. 3-5.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
use mapper::{
    map_task_greedy, map_task_sfc, run_churn, CapacityLedger, GreedyConfig, Strategy, TaskId,
};
use std::hint::black_box;
use std::time::Duration;
use topology::{floret, mesh2d};

fn task() -> SegmentGraph {
    let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
    SegmentGraph::from_layer_graph(&g)
}

fn single_task(c: &mut Criterion) {
    let sg = task();
    let (_, layout) = floret(10, 10, 6).unwrap();
    let order = layout.global_order();
    let mesh = mesh2d(10, 10).unwrap();
    let apsp = mesh.all_pairs_hops();

    let mut g = c.benchmark_group("map-resnet18");
    g.bench_function("sfc", |b| {
        b.iter(|| {
            let mut led = CapacityLedger::new(100, 2_000_000);
            map_task_sfc(&mut led, black_box(&order), TaskId(0), &sg).unwrap()
        })
    });
    g.bench_function("greedy-mesh", |b| {
        b.iter(|| {
            let mut led = CapacityLedger::new(100, 2_000_000);
            map_task_greedy(
                &mut led,
                &mesh,
                &apsp,
                TaskId(0),
                &sg,
                &GreedyConfig::soft(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn churn(c: &mut Criterion) {
    let tasks = vec![task(); 20];
    let (_, layout) = floret(10, 10, 6).unwrap();
    c.bench_function("churn-20-resnet18-sfc", |b| {
        b.iter(|| run_churn(black_box(&tasks), 100, 1_000_000, &Strategy::sfc(&layout)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = single_task, churn
);
criterion_main!(benches);

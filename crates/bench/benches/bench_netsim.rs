//! Criterion benches for the network simulator: analytical model vs
//! packet-level DES on a loaded 100-chiplet mesh, plus a
//! contention-heavy funnel that stresses the wait-queue event loop
//! (the seed's retry-polling loop re-heapified every busy header; the
//! FIFO wait queues park each header once per hop).

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{analyze, simulate, Flow, SimConfig};
use std::hint::black_box;
use std::time::Duration;
use topology::{mesh2d, HwParams, NodeId};

fn traffic(n: usize) -> Vec<Flow> {
    (0..n)
        .map(|i| {
            Flow::new(
                NodeId((i * 7 % 100) as u32),
                NodeId((i * 13 + 5) as u32 % 100),
                2048 + (i as u64 * 97) % 4096,
            )
        })
        .collect()
}

/// Every chiplet sends to one sink: maximal FIFO channel contention.
fn funnel(n: usize) -> Vec<Flow> {
    (0..n)
        .map(|i| Flow::new(NodeId((i % 99) as u32), NodeId(99), 8192))
        .collect()
}

fn models(c: &mut Criterion) {
    let topo = mesh2d(10, 10).unwrap();
    let hw = HwParams::default();
    let flows = traffic(200);
    let mut g = c.benchmark_group("netsim-200-flows");
    g.bench_function("analytical", |b| {
        b.iter(|| analyze(black_box(&topo), &hw, &flows))
    });
    g.bench_function("des", |b| {
        b.iter(|| simulate(black_box(&topo), &hw, &flows, &SimConfig::default()))
    });
    g.finish();
}

fn contention(c: &mut Criterion) {
    let topo = mesh2d(10, 10).unwrap();
    let hw = HwParams::default();
    let flows = funnel(300);
    let mut g = c.benchmark_group("netsim-contention");
    g.bench_function("des-funnel-300-flows", |b| {
        b.iter(|| simulate(black_box(&topo), &hw, &flows, &SimConfig::default()))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = models, contention
);
criterion_main!(benches);

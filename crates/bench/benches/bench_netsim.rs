//! Criterion benches for the network simulator: analytical model vs
//! packet-level DES on a loaded 100-chiplet mesh.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{analyze, simulate, Flow, SimConfig};
use std::hint::black_box;
use std::time::Duration;
use topology::{mesh2d, HwParams, NodeId};

fn traffic(n: usize) -> Vec<Flow> {
    (0..n)
        .map(|i| {
            Flow::new(
                NodeId((i * 7 % 100) as u32),
                NodeId((i * 13 + 5) as u32 % 100),
                2048 + (i as u64 * 97) % 4096,
            )
        })
        .collect()
}

fn models(c: &mut Criterion) {
    let topo = mesh2d(10, 10).unwrap();
    let hw = HwParams::default();
    let flows = traffic(200);
    let mut g = c.benchmark_group("netsim-200-flows");
    g.bench_function("analytical", |b| {
        b.iter(|| analyze(black_box(&topo), &hw, &flows))
    });
    g.bench_function("des", |b| {
        b.iter(|| simulate(black_box(&topo), &hw, &flows, &SimConfig::default()))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = models
);
criterion_main!(benches);

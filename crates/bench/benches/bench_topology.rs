//! Criterion benches for the topology generators and graph algorithms —
//! the structural substrate behind Fig. 2 and the cost analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use topology::{floret, kite, mesh2d, swap, HwParams, SwapConfig};

fn generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators-100-chiplets");
    g.bench_function("mesh2d", |b| b.iter(|| mesh2d(black_box(10), 10).unwrap()));
    g.bench_function("kite", |b| b.iter(|| kite(black_box(10), 10).unwrap()));
    g.bench_function("swap", |b| {
        b.iter(|| swap(black_box(10), 10, &SwapConfig::default()).unwrap())
    });
    g.bench_function("floret-l6", |b| {
        b.iter(|| floret(black_box(10), 10, 6).unwrap())
    });
    g.finish();
}

fn analysis(c: &mut Criterion) {
    let topo = mesh2d(10, 10).unwrap();
    let hw = HwParams::default();
    let mut g = c.benchmark_group("graph-analysis");
    g.bench_function("apsp-100", |b| b.iter(|| black_box(&topo).all_pairs_hops()));
    g.bench_function("noi-area", |b| b.iter(|| hw.noi_area_mm2(black_box(&topo))));
    g.bench_function("summarize", |b| {
        b.iter(|| topology::summarize(black_box(&topo), &hw))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = generators, analysis
);
criterion_main!(benches);

//! Criterion benchmark for the experiment engine: the seed's
//! rebuild-every-cell sequential Fig. 3/5 loop vs the `SweepRunner`
//! (platforms + route tables constructed once, cells fanned across
//! scoped worker threads). All three variants produce bit-identical
//! reports; only the wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_core::{NoiArch, Platform25D, SweepRunner, SystemConfig};
use std::hint::black_box;
use std::time::Duration;

/// Cold vs warm [`pim_core::EvalCache`]: the cold case pays mapping +
/// DES + costing for every cell on each iteration (cache bypassed, the
/// pre-PR `run all` behaviour between experiments); the warm case
/// replays memoized reports — the fig5-after-fig3 path. Same outputs,
/// very different wall clocks.
fn evalcache(c: &mut Criterion) {
    let cfg = SystemConfig::datacenter_25d();
    let wl = dnn::table2_workload("WL1").unwrap();
    let cold = SweepRunner::new(&cfg).unwrap().with_cache_enabled(false);
    let warm = SweepRunner::new(&cfg).unwrap().with_cache_enabled(true);
    warm.run_workloads(std::slice::from_ref(&wl)); // prime every cell

    let mut g = c.benchmark_group("evalcache-wl1-row");
    g.bench_function("cold-bypass", |b| {
        b.iter(|| cold.run_workloads(black_box(std::slice::from_ref(&wl))))
    });
    g.bench_function("warm-replay", |b| {
        b.iter(|| warm.run_workloads(black_box(std::slice::from_ref(&wl))))
    });
    g.finish();
}

fn sweep(c: &mut Criterion) {
    let cfg = SystemConfig::datacenter_25d();
    let wl = dnn::table2_workload("WL1").unwrap();
    let cached_serial = SweepRunner::new(&cfg).unwrap().with_threads(1);
    let cached_parallel = SweepRunner::new(&cfg).unwrap();

    let mut g = c.benchmark_group("fig345-wl1-row");
    g.bench_function("seed-sequential-rebuild", |b| {
        // The seed's fig345_sweep body: a fresh Platform25D (topology +
        // route table) for every grid cell, strictly sequential.
        b.iter(|| {
            NoiArch::all()
                .into_iter()
                .map(|arch| {
                    Platform25D::new(arch, black_box(&cfg))
                        .expect("paper architectures build")
                        .run_workload(&wl)
                })
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("engine-cached-1-thread", |b| {
        // Construction hoisting alone (same single-threaded execution).
        b.iter(|| cached_serial.run_workloads(black_box(std::slice::from_ref(&wl))))
    });
    g.bench_function("engine-parallel", |b| {
        // Hoisting plus the scoped-thread fan-out.
        b.iter(|| cached_parallel.run_workloads(black_box(std::slice::from_ref(&wl))))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(10);
    targets = sweep, evalcache
);
criterion_main!(benches);

//! Criterion benches for the 3D thermal solver (the Fig. 6/7 inner
//! loop): the production red-black SOR path against the seed's
//! sequential Gauss-Seidel reference, so the solver speedup is a
//! measured number, not an assertion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use thermal::{solve, solve_red_black, solve_reference, PowerMap, ThermalConfig};

fn gradient_power() -> PowerMap {
    let mut power = PowerMap::new(5, 5, 4).unwrap();
    for x in 0..5 {
        for y in 0..5 {
            for z in 0..4 {
                power
                    .set(x, y, z, 0.2 + 0.1 * ((x + y + z) as f64))
                    .unwrap();
            }
        }
    }
    power
}

fn solver(c: &mut Criterion) {
    let power = gradient_power();
    c.bench_function("thermal-solve-5x5x4", |b| {
        b.iter(|| solve(black_box(&power), &ThermalConfig::m3d()))
    });
    c.bench_function("thermal-solve-10x10x4", |b| {
        let mut big = PowerMap::new(10, 10, 4).unwrap();
        for x in 0..10 {
            for y in 0..10 {
                big.set(x, y, 3, 0.5).unwrap();
            }
        }
        b.iter(|| solve(black_box(&big), &ThermalConfig::m3d()))
    });
}

/// Red-black SOR vs the seed Gauss-Seidel on identical inputs, for both
/// stack configurations — the `pim-bench perf` solver comparison as a
/// criterion measurement.
fn solver_comparison(c: &mut Criterion) {
    let power = gradient_power();
    for (stack, cfg) in [("m3d", ThermalConfig::m3d()), ("tsv", ThermalConfig::tsv())] {
        let mut g = c.benchmark_group(format!("thermal-5x5x4-{stack}"));
        g.bench_function("red-black-sor", |b| {
            b.iter(|| solve_red_black(black_box(&power), &cfg, 1))
        });
        g.bench_function("seed-gauss-seidel", |b| {
            b.iter(|| solve_reference(black_box(&power), &cfg))
        });
        g.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = solver, solver_comparison
);
criterion_main!(benches);

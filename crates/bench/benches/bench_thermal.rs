//! Criterion benches for the 3D thermal solver (the Fig. 6/7 inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use thermal::{solve, PowerMap, ThermalConfig};

fn solver(c: &mut Criterion) {
    let mut power = PowerMap::new(5, 5, 4).unwrap();
    for x in 0..5 {
        for y in 0..5 {
            for z in 0..4 {
                power
                    .set(x, y, z, 0.2 + 0.1 * ((x + y + z) as f64))
                    .unwrap();
            }
        }
    }
    c.bench_function("thermal-solve-5x5x4", |b| {
        b.iter(|| solve(black_box(&power), &ThermalConfig::m3d()))
    });
    c.bench_function("thermal-solve-10x10x4", |b| {
        let mut big = PowerMap::new(10, 10, 4).unwrap();
        for x in 0..10 {
            for y in 0..10 {
                big.set(x, y, 3, 0.5).unwrap();
            }
        }
        b.iter(|| solve(black_box(&big), &ThermalConfig::m3d()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = solver
);
criterion_main!(benches);

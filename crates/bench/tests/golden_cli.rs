//! Golden-file snapshot tests for the `pim-bench` CLI: the `table1`,
//! `fig3`, `dataflows`, `mapping_search`, `serving` and `resilience`
//! outputs (table
//! and JSON formats) are pinned byte-for-byte under `tests/golden/`. The numeric rows
//! were verified identical to the pre-redesign per-figure binaries when
//! the goldens were first recorded, so these snapshots carry that
//! equivalence forward.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p pim_bench --test golden_cli
//! ```

use std::path::PathBuf;

mod common;
use common::run_cli;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_golden(args: &[&str], file: &str) {
    let actual = run_cli(args);
    let path = golden_dir().join(file);
    if pim_core::envknobs::is_set("UPDATE_GOLDEN") {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to record",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "pim-bench {args:?} drifted from {file}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p pim_bench --test golden_cli"
    );
}

#[test]
fn table1_table_format_is_pinned() {
    assert_golden(&["run", "table1"], "table1.table.txt");
}

#[test]
fn table1_json_format_is_pinned() {
    assert_golden(&["run", "table1", "--format", "json"], "table1.json");
}

#[test]
fn fig3_table_format_is_pinned() {
    assert_golden(&["run", "fig3"], "fig3.table.txt");
}

#[test]
fn fig3_json_format_is_pinned() {
    assert_golden(&["run", "fig3", "--format", "json"], "fig3.json");
}

#[test]
fn dataflows_table_format_is_pinned() {
    assert_golden(&["run", "dataflows"], "dataflows.table.txt");
}

#[test]
fn dataflows_json_format_is_pinned() {
    assert_golden(&["run", "dataflows", "--format", "json"], "dataflows.json");
}

#[test]
fn mapping_search_table_format_is_pinned() {
    // The reduced axis keeps the searched-resolution pipeline (5 report
    // builds per cell) affordable while still pinning two architectures.
    assert_golden(
        &["run", "mapping_search", "--workload", "WL3"],
        "mapping_search.table.txt",
    );
}

#[test]
fn mapping_search_json_format_is_pinned() {
    assert_golden(
        &[
            "run",
            "mapping_search",
            "--workload",
            "WL3",
            "--format",
            "json",
        ],
        "mapping_search.json",
    );
}

#[test]
fn serving_table_format_is_pinned() {
    assert_golden(&["run", "serving"], "serving.table.txt");
}

#[test]
fn serving_json_format_is_pinned() {
    assert_golden(&["run", "serving", "--format", "json"], "serving.json");
}

#[test]
fn resilience_table_format_is_pinned() {
    assert_golden(&["run", "resilience"], "resilience.table.txt");
}

#[test]
fn resilience_json_format_is_pinned() {
    assert_golden(
        &["run", "resilience", "--format", "json"],
        "resilience.json",
    );
}

#[test]
fn resilience_output_is_thread_count_independent() {
    // Fault injection must not break the determinism contract: chip
    // outages, retries, failovers and shedding all replay identically
    // at 1, 4 and 8 workers.
    if pim_core::envknobs::is_set("UPDATE_GOLDEN") {
        return; // the golden is being rewritten concurrently by the pin test
    }
    let expected = std::fs::read_to_string(golden_dir().join("resilience.table.txt"))
        .expect("resilience golden present (run UPDATE_GOLDEN=1 first)");
    for threads in ["1", "4", "8"] {
        let got = run_cli(&["run", "resilience", "--threads", threads]);
        assert_eq!(
            got, expected,
            "resilience output drifted at --threads {threads}"
        );
    }
}

#[test]
fn serving_output_is_thread_count_independent() {
    // The fleet shards across worker threads; the merged output must be
    // byte-identical at 1, 4 and 8 workers (the determinism contract of
    // the serving pipeline).
    if pim_core::envknobs::is_set("UPDATE_GOLDEN") {
        return; // the golden is being rewritten concurrently by the pin test
    }
    let expected = std::fs::read_to_string(golden_dir().join("serving.table.txt"))
        .expect("serving golden present (run UPDATE_GOLDEN=1 first)");
    for threads in ["1", "4", "8"] {
        let got = run_cli(&["run", "serving", "--threads", threads]);
        assert_eq!(
            got, expected,
            "serving output drifted at --threads {threads}"
        );
    }
}

#[test]
fn fig3_output_is_thread_count_independent() {
    // The golden was recorded at the default worker count; one worker
    // must reproduce it byte-for-byte (the engine determinism contract,
    // now visible at the CLI boundary).
    if pim_core::envknobs::is_set("UPDATE_GOLDEN") {
        return; // the golden is being rewritten concurrently by the pin test
    }
    let single = run_cli(&["run", "fig3", "--threads", "1"]);
    let expected = std::fs::read_to_string(golden_dir().join("fig3.table.txt"))
        .expect("fig3 golden present (run UPDATE_GOLDEN=1 first)");
    assert_eq!(single, expected);
}

//! End-to-end equivalence contracts of the evaluation cache and the
//! red-black thermal solver at the CLI boundary:
//!
//! * `run all --format json` is byte-identical with the cache enabled
//!   and bypassed (`PIM_BENCH_NO_CACHE=1`) — caching is a pure replay;
//! * the full pipeline (including the solver-bound fig6/ablation
//!   experiments) is byte-identical for any worker-thread count;
//! * `PIM_BENCH_CACHE_STATS=1` surfaces hit/miss counters in the output
//!   notes, and the default rendering carries none (so the byte-pinned
//!   goldens stay valid).

mod common;
use common::{run_cli, run_cli_env};

#[test]
fn run_all_json_is_identical_with_and_without_the_cache() {
    let cached = run_cli(&["run", "all", "--format", "json"]);
    let bypassed = run_cli_env(
        &["run", "all", "--format", "json"],
        &[("PIM_BENCH_NO_CACHE", "1")],
    );
    assert!(
        cached == bypassed,
        "caching must be a pure replay: `run all --format json` diverged \
         between cache-enabled and PIM_BENCH_NO_CACHE=1"
    );
    assert!(
        cached.contains("\"experiment\": \"fig3\""),
        "sanity: fig3 ran"
    );
}

#[test]
fn cached_pipeline_is_thread_count_independent() {
    // fig3+fig5 exercise the cache (fig5 replays fig3's cells), fig6 and
    // ablation_thermal exercise the red-black solver; the whole bundle
    // must not change a byte across worker counts.
    let args = |threads: &'static str| {
        vec![
            "run",
            "fig3",
            "fig5",
            "ablation_thermal",
            "fig6",
            "--format",
            "json",
            "--threads",
            threads,
        ]
    };
    let one = run_cli(&args("1"));
    let three = run_cli(&args("3"));
    let eight = run_cli(&args("8"));
    assert!(
        one == three && one == eight,
        "output depends on thread count"
    );
}

#[test]
fn cache_stats_notes_are_opt_in() {
    let plain = run_cli(&["run", "fig3", "fig5", "--format", "json"]);
    assert!(
        !plain.contains("eval cache:"),
        "cache counters must not leak into default output: {plain}"
    );
    let with_stats = run_cli_env(
        &["run", "fig3", "fig5", "--format", "json"],
        &[("PIM_BENCH_CACHE_STATS", "1")],
    );
    assert!(
        with_stats.contains("eval cache: 0 hits, 20 misses"),
        "fig3 fills the cache: {with_stats}"
    );
    assert!(
        with_stats.contains("eval cache: 20 hits, 0 misses"),
        "fig5 must replay fig3's 20 cells: {with_stats}"
    );
    assert!(with_stats.contains("config fingerprint"));
}

//! Shared helper for the CLI integration tests: spawn the real
//! `pim-bench` binary and capture stdout.

use std::process::Command;

/// Runs `pim-bench` with `args`, asserting success, and returns stdout.
pub fn run_cli(args: &[&str]) -> String {
    run_cli_env(args, &[])
}

/// [`run_cli`] with extra environment variables (the cache/solver knobs).
#[allow(dead_code)] // each integration-test binary uses its own subset
pub fn run_cli_env(args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pim-bench"))
        .args(args)
        .envs(envs.iter().copied())
        .output()
        .expect("pim-bench spawns");
    assert!(
        out.status.success(),
        "pim-bench {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

//! CI lane: the machine-readable CLI surface. Runs `pim-bench list`
//! and `pim-bench run table1 --format json`, and validates the JSON
//! with the vendored `serde_json` round-trip helper (parse + compact
//! re-render), so `--format json` can never emit text that a JSON
//! consumer would reject.

use std::process::Command;

mod common;
use common::run_cli;

#[test]
fn list_names_every_registered_experiment() {
    let listing = run_cli(&["list"]);
    for spec in pim_core::experiments::registry().specs() {
        assert!(
            listing.lines().any(|l| l.starts_with(spec.name)),
            "`pim-bench list` is missing {}",
            spec.name
        );
    }
}

#[test]
fn run_table1_json_round_trips_through_the_vendored_parser() {
    let json = run_cli(&["run", "table1", "--format", "json"]);
    // The round-trip helper parses and compactly re-renders; a second
    // round trip must be a fixed point.
    let compact = serde_json::round_trip(&json).expect("CLI emitted valid JSON");
    assert_eq!(serde_json::round_trip(&compact).unwrap(), compact);

    let value = serde_json::from_str(&json).expect("parses");
    let serde::Value::Seq(outputs) = value else {
        panic!("top level must be an array of experiment outputs");
    };
    assert_eq!(outputs.len(), 1);
    let serde::Value::Map(fields) = &outputs[0] else {
        panic!("experiment output must be an object");
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing `{k}` field"))
    };
    assert_eq!(get("experiment"), &serde::Value::Str("table1".into()));
    let serde::Value::Seq(tables) = get("tables") else {
        panic!("`tables` must be an array");
    };
    assert_eq!(tables.len(), 1);
}

#[test]
fn config_rejections_surface_as_clean_cli_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_pim-bench"))
        .args(["run", "table1", "--set", "sim_sampling=0"])
        .output()
        .expect("pim-bench spawns");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sim_sampling"), "{stderr}");
}

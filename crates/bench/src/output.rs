//! The presentation layer: renders [`ExperimentOutput`] as an aligned
//! ASCII table, JSON (via the vendored `serde_json`) or CSV, plus the
//! formatting helpers the legacy binaries shared (`section`, `ratio`,
//! and re-exports of the normalization/heat-map helpers that live with
//! the experiment code in `pim_core`).
//!
//! Every format renders the *same* structured data — the typed column
//! schema decides alignment and float precision, so no experiment owns
//! a `println!` format string anymore.

use std::fmt;
use std::str::FromStr;

use pim_core::{CellValue, ColumnType, ExperimentOutput, Histogram, Table};

pub use pim_core::experiments::{ascii_heatmap, normalize_to_floret};

/// Prints a horizontal rule with a title.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Humanizes a nanosecond duration (`812 ns`, `4.05 us`, `2.236 ms`,
/// `1.500 s`) — the table rendering of [`ColumnType::Duration`]; JSON
/// and CSV keep raw nanoseconds.
pub fn duration(ns: f64) -> String {
    let abs = ns.abs();
    if abs < 1e3 {
        format!("{ns:.0} ns")
    } else if abs < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if abs < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Output format selector for the `pim-bench` CLI (`--format`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Format {
    /// Aligned human-readable tables (the default).
    Table,
    /// Pretty-printed JSON array of [`ExperimentOutput`]s.
    Json,
    /// CSV, one header+rows block per table with `#` comment lines.
    Csv,
}

impl FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "table" => Ok(Format::Table),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!(
                "unknown format `{other}` (expected table, json or csv)"
            )),
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Format::Table => "table",
            Format::Json => "json",
            Format::Csv => "csv",
        })
    }
}

/// Renders one cell per its column's type: fixed or scientific float
/// precision, `x.xx×`-style ratios, plain integers and labels.
pub fn format_cell(v: &CellValue, ty: &ColumnType) -> String {
    match (v, ty) {
        (CellValue::Str(s), _) => s.clone(),
        (CellValue::UInt(u), _) => u.to_string(),
        (CellValue::Int(i), _) => i.to_string(),
        (CellValue::Duration(ns), _) => duration(*ns),
        (CellValue::Float(f), ColumnType::Ratio) => ratio(*f),
        (
            CellValue::Float(f),
            ColumnType::Float {
                precision,
                scientific: true,
            },
        ) => format!("{f:.prec$e}", prec = *precision as usize),
        (
            CellValue::Float(f),
            ColumnType::Float {
                precision,
                scientific: false,
            },
        ) => format!("{f:.prec$}", prec = *precision as usize),
        // Schema mismatch (caught by Table::validate in tests): shortest
        // faithful rendering.
        (CellValue::Float(f), _) => f.to_string(),
    }
}

/// The raw (format-hint-free) rendering used by CSV: floats keep full
/// precision so the output stays machine-consumable.
fn raw_cell(v: &CellValue) -> String {
    match v {
        CellValue::Str(s) => s.clone(),
        CellValue::UInt(u) => u.to_string(),
        CellValue::Int(i) => i.to_string(),
        CellValue::Float(f) => f.to_string(),
        // Raw nanoseconds: machine-consumable, no unit suffix.
        CellValue::Duration(ns) => ns.to_string(),
    }
}

fn render_table_text(t: &Table, out: &mut String) {
    out.push_str(&format!("\n=== {} ===\n", t.title));
    let mut cells: Vec<Vec<String>> = vec![t.columns.iter().map(|c| c.name.clone()).collect()];
    for row in &t.rows {
        cells.push(
            row.iter()
                .zip(&t.columns)
                .map(|(v, c)| format_cell(v, &c.ty))
                .collect(),
        );
    }
    let widths: Vec<usize> = (0..t.columns.len())
        .map(|ci| cells.iter().map(|r| r[ci].len()).max().unwrap_or(0))
        .collect();
    for row in &cells {
        let line: Vec<String> = row
            .iter()
            .zip(&t.columns)
            .zip(&widths)
            .map(|((cell, col), w)| {
                if matches!(col.ty, ColumnType::Str) {
                    format!("{cell:<w$}")
                } else {
                    format!("{cell:>w$}")
                }
            })
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
    }
}

/// Bar width of the widest histogram bin in the table rendering.
const HISTOGRAM_BAR_WIDTH: usize = 40;

fn histogram_edge(h: &Histogram, e: f64) -> String {
    if h.unit == "ns" {
        duration(e)
    } else {
        format!("{e} {}", h.unit)
    }
}

fn render_histogram_text(h: &Histogram, out: &mut String) {
    out.push_str(&format!("\n=== {} ===\n", h.title));
    let max = h.counts.iter().copied().max().unwrap_or(0).max(1);
    let labels: Vec<String> = h
        .edges
        .windows(2)
        .map(|w| {
            format!(
                "[{} .. {})",
                histogram_edge(h, w[0]),
                histogram_edge(h, w[1])
            )
        })
        .collect();
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    let count_w = h
        .counts
        .iter()
        .map(|c| c.to_string().len())
        .max()
        .unwrap_or(1);
    for (label, &count) in labels.iter().zip(&h.counts) {
        let bar = "#".repeat((count as usize * HISTOGRAM_BAR_WIDTH).div_ceil(max as usize));
        out.push_str(format!("{label:<label_w$}  {count:>count_w$}  {bar}").trim_end());
        out.push('\n');
    }
}

fn render_histogram_csv(experiment: &str, h: &Histogram, out: &mut String) {
    out.push_str(&format!(
        "# experiment: {experiment} | histogram: {} ({})\n",
        h.title, h.unit
    ));
    out.push_str("bin_lo,bin_hi,count\n");
    for (w, count) in h.edges.windows(2).zip(&h.counts) {
        out.push_str(&format!("{},{},{count}\n", w[0], w[1]));
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn render_table_csv(experiment: &str, t: &Table, out: &mut String) {
    out.push_str(&format!(
        "# experiment: {experiment} | table: {}\n",
        t.title
    ));
    let header: Vec<String> = t.columns.iter().map(|c| csv_escape(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &t.rows {
        let line: Vec<String> = row.iter().map(|v| csv_escape(&raw_cell(v))).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
}

/// Renders experiment outputs in the requested [`Format`].
///
/// The table format reproduces the legacy binaries' sectioned layout
/// (schema-driven alignment and precision); JSON is a pretty-printed
/// array of the full structured outputs; CSV emits one header+rows
/// block per table with `#` comment lines for provenance and notes.
pub fn render(outputs: &[ExperimentOutput], format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Table => {
            for o in outputs {
                for t in &o.tables {
                    render_table_text(t, &mut out);
                }
                for h in &o.histograms {
                    render_histogram_text(h, &mut out);
                }
                for note in &o.notes {
                    out.push('\n');
                    out.push_str(note.trim_end());
                    out.push('\n');
                }
            }
        }
        Format::Json => {
            out.push_str(&serde_json::to_string_pretty(&outputs).expect("serializable"));
            out.push('\n');
        }
        Format::Csv => {
            for o in outputs {
                for t in &o.tables {
                    render_table_csv(&o.experiment, t, &mut out);
                }
                for h in &o.histograms {
                    render_histogram_csv(&o.experiment, h, &mut out);
                }
                for note in &o.notes {
                    for line in note.lines() {
                        out.push_str("# note: ");
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::Column;

    fn sample() -> ExperimentOutput {
        let mut o = ExperimentOutput::new("demo", "a demo");
        let mut t = Table::new(
            "demo table",
            vec![
                Column::str("name"),
                Column::uint("n"),
                Column::float("v", 2),
                Column::sci("e", 3),
                Column::ratio("r"),
            ],
        );
        t.push(vec![
            "alpha, beta".into(),
            42u64.into(),
            1.23456.into(),
            512345.0.into(),
            2.236.into(),
        ]);
        o.tables.push(t);
        o.notes.push("a note".to_string());
        o
    }

    #[test]
    fn heatmap_shape() {
        let slice = vec![vec![300.0, 350.0], vec![400.0, 325.0]];
        let map = ascii_heatmap(&slice, 300.0, 400.0);
        assert_eq!(map.lines().count(), 2);
        assert!(map.starts_with(". "));
        assert!(map.contains('@'));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(2.236), "2.24x");
    }

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!("table".parse::<Format>(), Ok(Format::Table));
        assert_eq!("JSON".parse::<Format>(), Ok(Format::Json));
        assert_eq!("csv".parse::<Format>(), Ok(Format::Csv));
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn cells_render_by_schema() {
        let t = &sample().tables[0];
        let rendered: Vec<String> = t.rows[0]
            .iter()
            .zip(&t.columns)
            .map(|(v, c)| format_cell(v, &c.ty))
            .collect();
        assert_eq!(
            rendered,
            vec!["alpha, beta", "42", "1.23", "5.123e5", "2.24x"]
        );
    }

    #[test]
    fn table_format_aligns_and_sections() {
        let text = render(&[sample()], Format::Table);
        assert!(text.contains("=== demo table ==="), "{text}");
        assert!(text.contains("2.24x"));
        assert!(text.contains("\na note\n"));
    }

    #[test]
    fn csv_escapes_and_headers() {
        let text = render(&[sample()], Format::Csv);
        assert!(text.contains("# experiment: demo | table: demo table"));
        assert!(text.contains("name,n,v,e,r"));
        assert!(text.contains("\"alpha, beta\""), "{text}");
        assert!(text.contains("# note: a note"));
    }

    fn sample_with_histogram() -> ExperimentOutput {
        let mut o = ExperimentOutput::new("demo", "a demo");
        let mut t = Table::new(
            "latency",
            vec![Column::str("point"), Column::percentile("p99")],
        );
        t.push(vec!["light".into(), CellValue::Duration(4_416_637.0)]);
        o.tables.push(t);
        let mut h = Histogram::new("latency distribution", "ns", vec![0.0, 1e6, 4e6, 16e6]);
        for v in [0.5e6, 2e6, 2.5e6, 3e6, 8e6] {
            h.record(v);
        }
        o.histograms.push(h);
        o
    }

    #[test]
    fn durations_humanize_in_tables_and_stay_raw_in_csv() {
        assert_eq!(duration(812.0), "812 ns");
        assert_eq!(duration(4_050.0), "4.05 us");
        assert_eq!(duration(2_235_698.0), "2.236 ms");
        assert_eq!(duration(1.5e9), "1.500 s");
        let o = sample_with_histogram();
        let text = render(std::slice::from_ref(&o), Format::Table);
        assert!(text.contains("4.417 ms"), "{text}");
        let csv = render(std::slice::from_ref(&o), Format::Csv);
        assert!(csv.contains("light,4416637"), "{csv}");
    }

    #[test]
    fn histograms_render_in_all_three_formats() {
        let o = sample_with_histogram();
        let text = render(std::slice::from_ref(&o), Format::Table);
        assert!(text.contains("=== latency distribution ==="), "{text}");
        // Three bins with counts 1, 3, 1; the modal bin gets the full bar.
        assert!(text.contains(&"#".repeat(HISTOGRAM_BAR_WIDTH)), "{text}");
        assert!(text.contains("[0 ns .. 1.000 ms)"), "{text}");
        let csv = render(std::slice::from_ref(&o), Format::Csv);
        assert!(
            csv.contains("# experiment: demo | histogram: latency distribution (ns)"),
            "{csv}"
        );
        assert!(csv.contains("bin_lo,bin_hi,count"), "{csv}");
        assert!(csv.contains("1000000,4000000,3"), "{csv}");
        let json = render(std::slice::from_ref(&o), Format::Json);
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"counts\""), "{json}");
        serde_json::from_str(&json).expect("valid JSON");
    }

    #[test]
    fn json_round_trips_through_the_vendored_parser() {
        let text = render(&[sample()], Format::Json);
        let parsed = serde_json::from_str(&text).expect("valid JSON");
        let re = serde_json::to_string(&parsed).unwrap();
        assert!(re.contains("\"experiment\""));
        assert!(re.contains("demo table"));
    }
}

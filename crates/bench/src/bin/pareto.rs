//! Ablation: the full EDP-vs-peak-temperature Pareto front of layer
//! placements on the 100-PE 3D system (NSGA-II), putting the single
//! "joint performance-thermal" point of Figs. 6-7 in context.

use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
use pim_core::{Platform3D, SystemConfig};

fn main() {
    let cfg = SystemConfig::stacked_3d();
    let platform = Platform3D::new(&cfg).expect("3d platform");
    let net = build_model(ModelKind::ResNet34, Dataset::Cifar10).expect("resnet34");
    let sg = SegmentGraph::from_layer_graph(&net);

    let nsga = opt::NsgaConfig {
        population: 32,
        generations: 30,
        seed: 0xFACE,
    };
    pim_bench::section("ResNet-34 placement Pareto front (EDP vs peak temperature)");
    let front = platform.pareto_front(&sg, &nsga).expect("fits");
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "EDP(norm)", "peak(K)", "hotspots", "acc drop"
    );
    for p in &front {
        println!(
            "{:>10.3} {:>10.1} {:>10} {:>11.1}%",
            p.edp_norm,
            p.peak_k,
            p.eval.hotspots,
            p.eval.accuracy_drop * 100.0
        );
    }
    println!("\n(the SFC order anchors EDP = 1.0; the paper's joint design point");
    println!(" sits on the knee of this front)");
}

//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run fig5` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `fig5 --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("fig5"));
}

//! Regenerates Fig. 5: NoI energy for the Table II mixes, normalized to
//! Floret (paper: 1.65x vs SIAM, 2.8x vs Kite on average).

use pim_bench::normalize_to_floret;
use pim_core::{experiments, NoiArch, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    pim_bench::section("Fig. 5: NoI energy (dynamic + static), normalized to Floret");
    println!(
        "{:<5} {:<8} {:>12} {:>8}",
        "mix", "arch", "energy(pJ)", "norm"
    );
    let mut sums: std::collections::BTreeMap<String, (f64, u32)> = Default::default();
    for wl in ["WL1", "WL2", "WL3", "WL4", "WL5"] {
        let rows: Vec<_> = NoiArch::all()
            .into_iter()
            .map(|arch| experiments::run_arch_workload(&cfg, arch, wl))
            .collect();
        let norm = normalize_to_floret(&rows, |r| r.noi_energy_pj);
        for (arch, v, n) in norm {
            println!(
                "{:<5} {:<8} {:>12.3e} {:>8}",
                wl,
                arch,
                v,
                pim_bench::ratio(n)
            );
            let e = sums.entry(arch).or_insert((0.0, 0));
            e.0 += n;
            e.1 += 1;
        }
    }
    pim_bench::section("average normalized energy (paper: SIAM 1.65x, Kite 2.8x)");
    for (arch, (sum, count)) in sums {
        println!("{:<8} {}", arch, pim_bench::ratio(sum / count as f64));
    }
}

//! Regenerates Fig. 5: NoI energy for the Table II mixes, normalized to
//! Floret (paper: 1.65x vs SIAM, 2.8x vs Kite on average). Runs on the
//! shared `SweepRunner` engine (platforms built once, cells in parallel,
//! deterministic output order).

use pim_bench::normalize_to_floret;
use pim_core::{SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    pim_bench::section("Fig. 5: NoI energy (dynamic + static), normalized to Floret");
    println!(
        "{:<5} {:<8} {:>12} {:>8}",
        "mix", "arch", "energy(pJ)", "norm"
    );
    let mut sums: std::collections::BTreeMap<String, (f64, u32)> = Default::default();
    let reports = runner.fig345_sweep();
    for rows in reports.chunks(runner.platforms().len()) {
        let norm = normalize_to_floret(rows, |r| r.noi_energy_pj);
        for (r, (arch, v, n)) in rows.iter().zip(norm) {
            println!(
                "{:<5} {:<8} {:>12.3e} {:>8}",
                r.workload,
                arch,
                v,
                pim_bench::ratio(n)
            );
            let e = sums.entry(arch).or_insert((0.0, 0));
            e.0 += n;
            e.1 += 1;
        }
    }
    pim_bench::section("average normalized energy (paper: SIAM 1.65x, Kite 2.8x)");
    for (arch, (sum, count)) in sums {
        println!("{:<8} {}", arch, pim_bench::ratio(sum / count as f64));
    }
}

//! The unified experiment CLI: `pim-bench list`, `pim-bench describe
//! <name>`, `pim-bench run <name|all> [--format table|json|csv]
//! [--out <path>] [--threads N] [--set key=value] ...`. Every paper
//! artifact is resolved through the `pim_core` experiment registry.

fn main() {
    std::process::exit(pim_bench::cli::run_from(std::env::args().skip(1)));
}

//! Regenerates Table II: the five concurrent-DNN workload mixes and their
//! total parameter counts.

fn main() {
    pim_bench::section("Table II: concurrent DNN task mixes (100-chiplet system)");
    println!(
        "{:<5} {:>6} {:>10} {:>13}",
        "mix", "tasks", "paper (B)", "computed (B)"
    );
    for r in pim_core::experiments::table2_rows() {
        println!(
            "{:<5} {:>6} {:>10.1} {:>13.2}",
            r.name, r.tasks, r.paper_total_b, r.computed_total_b
        );
    }
}

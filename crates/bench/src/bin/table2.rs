//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run table2` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `table2 --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("table2"));
}

//! Regenerates Fig. 3: NoI latency for the Table II mixes on the four
//! architectures, normalized to Floret. Runs on the shared `SweepRunner`
//! engine: each platform is built once and the 20 (mix, arch) cells fan
//! across worker threads with deterministic output order.

use pim_bench::normalize_to_floret;
use pim_core::{SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    pim_bench::section("Fig. 3: NoI latency (DES on co-resident traffic), normalized to Floret");
    println!(
        "{:<5} {:<8} {:>14} {:>8} {:>10}",
        "mix", "arch", "latency(cyc)", "norm", "hops"
    );
    let reports = runner.fig345_sweep();
    for rows in reports.chunks(runner.platforms().len()) {
        let norm = normalize_to_floret(rows, |r| r.sim_latency_cycles as f64);
        for (r, (_, v, n)) in rows.iter().zip(norm) {
            println!(
                "{:<5} {:<8} {:>14.0} {:>8} {:>10.2}",
                r.workload,
                r.arch,
                v,
                pim_bench::ratio(n),
                r.mean_weighted_hops
            );
        }
    }
    println!("\nPaper: Kite/SIAM up to 2.24x worse than Floret; we reproduce the");
    println!("ordering with milder ratios (see EXPERIMENTS.md).");
}

//! Regenerates Fig. 3: NoI latency for the Table II mixes on the four
//! architectures, normalized to Floret.

use pim_bench::normalize_to_floret;
use pim_core::{experiments, NoiArch, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    pim_bench::section("Fig. 3: NoI latency (DES on co-resident traffic), normalized to Floret");
    println!(
        "{:<5} {:<8} {:>14} {:>8} {:>10}",
        "mix", "arch", "latency(cyc)", "norm", "hops"
    );
    for wl in ["WL1", "WL2", "WL3", "WL4", "WL5"] {
        let rows: Vec<_> = NoiArch::all()
            .into_iter()
            .map(|arch| experiments::run_arch_workload(&cfg, arch, wl))
            .collect();
        let norm = normalize_to_floret(&rows, |r| r.sim_latency_cycles as f64);
        for (r, (_, v, n)) in rows.iter().zip(norm) {
            println!(
                "{:<5} {:<8} {:>14.0} {:>8} {:>10.2}",
                wl,
                r.arch,
                v,
                pim_bench::ratio(n),
                r.mean_weighted_hops
            );
        }
    }
    println!("\nPaper: Kite/SIAM up to 2.24x worse than Floret; we reproduce the");
    println!("ordering with milder ratios (see EXPERIMENTS.md).");
}

//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run fig7` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `fig7 --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("fig7"));
}

//! Regenerates Fig. 7: bottom-tier thermal hotspot maps for ResNet-34 on
//! the 100-PE 3D system (Floret/performance-only vs thermal-aware).

use pim_bench::ascii_heatmap;
use pim_core::{experiments, SystemConfig};

fn main() {
    let cfg = SystemConfig::stacked_3d();
    let sa = experiments::joint_sa_config();
    let maps = experiments::fig7_maps(&cfg, &sa);
    let lo = 300.0;
    let hi = maps.floret_peak_k.max(maps.joint_peak_k);

    pim_bench::section("Fig. 7(a): bottom tier, Floret-based 3D NoC (ResNet-34)");
    print!("{}", ascii_heatmap(&maps.floret_bottom_tier, lo, hi));
    println!(
        "peak = {:.1} K, hotspots (>=330K) = {}",
        maps.floret_peak_k, maps.floret_hotspots
    );

    pim_bench::section("Fig. 7(b): bottom tier, thermal-aware 3D NoC");
    print!("{}", ascii_heatmap(&maps.joint_bottom_tier, lo, hi));
    println!(
        "peak = {:.1} K, hotspots (>=330K) = {}",
        maps.joint_peak_k, maps.joint_hotspots
    );

    println!(
        "\npeak delta = {:.1} K (paper: 17 K for ResNet-34)",
        maps.floret_peak_k - maps.joint_peak_k
    );
    println!("\nraw bottom-tier temperatures (K), Floret:");
    for row in &maps.floret_bottom_tier {
        let cells: Vec<String> = row.iter().map(|t| format!("{t:6.1}")).collect();
        println!("  {}", cells.join(" "));
    }
}

//! Regenerates Fig. 6: EDP (a), peak temperature (b) and thermal-noise
//! accuracy impact (c) for the Floret-enabled vs joint
//! performance-thermal 3D NoC on the 100-PE system.

use pim::baseline_top1;
use pim_core::{experiments, SystemConfig};

fn main() {
    let cfg = SystemConfig::stacked_3d();
    let sa = experiments::joint_sa_config();
    let rows = experiments::fig6_rows(&cfg, &sa);

    pim_bench::section("Fig. 6(a): EDP (J*s); Floret-NoC is performance-only");
    println!(
        "{:<5} {:<11} {:>12} {:>12} {:>14}",
        "id", "model", "Floret", "Joint", "Floret better"
    );
    for r in &rows {
        println!(
            "{:<5} {:<11} {:>12.3e} {:>12.3e} {:>13.1}%",
            r.id,
            r.model,
            r.floret.edp_js,
            r.joint.edp_js,
            (r.joint.edp_js / r.floret.edp_js - 1.0) * 100.0
        );
    }

    pim_bench::section("Fig. 6(b): peak temperature (K)");
    println!(
        "{:<5} {:<11} {:>8} {:>8} {:>7}",
        "id", "model", "Floret", "Joint", "delta"
    );
    for r in &rows {
        println!(
            "{:<5} {:<11} {:>8.1} {:>8.1} {:>7.1}",
            r.id,
            r.model,
            r.floret.peak_k,
            r.joint.peak_k,
            r.floret.peak_k - r.joint.peak_k
        );
    }

    pim_bench::section("Fig. 6(c): top-1 accuracy under thermal noise");
    println!(
        "{:<5} {:<11} {:>9} {:>9} {:>9} {:>10}",
        "id", "model", "baseline", "Floret", "Joint", "drop(F)"
    );
    for r in &rows {
        let entry = dnn::table1_entry(&r.id).expect("table entry");
        let base = baseline_top1(entry.kind, entry.dataset);
        println!(
            "{:<5} {:<11} {:>9.3} {:>9.3} {:>9.3} {:>9.1}%",
            r.id,
            r.model,
            base,
            base - r.floret.accuracy_drop,
            base - r.joint.accuracy_drop,
            r.floret.accuracy_drop * 100.0
        );
    }
    println!("\nPaper: Floret-NoC ~9% lower EDP, ~13K hotter, up to 11% accuracy loss.");
}

//! Regenerates the Section IV Transformer analysis: intermediate-matrix
//! storage pressure for BERT-Tiny and BERT-Base (paper: 2.06x / 8.98x),
//! plus the write-endurance lifetime bound that rules out NVM crossbars
//! for self-attention.

use dnn::{lifetime_inferences, BertConfig};

fn main() {
    pim_bench::section("Section IV: intermediate-matrix storage vs weights");
    for (name, rows) in pim_core::experiments::transformer_rows() {
        println!("\n{name}:");
        println!(
            "{:>6} {:>16} {:>22} {:>22}",
            "seq", "inter/layer", "vs attn W (fp16/int8)", "vs layer W (same prec)"
        );
        for r in rows {
            println!(
                "{:>6} {:>16} {:>22.2} {:>22.2}",
                r.seq,
                r.intermediates_per_layer,
                r.ratio_attention_fp16_int8,
                r.ratio_layer_same_precision
            );
        }
    }
    println!("\nPaper: BERT-Base 8.98x, BERT-Tiny 2.06x. Our fp16/int8 attention-weight");
    println!("accounting reproduces the BERT-Base regime at seq=512 (~9.3x).");

    pim_bench::section("write-endurance lifetime if intermediates lived in ReRAM");
    for (name, cfg) in [
        ("BERT-Tiny", BertConfig::tiny()),
        ("BERT-Base", BertConfig::base()),
    ] {
        let writes = cfg.writes_per_inference(512);
        let life = lifetime_inferences(writes, 100_000_000, 1_000_000);
        println!(
            "{name}: {writes} cell-writes/inference -> device wears out after ~{life} inferences"
        );
    }
    println!("(a datacenter accelerator serves billions of inferences: NVM-PIM is unsuitable");
    println!(" for attention intermediates, motivating heterogeneous integration)");
}

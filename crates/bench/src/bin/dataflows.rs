//! Regenerates the dataflow figure: the (architecture × Table II mix ×
//! dataflow) grid through the shared `SweepRunner` engine. For every
//! (mix, architecture) cell the four dataflow modes of `dnn::Dataflow`
//! are costed on the *same* churned placement — only the tensors that
//! cross the NoI change — and traffic/latency are normalized to the
//! weight-stationary (seed) baseline.

use dnn::Dataflow;
use pim_core::{SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    pim_bench::section("Dataflow sweep: NoI traffic, DES latency and compute energy vs WS");
    println!(
        "{:<5} {:<3} {:<8} {:>12} {:>8} {:>14} {:>8} {:>12} {:>8}",
        "mix", "df", "arch", "traffic(MB)", "norm", "latency(cyc)", "norm", "compute(mJ)", "norm"
    );

    let reports = runner.dataflow_sweep();
    let n_arch = runner.platforms().len();
    let n_df = Dataflow::all().len();
    let mut fused_wins = 0usize;
    let mut grid_cells = 0usize;
    for wl_rows in reports.chunks(n_df * n_arch) {
        let ws_rows = &wl_rows[..n_arch]; // Dataflow::all() puts WS first.
        for (di, df_rows) in wl_rows.chunks(n_arch).enumerate() {
            for (r, ws) in df_rows.iter().zip(ws_rows) {
                let t = r.total_traffic_bytes as f64;
                let t_ws = (ws.total_traffic_bytes as f64).max(1.0);
                let l = r.sim_latency_cycles as f64;
                let l_ws = (ws.sim_latency_cycles as f64).max(1.0);
                let e = r.compute_energy_pj;
                let e_ws = ws.compute_energy_pj.max(f64::MIN_POSITIVE);
                println!(
                    "{:<5} {:<3} {:<8} {:>12.2} {:>8} {:>14.0} {:>8} {:>12.2} {:>8}",
                    r.workload,
                    r.dataflow,
                    r.arch,
                    t / 1e6,
                    pim_bench::ratio(t / t_ws),
                    l,
                    pim_bench::ratio(l / l_ws),
                    e / 1e9,
                    pim_bench::ratio(e / e_ws),
                );
                grid_cells += 1;
                if di == n_df - 1 && r.total_traffic_bytes < ws.total_traffic_bytes {
                    fused_wins += 1;
                }
            }
        }
        println!();
    }

    println!(
        "{grid_cells} grid cells; fused-layer moved strictly fewer inter-chiplet \
         bytes than weight-stationary in {fused_wins}/{} (mix, arch) cells.",
        grid_cells / n_df
    );
    println!("Re-stationing only ever replaces a larger activation slice, so no");
    println!("mode exceeds the WS baseline; OS/IS trade activation slices for");
    println!("staged weight tiles, FL elides fusible chain edges to halo bands.");
}

//! Standalone NoC characterization: the four NoIs under classic synthetic
//! traffic patterns (independent of any DNN workload). Shows where each
//! topology's structure helps and hurts. The platforms (and their route
//! tables) come from the shared `SweepRunner` cache instead of being
//! rebuilt per (pattern, arch) cell.

use netsim::{analyze_with_table, generate_pattern, simulate_with_table, SimConfig};
use pim_core::{SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    pim_bench::section("synthetic traffic characterization (100 chiplets, 4 KB/flow)");
    println!(
        "{:<11} {:<8} {:>10} {:>12} {:>12}",
        "pattern", "arch", "avg hops", "makespan", "energy(pJ)"
    );
    for pattern in netsim::all_patterns() {
        for p in runner.platforms() {
            let flows = generate_pattern(p.topology(), pattern, 4096, 7);
            let ana = analyze_with_table(p.topology(), &cfg.hw, &flows, p.route_table());
            let des = simulate_with_table(
                p.topology(),
                &cfg.hw,
                &flows,
                &SimConfig::default(),
                p.route_table(),
            );
            println!(
                "{:<11} {:<8} {:>10.2} {:>12} {:>12.3e}",
                pattern.to_string(),
                p.arch_name(),
                ana.mean_weighted_hops,
                des.makespan_cycles,
                ana.total_energy_pj
            );
        }
    }
    pim_bench::section("pipeline traffic along each architecture's own mapping order");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "arch", "avg hops", "makespan", "energy(pJ)"
    );
    for p in runner.platforms() {
        // Floret streams along its curve; the others along id (row-major)
        // order — each architecture's natural dataflow mapping.
        let order: Vec<topology::NodeId> = match p.layout() {
            Some(layout) => layout.global_order(),
            None => (0..p.topology().node_count() as u32)
                .map(topology::NodeId)
                .collect(),
        };
        let flows = netsim::generate_pipeline(&order, 4096);
        let ana = analyze_with_table(p.topology(), &cfg.hw, &flows, p.route_table());
        let des = simulate_with_table(
            p.topology(),
            &cfg.hw,
            &flows,
            &SimConfig::default(),
            p.route_table(),
        );
        println!(
            "{:<8} {:>10.2} {:>12} {:>12.3e}",
            p.arch_name(),
            ana.mean_weighted_hops,
            des.makespan_cycles,
            ana.total_energy_pj
        );
    }
    println!("\nMapped along its own curve, Floret's pipeline is pure single-hop — the");
    println!("dataflow-aware premise. Random/complement traffic is where low-bisection");
    println!("chains pay, which is why Floret is a co-design of topology AND mapping.");
}

//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run serving` (the multi-tenant fleet serving sweep).
//! Extra flags pass through: `serving --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("serving"));
}

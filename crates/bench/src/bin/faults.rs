//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run faults` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `faults --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("faults"));
}

//! Fault-injection ablation: dead chiplets force the SFC mapping to
//! re-stitch around them. Sweeps the fault count on the Floret NoI and
//! reports how the mapping quality degrades (DESIGN.md stretch item).
//! The independent fault points fan across the sweep engine's workers.

use pim_core::{parallel_map, NoiArch, SweepRunner, SystemConfig};
use topology::NodeId;

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    let platform = runner.platform(&NoiArch::Floret { lambda: 6 });
    let wl = dnn::table2_workload("WL1").expect("WL1");

    pim_bench::section("fault injection on Floret (WL1): SFC re-stitching");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>10}",
        "faults", "mapped", "failed", "mean hops", "departures"
    );
    let fault_counts = [0usize, 2, 5, 10, 15, 20, 30];
    let rows = parallel_map(&fault_counts, runner.threads(), |&n_faults| {
        // Deterministic fault pattern: every k-th chiplet of the grid.
        let failed: Vec<NodeId> = (0..n_faults)
            .map(|i| NodeId(((i * 37 + 13) % 100) as u32))
            .collect();
        let outcome = platform.map_workload_churn_with_faults(&wl, &failed);
        let (hops, _) = platform.degraded_hops(&wl, &failed);
        (
            n_faults,
            outcome.placements.len(),
            outcome.failed.len(),
            hops,
            outcome.departures,
        )
    });
    for (n_faults, mapped, failed, hops, departures) in rows {
        println!("{n_faults:>7} {mapped:>12} {failed:>12} {hops:>10.2} {departures:>10}");
    }
    println!("\nThe curve re-stitches over dead chiplets: hop counts grow gracefully");
    println!("with the fault count and every task still completes (no task loss until");
    println!("capacity itself is exhausted).");
}

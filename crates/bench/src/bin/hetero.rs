//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run hetero` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `hetero --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("hetero"));
}

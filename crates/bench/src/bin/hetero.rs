//! Section IV design-space study: all-PIM vs all-digital vs the paper's
//! heterogeneous PIM + digital platform for BERT inference.

use pim_core::hetero::{transformer_design_points, HeteroConfig};

fn main() {
    for (name, bert, seq) in [
        ("BERT-Tiny", dnn::BertConfig::tiny(), 128u32),
        ("BERT-Base", dnn::BertConfig::base(), 512u32),
    ] {
        let cfg = HeteroConfig {
            bert,
            seq,
            ..HeteroConfig::default()
        };
        pim_bench::section(&format!("{name} @ seq={seq}: platform design points"));
        println!(
            "{:<14} {:>12} {:>12} {:>6} {:>6} {:>14} {:>14}",
            "platform", "latency(ns)", "energy(pJ)", "PIM", "dig", "writes/inf", "lifetime(inf)"
        );
        for eval in transformer_design_points(&cfg) {
            let lifetime = if eval.lifetime_inferences == u64::MAX {
                "unlimited".to_string()
            } else {
                format!("{:.1e}", eval.lifetime_inferences as f64)
            };
            println!(
                "{:<14} {:>12.3e} {:>12.3e} {:>6} {:>6} {:>14} {:>14}",
                eval.platform.to_string(),
                eval.latency_ns,
                eval.energy_pj,
                eval.pim_chiplets,
                eval.digital_chiplets,
                eval.crossbar_writes,
                lifetime
            );
        }
    }
    println!("\nAll-PIM dies on ReRAM endurance within ~1e6 inferences; all-digital pays");
    println!("3-4x the energy on the static kernels. The heterogeneous platform keeps the");
    println!("SFC PIM macro for FF/projections and splices digital chiplets in for");
    println!("attention — the Section IV proposal, quantified.");
}

//! Regenerates the Section II fabrication-cost comparison (Eqs. 2-5;
//! paper: Floret 2.8x/2.1x/1.89x cheaper than Kite/SIAM/SWAP).

use pim_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    pim_bench::section("Section II cost analysis (Eq. 2-5, AMD 864mm2/64-chiplet reference)");
    println!(
        "{:<8} {:>11} {:>14} {:>16}",
        "arch", "area(mm2)", "rel. cost", "ratio vs Floret"
    );
    for r in pim_core::experiments::cost_rows(&cfg) {
        println!(
            "{:<8} {:>11.1} {:>14.3} {:>16}",
            r.arch,
            r.noi_area_mm2,
            r.relative_cost,
            pim_bench::ratio(r.ratio_vs_floret)
        );
    }
}

//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run cost` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `cost --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("cost"));
}

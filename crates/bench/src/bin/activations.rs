//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run activations` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `activations --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("activations"));
}

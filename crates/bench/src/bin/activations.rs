//! Regenerates the Section II activation analysis: linear vs skip traffic
//! in residual networks (paper: ResNet-34 linear = 4.5x skip, skip ~19%).

fn main() {
    pim_bench::section("Section II: linear vs skip activation traffic (ImageNet)");
    println!(
        "{:<11} {:>14} {:>12} {:>13} {:>11}",
        "model", "linear(elems)", "skip(elems)", "linear/skip", "skip share"
    );
    for r in pim_core::experiments::activation_rows() {
        println!(
            "{:<11} {:>14} {:>12} {:>13.2} {:>10.1}%",
            r.model,
            r.sequential,
            r.skip,
            r.linear_over_skip,
            r.skip_fraction * 100.0
        );
    }
    println!("\nPaper (ResNet-34): linear 4.5x skip; skips ~19% of propagated activations.");
}

//! Ablation: the Kite family's skip links. More skips shorten paths but
//! grow router radix — structure, area and uniform-traffic latency sweep.

use netsim::{analyze, generate_pattern, TrafficPattern};
use topology::{kite, kite_with_skips, HwParams};

fn main() {
    let hw = HwParams::default();
    pim_bench::section("Kite skip-link sweep (10x10): structure, area, uniform traffic");
    println!(
        "{:>7} {:>7} {:>9} {:>11} {:>10} {:>12}",
        "skips", "links", "max ports", "area(mm2)", "avg hops", "energy(pJ)"
    );
    let base = kite(10, 10).expect("kite builds");
    for skips in [0usize, 4, 8, 16, 32] {
        let topo = if skips == 0 {
            base.clone()
        } else {
            kite_with_skips(10, 10, skips, 7).expect("kite variant builds")
        };
        let max_ports = topo
            .nodes()
            .iter()
            .map(|n| topo.ports(n.id))
            .max()
            .unwrap_or(0);
        let flows = generate_pattern(&topo, TrafficPattern::UniformRandom, 4096, 11);
        let ana = analyze(&topo, &hw, &flows);
        println!(
            "{:>7} {:>7} {:>9} {:>11.1} {:>10.2} {:>12.3e}",
            skips,
            topo.link_count(),
            max_ports,
            hw.noi_area_mm2(&topo),
            ana.mean_weighted_hops,
            ana.total_energy_pj
        );
    }
    println!("\nSkips trade area (bigger routers, more wire) for shorter random-traffic");
    println!("paths — the Kite family's design space. For DNN pipeline traffic the skips");
    println!("are dead weight, which is the paper's core argument against them.");
}

//! Dumps every experiment result as JSON to stdout (for external
//! plotting). Runs the fast experiments in full and the 3D optimization
//! with the default budget. The 2.5D artifacts share one `SweepRunner`,
//! so the four platforms are built exactly once for the whole dump.

use pim_core::{experiments, SweepRunner, SystemConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Dump {
    table1: Vec<experiments::Table1Row>,
    table2: Vec<experiments::Table2Row>,
    fig2: Vec<topology::TopologySummary>,
    fig345: Vec<pim_core::WorkloadReport>,
    cost: Vec<experiments::CostRow>,
    fig6: Vec<experiments::Fig6Row>,
    fig7: experiments::Fig7Maps,
    transformer: Vec<(String, Vec<dnn::StorageRow>)>,
    activations: Vec<experiments::ActivationRow>,
}

fn main() {
    let cfg25 = SystemConfig::datacenter_25d();
    let cfg3d = SystemConfig::stacked_3d();
    let runner = SweepRunner::new(&cfg25).expect("paper architectures build");
    let sa = experiments::joint_sa_config();
    let dump = Dump {
        table1: experiments::table1_rows(),
        table2: experiments::table2_rows(),
        fig2: runner.fig2_summaries(),
        fig345: runner.fig345_sweep(),
        cost: experiments::cost_rows_on(&runner),
        fig6: experiments::fig6_rows(&cfg3d, &sa),
        fig7: experiments::fig7_maps(&cfg3d, &sa),
        transformer: experiments::transformer_rows(),
        activations: experiments::activation_rows(),
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&dump).expect("serializable")
    );
}

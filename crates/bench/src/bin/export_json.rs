//! Deprecated shim: forwards to `pim-bench run all --format json`,
//! which supersedes this binary (uniform structured output per
//! experiment instead of the old ad-hoc dump shape).

fn main() {
    std::process::exit(pim_bench::cli::export_json_shim());
}

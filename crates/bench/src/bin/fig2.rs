//! Regenerates Fig. 2: router-port configuration (a) and total link
//! counts (b) for Kite, SIAM, SWAP and Floret at 100 chiplets.

use pim_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let rows = pim_core::experiments::fig2_summaries(&cfg);

    pim_bench::section("Fig. 2(a): router-port histogram (ports -> routers)");
    for r in &rows {
        let hist: Vec<String> = r
            .port_histogram
            .iter()
            .map(|(p, c)| format!("{p}p:{c}"))
            .collect();
        println!("{:<22} {}", r.name, hist.join("  "));
    }

    pim_bench::section("Fig. 2(b): links and wiring");
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>9} {:>10}",
        "arch", "links", "wire(hops)", "area(mm2)", "avg hops", "bisection"
    );
    for r in &rows {
        println!(
            "{:<22} {:>6} {:>10} {:>10.1} {:>9.2} {:>10}",
            r.name, r.links, r.total_wire_hops, r.noi_area_mm2, r.avg_hops, r.bisection_links
        );
    }

    pim_bench::section("link-length histogram (hops -> links)");
    for r in &rows {
        let hist: Vec<String> = r
            .link_length_histogram
            .iter()
            .map(|(l, c)| format!("{l}h:{c}"))
            .collect();
        println!("{:<22} {}", r.name, hist.join("  "));
    }
}

//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run table1` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `table1 --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("table1"));
}

//! Regenerates Table I: the thirteen DNN workloads and their trainable
//! parameter counts (paper-printed vs computed from real architectures).

fn main() {
    pim_bench::section("Table I: DNN inference workloads, trainable parameters");
    println!(
        "{:<5} {:<12} {:<9} {:>10} {:>12}",
        "id", "model", "dataset", "paper (M)", "computed (M)"
    );
    for r in pim_core::experiments::table1_rows() {
        println!(
            "{:<5} {:<12} {:<9} {:>10.2} {:>12.2}",
            r.id, r.model, r.dataset, r.paper_params_m, r.computed_params_m
        );
    }
    println!("\nNote: several printed values are inconsistent with the standard");
    println!("architectures (see EXPERIMENTS.md); the CIFAR-10 rows match within 6%.");
}

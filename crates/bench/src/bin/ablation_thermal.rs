//! Ablation: M3D vs TSV vertical conduction (Section I claims M3D
//! dissipates heat better) and the lateral-spreading sensitivity of the
//! Fig. 6/7 results.

use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
use pim_core::{Platform3D, SystemConfig};
use thermal::ThermalConfig;

fn main() {
    let net = build_model(ModelKind::ResNet34, Dataset::Cifar10).expect("resnet34");
    let sg = SegmentGraph::from_layer_graph(&net);

    pim_bench::section("M3D vs TSV: same workload, same SFC placement");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "stack", "peak(K)", "mean(K)", "hotspots", "acc drop"
    );
    for (name, thermal) in [("M3D", ThermalConfig::m3d()), ("TSV", ThermalConfig::tsv())] {
        let cfg = SystemConfig {
            thermal,
            ..SystemConfig::stacked_3d()
        };
        let platform = Platform3D::new(&cfg).expect("3d platform");
        let eval = platform.evaluate(&sg, &platform.sfc_order()).expect("fits");
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10} {:>11.1}%",
            name,
            eval.peak_k,
            eval.mean_k,
            eval.hotspots,
            eval.accuracy_drop * 100.0
        );
    }
    println!("\nM3D's thin inter-layer dielectric conducts heat to the sink far better");
    println!("than TSV bonding layers (Section I), so the same mapping runs cooler.");

    pim_bench::section("vertical-conductance sweep (W/K) on the SFC placement");
    println!("{:>8} {:>10} {:>12}", "g_vert", "peak(K)", "acc drop");
    for g in [0.3, 0.6, 1.0, 2.0, 4.0] {
        let cfg = SystemConfig {
            thermal: ThermalConfig {
                g_vertical: g,
                ..ThermalConfig::m3d()
            },
            ..SystemConfig::stacked_3d()
        };
        let platform = Platform3D::new(&cfg).expect("3d platform");
        let eval = platform.evaluate(&sg, &platform.sfc_order()).expect("fits");
        println!(
            "{:>8.1} {:>10.1} {:>11.1}%",
            g,
            eval.peak_k,
            eval.accuracy_drop * 100.0
        );
    }
}

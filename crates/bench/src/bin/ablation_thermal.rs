//! Thin shim: delegates to the experiment registry, identical to
//! `pim-bench run ablation_thermal` (kept so existing README/CI invocations keep
//! working). Extra flags pass through: `ablation_thermal --format json` works.

fn main() {
    std::process::exit(pim_bench::cli::shim("ablation_thermal"));
}

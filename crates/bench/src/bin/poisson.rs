//! Datacenter service-model ablation: Poisson arrivals with exponential
//! service times on the four NoIs, sweeping offered load. Reports
//! time-weighted utilization, admission waits and resident task counts.
//! Platforms come from the shared `SweepRunner` cache (built once, not
//! per load point).

use mapper::{run_poisson, ArrivalConfig, GreedyConfig, Strategy};
use pim_core::{Platform25D, SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    let wl = dnn::table2_workload("WL3").expect("WL3: the largest mix");
    let graphs = Platform25D::task_graphs(&wl);

    pim_bench::section("Poisson arrivals, WL3 task population (52 DNNs)");
    println!(
        "{:<8} {:>6} {:>12} {:>11} {:>12} {:>9}",
        "arch", "load", "utilization", "mean wait", "mean tasks", "failed"
    );
    for mean_interarrival in [2.0, 1.0, 0.5] {
        let arr = ArrivalConfig {
            mean_interarrival,
            mean_service: 8.0,
            seed: 0xA221,
        };
        for platform in runner.platforms() {
            let strategy = match platform.layout() {
                Some(layout) => Strategy::sfc(layout),
                None => Strategy::greedy(platform.topology(), GreedyConfig::soft()),
            };
            let out = run_poisson(
                &graphs,
                cfg.node_count(),
                cfg.node_capacity(),
                &strategy,
                &arr,
            );
            println!(
                "{:<8} {:>6.1} {:>12.2} {:>11.2} {:>12.1} {:>9}",
                platform.arch_name(),
                8.0 / mean_interarrival,
                out.utilization,
                out.mean_wait,
                out.mean_resident,
                out.failed.len()
            );
        }
    }
    println!("\nHigher offered load raises utilization and admission waits; the SFC");
    println!("mapping sustains the same load with contiguous placements throughout.");
}

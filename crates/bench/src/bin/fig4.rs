//! Regenerates Fig. 4: chiplet resource utilization under the
//! hard-contiguity admission model (SWAP strands unmapped chiplets).

use pim_core::{NoiArch, Platform25D, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    pim_bench::section("Fig. 4: chiplet utilization (wave admission, radius-2 contiguity)");
    println!(
        "{:<5} {:<8} {:>7} {:>9} {:>8}",
        "mix", "arch", "waves", "mean util", "failed"
    );
    for wl_name in ["WL1", "WL2", "WL3", "WL4", "WL5"] {
        let wl = dnn::table2_workload(wl_name).expect("table workload");
        for arch in NoiArch::all() {
            let p = Platform25D::new(arch, &cfg).expect("arch builds");
            let out = p.map_workload(&wl);
            println!(
                "{:<5} {:<8} {:>7} {:>9.2} {:>8}",
                wl_name,
                p.arch_name(),
                out.waves.len(),
                out.mean_utilization(),
                out.failed.len()
            );
        }
    }
    println!("\nPaper: greedy mapping on SWAP leaves many unmapped (NM) chiplets;");
    println!("Floret's SFC mapping keeps utilization high.");
}

//! Regenerates Fig. 4: chiplet resource utilization under the
//! hard-contiguity admission model (SWAP strands unmapped chiplets).
//! The (mix, arch) admission grid runs on the shared `SweepRunner`
//! platforms, fanned across worker threads.

use pim_core::{parallel_map, Platform25D, SweepRunner, SystemConfig};

fn main() {
    let cfg = SystemConfig::datacenter_25d();
    let runner = SweepRunner::new(&cfg).expect("paper architectures build");
    pim_bench::section("Fig. 4: chiplet utilization (wave admission, radius-2 contiguity)");
    println!(
        "{:<5} {:<8} {:>7} {:>9} {:>8}",
        "mix", "arch", "waves", "mean util", "failed"
    );
    let workloads: Vec<dnn::Workload> = ["WL1", "WL2", "WL3", "WL4", "WL5"]
        .into_iter()
        .map(|n| dnn::table2_workload(n).expect("table workload"))
        .collect();
    let cells: Vec<(&dnn::Workload, &Platform25D)> = workloads
        .iter()
        .flat_map(|wl| runner.platforms().iter().map(move |p| (wl, p)))
        .collect();
    let outcomes = parallel_map(&cells, runner.threads(), |&(wl, p)| p.map_workload(wl));
    for ((wl, p), out) in cells.iter().zip(&outcomes) {
        println!(
            "{:<5} {:<8} {:>7} {:>9.2} {:>8}",
            wl.name,
            p.arch_name(),
            out.waves.len(),
            out.mean_utilization(),
            out.failed.len()
        );
    }
    println!("\nPaper: greedy mapping on SWAP leaves many unmapped (NM) chiplets;");
    println!("Floret's SFC mapping keeps utilization high.");
}

//! The `pim-bench` command-line interface: one CLI over the central
//! experiment registry, replacing twenty hand-rolled binaries.
//!
//! ```text
//! pim-bench list
//! pim-bench describe <name>
//! pim-bench run <name>... | all
//!     [--format table|json|csv] [--out <path>]
//!     [--threads N] [--seed N] [--set key=value]...
//!     [--arch <name>]... [--workload <WLn>]... [--dataflow <WS|OS|IS|FL|searched>]...
//!     [--strategy sfc|greedy]
//! pim-bench perf [--quick] [--out <path>] [--max-seconds N] [--gate <baseline.json>]
//! ```
//!
//! `run` builds one declarative [`Scenario`] from the flags, resolves it
//! once, and executes every requested experiment against a shared
//! [`pim_core::RunContext`] — so `run all` constructs the four 2.5D
//! platforms exactly once. The legacy per-figure binaries are thin
//! shims over [`shim`].

use std::fmt;

use dnn::Dataflow;
use mapper::StrategyKind;
use pim_core::{experiments, NoiArch, Scenario, ScenarioError};

use crate::output::{render, Format};

/// The `--help` text.
pub const USAGE: &str = "\
pim-bench — declarative experiment runner for the DATE 2024 reproduction

USAGE:
    pim-bench list                      list every registered experiment
    pim-bench describe <name>           show one experiment and its default scenario
    pim-bench run <name>... | all       run experiments (shared platforms)
    pim-bench perf                      time every experiment, write BENCH JSON

PERF OPTIONS:
    --quick                   CI scenario: WL1 only (full Table II otherwise)
    --out <path>              where to write the JSON (default: BENCH_10.json)
    --max-seconds <N>         fail (exit 1) if the optimized run-all exceeds N s
    --gate <baseline.json>    fail (exit 1) on >25% regression in the
                              fig3/dataflows/mapping_search cells vs the committed baseline

RUN OPTIONS:
    --format table|json|csv   output format (default: table)
    --out <path>              write the rendered output to a file instead of stdout
    --threads <N>             worker threads (results are identical for any N)
    --seed <N>                override the stochastic components' seeds
    --set <key=value>         SystemConfig override (repeatable; validated);
                              `faults.*` keys configure the resilience fault model
                              (e.g. faults.chip_mtbf_ms=20 faults.max_retries=5)
    --arch <name>             architecture subset: Floret, SIAM, Kite, SWAP (repeatable)
    --workload <WLn>          Table II mix subset (repeatable)
    --dataflow <mode>         dataflow subset: WS, OS, IS, FL, searched (repeatable)
    --strategy sfc|greedy     force the mapping strategy (default: per-arch paper choice)

EXAMPLES:
    pim-bench run fig3
    pim-bench run serving                  # multi-tenant fleet serving sweep
    pim-bench run resilience               # serving under a seeded fault plan
    pim-bench run resilience --set faults.chip_mtbf_ms=10 --set faults.timeout_ms=16
    pim-bench run dataflows --workload WL1 --dataflow WS --dataflow FL
    pim-bench run mapping_search --workload WL3   # searched loop nests vs the hand modes
    pim-bench run table1 fig3 --format json --out results.json
    pim-bench run all --format json        # supersedes the export_json binary
    pim-bench run fig5 --set sim_sampling=32 --set batch=4 --threads 1
    pim-bench run poisson --strategy greedy
    pim-bench perf --quick --max-seconds 300 --gate BENCH_10_quick.json";

/// A CLI failure, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (exit 2): unknown flag, missing value, bad format.
    Usage(String),
    /// Scenario resolution or experiment failure (exit 1).
    Run(ScenarioError),
    /// `--out` file could not be written (exit 1).
    Io(String),
    /// `pim-bench perf --max-seconds` ceiling exceeded (exit 1).
    Perf(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Perf(m) => f.write_str(m),
            CliError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `pim-bench list`
    List,
    /// `pim-bench describe <name>`
    Describe(String),
    /// `pim-bench run <names...> [flags]`
    Run {
        /// Requested experiment names (`all` already expanded).
        names: Vec<String>,
        /// The declarative scenario built from the flags (boxed: the
        /// serving block makes it by far the largest variant payload).
        scenario: Box<Scenario>,
        /// Output format.
        format: Format,
        /// Optional output file.
        out: Option<String>,
    },
    /// `pim-bench perf [--quick] [--out <path>] [--max-seconds N]
    /// [--gate <baseline.json>]`
    Perf {
        /// Use the reduced CI scenario (WL1 only).
        quick: bool,
        /// Where to write the JSON report.
        out: String,
        /// Optional hard ceiling on the optimized run-all wall time.
        max_seconds: Option<f64>,
        /// Committed `BENCH_*.json` to gate the fig3/dataflows/
        /// mapping_search cells against (>25% regression fails).
        gate: Option<String>,
    },
    /// `pim-bench help` / `--help`
    Help,
}

/// Parses CLI arguments (without the program name).
///
/// # Errors
///
/// [`CliError::Usage`] with a message naming the offending argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let usage = |m: String| CliError::Usage(m);
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "describe" => {
            let name = args
                .get(1)
                .ok_or_else(|| usage("describe: missing experiment name".into()))?;
            Ok(Command::Describe(name.clone()))
        }
        "perf" => {
            let mut quick = false;
            let mut out = "BENCH_10.json".to_string();
            let mut max_seconds = None;
            let mut gate = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut value_of = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(format!("{flag}: missing value")))
                };
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => out = value_of("--out")?,
                    "--max-seconds" => {
                        let v = value_of("--max-seconds")?;
                        max_seconds =
                            Some(v.parse::<f64>().map_err(|_| {
                                usage(format!("--max-seconds: invalid number `{v}`"))
                            })?);
                    }
                    "--gate" => gate = Some(value_of("--gate")?),
                    flag => return Err(usage(format!("perf: unknown flag `{flag}`"))),
                }
            }
            Ok(Command::Perf {
                quick,
                out,
                max_seconds,
                gate,
            })
        }
        "run" => {
            let mut names: Vec<String> = Vec::new();
            let mut scenario = Scenario::new("");
            let mut format = Format::Table;
            let mut out = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut value_of = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(format!("{flag}: missing value")))
                };
                match arg.as_str() {
                    "--format" => {
                        format = value_of("--format")?.parse().map_err(usage)?;
                    }
                    "--out" => out = Some(value_of("--out")?),
                    "--threads" => {
                        let v = value_of("--threads")?;
                        scenario.threads = Some(
                            v.parse()
                                .map_err(|_| usage(format!("--threads: invalid count `{v}`")))?,
                        );
                    }
                    "--seed" => {
                        let v = value_of("--seed")?;
                        scenario.seed = Some(
                            v.parse()
                                .map_err(|_| usage(format!("--seed: invalid seed `{v}`")))?,
                        );
                    }
                    "--set" => {
                        let v = value_of("--set")?;
                        let (key, value) = v.split_once('=').ok_or_else(|| {
                            usage(format!("--set: expected key=value, got `{v}`"))
                        })?;
                        scenario
                            .overrides
                            .push((key.to_string(), value.to_string()));
                    }
                    "--arch" => {
                        let v = value_of("--arch")?;
                        scenario.archs.push(v.parse::<NoiArch>().map_err(usage)?);
                    }
                    "--workload" => scenario.workloads.push(value_of("--workload")?),
                    "--strategy" => {
                        let v = value_of("--strategy")?;
                        scenario.strategy = Some(v.parse::<StrategyKind>().map_err(usage)?);
                    }
                    "--dataflow" => {
                        let v = value_of("--dataflow")?;
                        scenario.dataflows.push(
                            v.parse::<Dataflow>()
                                .map_err(|_| usage(format!("--dataflow: unknown mode `{v}`")))?,
                        );
                    }
                    flag if flag.starts_with('-') => {
                        return Err(usage(format!("run: unknown flag `{flag}`")));
                    }
                    name => names.push(name.to_string()),
                }
            }
            if names.is_empty() {
                return Err(usage("run: missing experiment name (or `all`)".into()));
            }
            if names.iter().any(|n| n == "all") {
                names = experiments::registry()
                    .names()
                    .iter()
                    .map(ToString::to_string)
                    .collect();
            }
            scenario.experiment.clone_from(&names[0]);
            Ok(Command::Run {
                names,
                scenario: Box::new(scenario),
                format,
                out,
            })
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

/// Executes a parsed command, returning the text to print on stdout.
///
/// # Errors
///
/// [`CliError::Run`] for unknown experiments or failed scenarios,
/// [`CliError::Io`] when `--out` cannot be written.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let registry = experiments::registry();
    match cmd {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::List => {
            let mut out = String::new();
            for spec in registry.specs() {
                out.push_str(&format!("{:<18} {}\n", spec.name, spec.description));
            }
            Ok(out)
        }
        Command::Describe(name) => {
            let spec = registry
                .get(name)
                .ok_or_else(|| CliError::Run(ScenarioError::UnknownExperiment(name.clone())))?;
            let resolved = Scenario::new(spec.name).resolve().map_err(CliError::Run)?;
            let archs: Vec<&str> = resolved.archs.iter().map(NoiArch::name).collect();
            let dataflows: Vec<&str> = resolved.dataflows.iter().map(|d| d.name()).collect();
            Ok(format!(
                "{}\n    {}\n\ndefault scenario:\n    archs:     {}\n    workloads: {}\n    \
                 dataflows: {}\n    threads:   {}\n    seed:      paper defaults\n\nspec (JSON):\n{}\n",
                spec.name,
                spec.description,
                archs.join(", "),
                resolved.workloads.join(", "),
                dataflows.join(", "),
                resolved.threads,
                serde_json::to_string_pretty(&Scenario::new(spec.name)).expect("serializable"),
            ))
        }
        Command::Perf {
            quick,
            out,
            max_seconds,
            gate,
        } => {
            let report = crate::perf::run(*quick).map_err(CliError::Run)?;
            std::fs::write(out, report.to_json())
                .map_err(|e| CliError::Io(format!("--out {out}: {e}")))?;
            let mut text = format!("{}wrote perf report to {out}\n", report.summary());
            if let Some(baseline_path) = gate {
                let baseline = std::fs::read_to_string(baseline_path)
                    .map_err(|e| CliError::Io(format!("--gate {baseline_path}: {e}")))?;
                match report.gate_against(&baseline) {
                    Ok(summary) => text.push_str(&summary),
                    Err(failure) => return Err(CliError::Perf(format!("{failure}\n{text}"))),
                }
            }
            if let Some(max) = *max_seconds {
                let took = report.run_all.optimized_ms / 1e3;
                if took > max {
                    return Err(CliError::Perf(format!(
                        "perf: optimized run-all took {took:.1} s, over the {max:.1} s ceiling\n{text}"
                    )));
                }
            }
            Ok(text)
        }
        Command::Run {
            names,
            scenario,
            format,
            out,
        } => {
            // Fail fast on unknown names before any platform is built.
            for name in names {
                if registry.get(name).is_none() {
                    return Err(CliError::Run(ScenarioError::UnknownExperiment(
                        name.clone(),
                    )));
                }
            }
            let resolved = scenario.resolve().map_err(CliError::Run)?;
            let ctx = pim_core::RunContext::new(resolved);
            let mut outputs = Vec::with_capacity(names.len());
            for name in names {
                outputs.push(registry.run(&ctx, name).map_err(CliError::Run)?);
            }
            let rendered = render(&outputs, *format);
            match out {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| CliError::Io(format!("--out {path}: {e}")))?;
                    Ok(format!("wrote {} experiment(s) to {path}\n", outputs.len()))
                }
                None => Ok(rendered),
            }
        }
    }
}

/// Full CLI entry point: parses, executes, prints, returns the exit
/// code (0 ok, 1 run failure, 2 usage).
pub fn run_from<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let args: Vec<String> = args.into_iter().collect();
    let cmd = match parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("pim-bench: {e}\n\n{USAGE}");
            return 2;
        }
    };
    match execute(&cmd) {
        Ok(text) => {
            print!("{text}");
            0
        }
        Err(e @ CliError::Usage(_)) => {
            eprintln!("pim-bench: {e}\n\n{USAGE}");
            2
        }
        Err(e) => {
            eprintln!("pim-bench: {e}");
            1
        }
    }
}

/// Entry point for the thin per-figure binary shims: runs
/// `pim-bench run <experiment>` with any extra command-line flags
/// passed through (`fig3 --format json` works).
pub fn shim(experiment: &str) -> i32 {
    let mut args: Vec<String> = vec!["run".to_string(), experiment.to_string()];
    args.extend(std::env::args().skip(1));
    run_from(args)
}

/// Entry point for the deprecated `export_json` binary: forwards to
/// `pim-bench run all --format json` and tells the user about the new
/// command on stderr.
pub fn export_json_shim() -> i32 {
    eprintln!(
        "export_json is deprecated; forwarding to `pim-bench run all --format json` \
         (note: the JSON shape is now a uniform array of experiment outputs)."
    );
    run_from(
        ["run", "all", "--format", "json"]
            .into_iter()
            .map(String::from),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_run_with_every_flag() {
        let cmd = parse(&argv(&[
            "run",
            "dataflows",
            "--format",
            "json",
            "--threads",
            "2",
            "--seed",
            "9",
            "--set",
            "batch=4",
            "--arch",
            "floret",
            "--workload",
            "WL1",
            "--dataflow",
            "FL",
            "--strategy",
            "greedy",
            "--out",
            "/tmp/x.json",
        ]))
        .unwrap();
        let Command::Run {
            names,
            scenario,
            format,
            out,
        } = cmd
        else {
            panic!("expected run");
        };
        assert_eq!(names, vec!["dataflows"]);
        assert_eq!(format, Format::Json);
        assert_eq!(out.as_deref(), Some("/tmp/x.json"));
        assert_eq!(scenario.threads, Some(2));
        assert_eq!(scenario.seed, Some(9));
        assert_eq!(scenario.overrides, vec![("batch".into(), "4".into())]);
        assert_eq!(scenario.archs, vec![NoiArch::Floret { lambda: 6 }]);
        assert_eq!(scenario.workloads, vec!["WL1"]);
        assert_eq!(scenario.dataflows, vec![Dataflow::FusedLayer]);
        assert_eq!(scenario.strategy, Some(StrategyKind::Greedy));
    }

    #[test]
    fn searched_dataflow_parses_at_the_cli() {
        let Command::Run { scenario, .. } =
            parse(&argv(&["run", "dataflows", "--dataflow", "searched"])).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(scenario.dataflows, vec![Dataflow::Searched]);
        let err = parse(&argv(&["run", "dataflows", "--dataflow", "rowwise"])).unwrap_err();
        let CliError::Usage(msg) = err else {
            panic!("expected usage error");
        };
        assert!(msg.contains("rowwise"), "{msg}");
    }

    #[test]
    fn run_all_expands_to_the_registry() {
        let Command::Run { names, .. } = parse(&argv(&["run", "all"])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(names.len(), experiments::registry().specs().len());
        assert!(names.contains(&"fig7".to_string()));
    }

    #[test]
    fn usage_errors_name_the_problem() {
        for (args, needle) in [
            (vec!["run"], "missing experiment"),
            (vec!["run", "fig3", "--format", "yaml"], "yaml"),
            (vec!["run", "fig3", "--set", "batch4"], "key=value"),
            (vec!["run", "fig3", "--bogus"], "--bogus"),
            (vec!["frobnicate"], "frobnicate"),
            (vec!["run", "fig3", "--arch", "torus"], "torus"),
            (vec!["run", "poisson", "--strategy", "fast"], "fast"),
        ] {
            let err = parse(&argv(&args)).unwrap_err();
            let CliError::Usage(msg) = err else {
                panic!("{args:?}: expected usage error");
            };
            assert!(msg.contains(needle), "{args:?}: {msg}");
        }
    }

    #[test]
    fn list_covers_the_registry_and_help_prints_usage() {
        let listing = execute(&Command::List).unwrap();
        for spec in experiments::registry().specs() {
            assert!(listing.contains(spec.name), "missing {}", spec.name);
        }
        assert!(execute(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn describe_shows_the_default_scenario() {
        let text = execute(&Command::Describe("fig3".into())).unwrap();
        assert!(text.contains("fig3"), "{text}");
        assert!(text.contains("Kite, SIAM, SWAP, Floret"), "{text}");
        assert!(text.contains("\"experiment\": \"fig3\""), "{text}");
        assert!(matches!(
            execute(&Command::Describe("fig99".into())),
            Err(CliError::Run(ScenarioError::UnknownExperiment(_)))
        ));
    }

    #[test]
    fn run_rejects_unknown_experiments_before_building_platforms() {
        let cmd = parse(&argv(&["run", "fig99"])).unwrap();
        assert!(matches!(
            execute(&cmd),
            Err(CliError::Run(ScenarioError::UnknownExperiment(_)))
        ));
    }

    #[test]
    fn run_table1_renders_all_formats() {
        for (fmt, needle) in [
            ("table", "Table I"),
            ("json", "\"experiment\": \"table1\""),
            ("csv", "# experiment: table1"),
        ] {
            let cmd = parse(&argv(&["run", "table1", "--format", fmt])).unwrap();
            let text = execute(&cmd).unwrap();
            assert!(text.contains(needle), "{fmt}: {text}");
        }
    }
}

//! The `pim-bench perf` harness: a machine-readable performance
//! trajectory for the repository.
//!
//! One invocation times every registered experiment twice in the same
//! process — once on the optimized path (shared [`pim_core::EvalCache`],
//! red-black SOR thermal solver) and once on the baseline path (cache
//! bypassed, the seed's reference Gauss-Seidel solver) — plus solver and
//! DES, serving and mapping-search micro-benchmarks, and writes the
//! result as JSON
//! (`BENCH_10.json` at the repo root is the committed baseline of this
//! PR). Future PRs
//! append `BENCH_<n>.json` files, giving every change a comparable,
//! scripted perf record instead of hand-waved claims.
//!
//! Sub-millisecond experiments are re-timed min-of-N (see
//! [`RETIME_BELOW_MS`]): BENCH_7 "showed" table1/fig4/hetero *slower*
//! optimized than baseline purely because a single sub-ms sample is
//! noise. One-shot timings are kept for the long cells, where a second
//! run would hit the warm cache and measure replay instead of work. An
//! untimed warm-up run precedes the first pass so one-time process
//! costs (page faults, allocator growth) land outside both clocks
//! instead of inside the first heavy experiment.
//!
//! `--quick` shrinks the workload axis to `WL1` for the CI perf lane;
//! `--max-seconds` turns the optimized `run all` wall time into a hard
//! ceiling (non-zero exit when exceeded); `--gate <baseline.json>`
//! compares the gate cells ([`GATE_EXPERIMENTS`]) against a committed
//! BENCH file and fails on a >25% speedup regression (see
//! [`PerfReport::gate_against`]).

use std::time::Instant;

use pim_core::{
    experiments, simulate_resilient_serving, simulate_serving, CacheStats, FaultPlan, FaultSpec,
    ResilienceParams, RunContext, Scenario, ScenarioError, ServingSpec,
};
use serde::Serialize;
use thermal::{solve_red_black, solve_reference, PowerMap, Solver, ThermalConfig};
use topology::{mesh2d, HwParams, NodeId};

/// Wall-clock timing of one registered experiment in one pass.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentTiming {
    /// Registry name.
    pub name: String,
    /// Optimized pass (cache + red-black solver), milliseconds.
    pub optimized_ms: f64,
    /// Baseline pass (no cache + reference solver), milliseconds.
    pub baseline_ms: f64,
    /// `baseline_ms / optimized_ms`.
    pub speedup: f64,
}

/// The `run all` aggregate of the two passes.
#[derive(Clone, Debug, Serialize)]
pub struct RunAllComparison {
    /// Wall time of the whole optimized pass, milliseconds — one clock
    /// around the full experiment loop, so registry dispatch and
    /// context overhead are included (it can slightly exceed the sum of
    /// `experiments[].optimized_ms`). This is the number `--max-seconds`
    /// gates on.
    pub optimized_ms: f64,
    /// Wall time of the whole baseline pass, milliseconds (same clock).
    pub baseline_ms: f64,
    /// `baseline_ms / optimized_ms`.
    pub speedup: f64,
}

/// Thermal-solver micro-benchmark on the paper's 5×5×4 grid.
#[derive(Clone, Debug, Serialize)]
pub struct SolverMicro {
    /// Grid dimensions.
    pub grid: (u16, u16, u16),
    /// Red-black SOR solve time, milliseconds (mean over repetitions).
    pub red_black_ms: f64,
    /// Reference Gauss-Seidel solve time, milliseconds.
    pub reference_ms: f64,
    /// `reference_ms / red_black_ms`.
    pub speedup: f64,
    /// Sweeps the red-black solver needed to converge.
    pub red_black_iterations: u32,
    /// Sweeps the reference solver needed.
    pub reference_iterations: u32,
}

/// DES scheduler micro-counters on a canonical 24-into-1 funnel burst.
#[derive(Clone, Debug, Serialize)]
pub struct DesMicro {
    /// Flows simulated.
    pub flows: usize,
    /// Packets delivered.
    pub packets: u64,
    /// Heap events the wait-queue scheduler processed (the PR-2
    /// efficiency counter; retry polling needed ≥ 2× more).
    pub heap_events: u64,
    /// Simulated makespan, cycles.
    pub makespan_cycles: u64,
    /// Cycles headers spent parked in channel wait queues.
    pub total_channel_wait_cycles: u64,
    /// Wall time of one simulation, milliseconds.
    pub simulate_ms: f64,
}

/// Serving-simulator micro-benchmark: a saturated multi-tenant stream
/// over a chip fleet, long enough that the calendar-queue event loop
/// processes upwards of a million events.
#[derive(Clone, Debug, Serialize)]
pub struct ServingMicro {
    /// Chips in the fleet.
    pub fleet: usize,
    /// Simulated horizon, milliseconds.
    pub horizon_ms: f64,
    /// Requests generated over the horizon.
    pub requests: u64,
    /// Calendar-queue events processed across the fleet.
    pub events: u64,
    /// Wall time of the whole sweep, milliseconds.
    pub simulate_ms: f64,
    /// Event-loop throughput, events per second.
    pub events_per_sec: f64,
}

/// Resilient-serving micro-benchmark: the same saturated fleet as
/// [`ServingMicro`] but driven through the fault-aware event loop under
/// a generated fault plan, counting the extra event classes (retries,
/// failovers, timeouts) next to raw event throughput.
#[derive(Clone, Debug, Serialize)]
pub struct FaultEventsMicro {
    /// Chips in the fleet.
    pub fleet: usize,
    /// Simulated horizon, milliseconds.
    pub horizon_ms: f64,
    /// Requests generated over the horizon.
    pub requests: u64,
    /// Calendar-queue events processed (arrivals, completions, windows,
    /// chip down/up edges, retry timers).
    pub events: u64,
    /// Chip down/up edges in the generated plan.
    pub chip_faults: usize,
    /// Retry attempts scheduled across the sweep.
    pub retries: u64,
    /// Requests re-homed off a failed chip.
    pub failovers: u64,
    /// Requests abandoned after exhausting retry budget or deadline.
    pub timed_out: u64,
    /// Wall time of the whole sweep, milliseconds.
    pub simulate_ms: f64,
    /// Event-loop throughput, events per second.
    pub events_per_sec: f64,
}

/// Mapping-search micro-benchmark: the deterministic beam search over
/// per-layer loop nests, timed across a slice of the model zoo.
#[derive(Clone, Debug, Serialize)]
pub struct MappingSearchMicro {
    /// Whole-model searches per repetition.
    pub models: usize,
    /// Timed repetitions.
    pub reps: u32,
    /// Candidate mappings costed in one repetition (pre-pruning).
    pub candidates_costed: u64,
    /// Wall time of all repetitions, milliseconds.
    pub search_ms: f64,
    /// Whole-model searches per second.
    pub searches_per_sec: f64,
    /// Candidate mappings costed per second.
    pub candidates_per_sec: f64,
}

/// Evaluation-cache counters of the optimized pass.
#[derive(Clone, Debug, Serialize)]
pub struct CacheSummary {
    /// Hits/misses accumulated across the optimized `run all`.
    pub stats: CacheStats,
    /// The engine's config fingerprint (cache key prefix).
    pub fingerprint: String,
}

/// The full perf record one `pim-bench perf` run writes.
#[derive(Clone, Debug, Serialize)]
pub struct PerfReport {
    /// Schema tag for downstream tooling.
    pub schema: &'static str,
    /// The PR number this baseline belongs to (`BENCH_10.json`).
    pub bench_pr: u32,
    /// Whether the quick (CI) scenario was used.
    pub quick: bool,
    /// Worker threads of the scenario.
    pub threads: usize,
    /// Per-experiment wall times, registry order.
    pub experiments: Vec<ExperimentTiming>,
    /// The `run all` cached-vs-baseline comparison.
    pub run_all: RunAllComparison,
    /// The thermal-bound experiments (solver-isolating comparison: the
    /// evaluation cache plays no part in them).
    pub thermal_experiments: Vec<ExperimentTiming>,
    /// Thermal-solver micro-benchmark.
    pub solver: SolverMicro,
    /// DES scheduler micro-counters.
    pub des: DesMicro,
    /// Serving event-loop micro-benchmark (calendar-queue throughput).
    pub serving: ServingMicro,
    /// Fault-aware serving micro-benchmark (retry/failover event load).
    pub fault_events: FaultEventsMicro,
    /// Mapping-search micro-benchmark (mappings searched per second).
    pub mapping_search: MappingSearchMicro,
    /// Evaluation-cache traffic of the optimized pass.
    pub cache: CacheSummary,
}

/// The experiments whose wall time is dominated by the thermal solver
/// (Platform3D evaluation loops); their baseline/optimized ratio
/// isolates the red-black SOR speedup.
const THERMAL_EXPERIMENTS: [&str; 4] = ["fig6", "fig7", "pareto", "ablation_thermal"];

/// The cells the CI perf gate watches: the three sweeps that dominate
/// `run all` wall time and exercise the mapper/DES hot path end to end.
pub const GATE_EXPERIMENTS: [&str; 3] = ["fig3", "dataflows", "mapping_search"];

/// Allowed regression factor in the gate cells (>25% fails).
pub const GATE_TOLERANCE: f64 = 1.25;

/// Experiments whose one-shot wall time lands under this are re-timed
/// min-of-N: a single sub-threshold sample is dominated by scheduler and
/// allocator noise, which is how BENCH_7 printed table1/fig4/hetero as
/// "optimized slower than baseline". Long cells keep one-shot timing —
/// re-running them would hit the warm [`pim_core::EvalCache`] and
/// measure replay, not work.
pub const RETIME_BELOW_MS: f64 = 100.0;

/// Extra repetitions (beyond the pass run) for sub-threshold cells.
pub const RETIME_REPS: u32 = 4;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn base_scenario(quick: bool) -> Scenario {
    let mut s = Scenario::new("all");
    if quick {
        s.workloads = vec!["WL1".to_string()];
    }
    s
}

/// One `run all`-shaped measurement pass: per-experiment wall times (in
/// registry order), the total, and the context it ran against.
struct TimedPass {
    times: Vec<(String, f64)>,
    total_ms: f64,
    ctx: RunContext,
}

/// Runs every registered experiment once against a shared context (the
/// `run all` shape).
fn timed_pass(scenario: &Scenario, cache_enabled: bool) -> Result<TimedPass, ScenarioError> {
    let registry = experiments::registry();
    let ctx = RunContext::new_with_cache(scenario.resolve()?, cache_enabled);
    let mut times = Vec::new();
    let total = Instant::now();
    for name in registry.names() {
        let t = Instant::now();
        registry.run(&ctx, name)?;
        times.push((name.to_string(), ms(t)));
    }
    let total_ms = ms(total);
    // Noise-floor pass (outside the run-all clock): re-time the tiny
    // cells min-of-N. Re-runs cannot perturb the cache — the pass above
    // already stored every key these cells would insert. Gate cells are
    // exempt: their comparable number is the cold one-shot evaluation,
    // and a cached re-run would measure warm replay instead (fig3 in
    // the quick scenario straddles the threshold, and a replay-timed
    // sample is off by orders of magnitude).
    for (name, t_ms) in &mut times {
        if *t_ms >= RETIME_BELOW_MS || GATE_EXPERIMENTS.contains(&name.as_str()) {
            continue;
        }
        for _ in 0..RETIME_REPS {
            let t = Instant::now();
            registry.run(&ctx, name)?;
            *t_ms = t_ms.min(ms(t));
        }
    }
    Ok(TimedPass {
        times,
        total_ms,
        ctx,
    })
}

fn solver_micro() -> SolverMicro {
    let mut power = PowerMap::new(5, 5, 4).expect("non-empty grid");
    for x in 0..5 {
        for y in 0..5 {
            for z in 0..4 {
                power
                    .set(x, y, z, 0.3 + 0.05 * f64::from(x + y + z))
                    .expect("in bounds");
            }
        }
    }
    let cfg = ThermalConfig::m3d();
    const REPS: u32 = 20;
    let t = Instant::now();
    let mut rb_iters = 0;
    for _ in 0..REPS {
        rb_iters = solve_red_black(&power, &cfg, 1).iterations;
    }
    let red_black_ms = ms(t) / f64::from(REPS);
    let t = Instant::now();
    let mut gs_iters = 0;
    for _ in 0..REPS {
        gs_iters = solve_reference(&power, &cfg).iterations;
    }
    let reference_ms = ms(t) / f64::from(REPS);
    SolverMicro {
        grid: power.dims(),
        red_black_ms,
        reference_ms,
        speedup: reference_ms / red_black_ms.max(f64::MIN_POSITIVE),
        red_black_iterations: rb_iters,
        reference_iterations: gs_iters,
    }
}

fn des_micro() -> DesMicro {
    let topo = mesh2d(5, 5).expect("mesh builds");
    let hw = HwParams::default();
    let rt = netsim::RouteTable::build(&topo, &hw);
    let flows: Vec<netsim::Flow> = (0..24)
        .map(|i| netsim::Flow::new(NodeId(i), NodeId(24), 4096))
        .collect();
    let t = Instant::now();
    let report =
        netsim::simulate_with_table(&topo, &hw, &flows, &netsim::SimConfig::default(), &rt);
    DesMicro {
        flows: flows.len(),
        packets: report.packets,
        heap_events: report.heap_events,
        makespan_cycles: report.makespan_cycles,
        total_channel_wait_cycles: report.total_channel_wait_cycles,
        simulate_ms: ms(t),
    }
}

/// The M1/M9/M13 single-request PIM latencies (ns) pinned for the
/// serving micro, so its wall time measures the event loop, not model
/// construction.
const SERVING_SERVICE_NS: [u64; 3] = [2_418_720, 544_080, 2_017_360];

fn serving_micro(horizon_ms: f64, threads: usize) -> ServingMicro {
    // A deliberately saturated fleet: rates 20× the golden default so a
    // multi-second horizon pushes the calendar queue through ≥ 1M
    // events (arrivals + batch completions + window closes).
    let mut spec = ServingSpec {
        fleet: 4,
        horizon_ms,
        queue_depth: 64,
        loads: vec![1.0],
        ..ServingSpec::default()
    };
    for tenant in &mut spec.tenants {
        tenant.rate_rps *= 20.0;
    }
    let t = Instant::now();
    let out = simulate_serving(&spec, &SERVING_SERVICE_NS, 0x5E41, threads);
    let simulate_ms = ms(t);
    ServingMicro {
        fleet: spec.fleet,
        horizon_ms,
        requests: out.requests,
        events: out.events,
        simulate_ms,
        events_per_sec: out.events as f64 / (simulate_ms / 1e3).max(f64::MIN_POSITIVE),
    }
}

fn fault_events_micro(horizon_ms: f64, threads: usize) -> FaultEventsMicro {
    // The serving micro's saturated fleet, now under the default fault
    // model at full scale: chip outages, throttle windows and the
    // retry/failover machinery all pay into the event count.
    let mut spec = ServingSpec {
        fleet: 4,
        horizon_ms,
        queue_depth: 64,
        loads: vec![1.0],
        ..ServingSpec::default()
    };
    for tenant in &mut spec.tenants {
        tenant.rate_rps *= 20.0;
    }
    let fspec = FaultSpec::default();
    let horizon_ns = (horizon_ms * 1e6).round() as u64;
    let plan = FaultPlan::generate(&fspec, spec.fleet, 64, horizon_ns, 0x5E41 ^ 0xFA17);
    let chip_faults = plan.chip_faults.len();
    let params = ResilienceParams::from_spec(&fspec, plan, 50_000);
    let t = Instant::now();
    let out = simulate_resilient_serving(&spec, &params, &SERVING_SERVICE_NS, 0x5E41, threads);
    let simulate_ms = ms(t);
    let lp = &out.per_load[0];
    FaultEventsMicro {
        fleet: spec.fleet,
        horizon_ms,
        requests: out.requests,
        events: out.events,
        chip_faults,
        retries: lp.retries,
        failovers: lp.failovers,
        timed_out: lp.timed_out,
        simulate_ms,
        events_per_sec: out.events as f64 / (simulate_ms / 1e3).max(f64::MIN_POSITIVE),
    }
}

fn mapping_search_micro(reps: u32) -> MappingSearchMicro {
    use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
    let cfg = pim_core::SystemConfig::datacenter_25d().pim;
    let opts = mapper::SearchOptions::default();
    let graphs: Vec<SegmentGraph> = [
        ModelKind::ResNet18,
        ModelKind::Vgg11,
        ModelKind::DenseNet169,
    ]
    .into_iter()
    .map(|kind| {
        let g = build_model(kind, Dataset::ImageNet).expect("zoo models build");
        SegmentGraph::from_layer_graph(&g)
    })
    .collect();
    let mut candidates_costed = 0;
    let t = Instant::now();
    for _ in 0..reps {
        candidates_costed = graphs
            .iter()
            .map(|g| mapper::search_model(g, &cfg, &opts).candidates_costed)
            .sum();
    }
    let search_ms = ms(t);
    let secs = (search_ms / 1e3).max(f64::MIN_POSITIVE);
    MappingSearchMicro {
        models: graphs.len(),
        reps,
        candidates_costed,
        search_ms,
        searches_per_sec: f64::from(reps) * graphs.len() as f64 / secs,
        candidates_per_sec: f64::from(reps) * candidates_costed as f64 / secs,
    }
}

/// Runs the full harness.
///
/// # Errors
///
/// Propagates [`ScenarioError`] from any experiment of either pass.
pub fn run(quick: bool) -> Result<PerfReport, ScenarioError> {
    let scenario = base_scenario(quick);
    let threads = scenario.resolve()?.threads;

    // Process warm-up, untimed: whichever pass runs first absorbs the
    // one-time process costs (first-touch page faults, allocator arena
    // growth, lazy model-zoo construction). Fig3 — the first heavy
    // experiment of the optimized pass — used to eat all of it, which
    // printed spurious <1x "speedups" in the quick scenario where the
    // cell is small. One throwaway fig3-shaped run lands those costs
    // outside both clocks; fresh-process timing shows the cached and
    // uncached fig3 paths within ~2% of each other.
    {
        let warm = base_scenario(true);
        let ctx = RunContext::new_with_cache(warm.resolve()?, false);
        experiments::registry().run(&ctx, "fig3")?;
    }

    // Optimized pass: shared evaluation cache + red-black SOR.
    thermal::set_default_solver(Solver::RedBlackSor);
    let optimized = timed_pass(&scenario, true)?;
    let cache = CacheSummary {
        stats: optimized.ctx.cache_stats().unwrap_or_default(),
        fingerprint: format!("{:016x}", optimized.ctx.cache_fingerprint().unwrap_or(0)),
    };

    // Baseline pass: cache bypassed, seed Gauss-Seidel solver — the
    // pre-PR execution paths, measured in the same process.
    thermal::set_default_solver(Solver::GaussSeidelReference);
    let baseline_result = timed_pass(&scenario, false);
    thermal::set_default_solver(Solver::RedBlackSor);
    let baseline = baseline_result?;

    let experiments: Vec<ExperimentTiming> = optimized
        .times
        .iter()
        .zip(&baseline.times)
        .map(|((name, opt_ms), (bname, base_ms))| {
            debug_assert_eq!(name, bname);
            ExperimentTiming {
                name: name.clone(),
                optimized_ms: *opt_ms,
                baseline_ms: *base_ms,
                speedup: base_ms / opt_ms.max(f64::MIN_POSITIVE),
            }
        })
        .collect();
    let thermal_experiments = experiments
        .iter()
        .filter(|e| THERMAL_EXPERIMENTS.contains(&e.name.as_str()))
        .cloned()
        .collect();

    Ok(PerfReport {
        schema: "pim-bench-perf-v1",
        bench_pr: 10,
        quick,
        threads,
        experiments,
        run_all: RunAllComparison {
            optimized_ms: optimized.total_ms,
            baseline_ms: baseline.total_ms,
            speedup: baseline.total_ms / optimized.total_ms.max(f64::MIN_POSITIVE),
        },
        thermal_experiments,
        solver: solver_micro(),
        des: des_micro(),
        // ≥ 1M events either way; --quick only trims the horizon.
        serving: serving_micro(if quick { 30_000.0 } else { 60_000.0 }, threads),
        // A shorter horizon: the fault plan's event classes, not raw
        // throughput, are the point of this counter.
        fault_events: fault_events_micro(if quick { 3_000.0 } else { 10_000.0 }, threads),
        mapping_search: mapping_search_micro(if quick { 3 } else { 10 }),
        cache,
    })
}

impl PerfReport {
    /// The human-readable summary `pim-bench perf` prints next to the
    /// JSON file.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run all{}: {:.0} ms optimized vs {:.0} ms baseline ({:.2}x; cache {} hits / {} misses)\n",
            if self.quick { " (quick)" } else { "" },
            self.run_all.optimized_ms,
            self.run_all.baseline_ms,
            self.run_all.speedup,
            self.cache.stats.hits,
            self.cache.stats.misses,
        ));
        for e in &self.thermal_experiments {
            out.push_str(&format!(
                "{:<16} {:>8.1} ms vs {:>8.1} ms  ({:.2}x, solver-bound)\n",
                e.name, e.optimized_ms, e.baseline_ms, e.speedup
            ));
        }
        out.push_str(&format!(
            "thermal solve 5x5x4: {:.3} ms ({} sweeps) vs {:.3} ms ({} sweeps) = {:.1}x\n",
            self.solver.red_black_ms,
            self.solver.red_black_iterations,
            self.solver.reference_ms,
            self.solver.reference_iterations,
            self.solver.speedup,
        ));
        out.push_str(&format!(
            "DES funnel: {} packets, {} heap events, {} wait cycles\n",
            self.des.packets, self.des.heap_events, self.des.total_channel_wait_cycles
        ));
        out.push_str(&format!(
            "serving fleet ({} chips, {:.0} s horizon): {} events in {:.0} ms = {:.2}M events/s\n",
            self.serving.fleet,
            self.serving.horizon_ms / 1e3,
            self.serving.events,
            self.serving.simulate_ms,
            self.serving.events_per_sec / 1e6,
        ));
        out.push_str(&format!(
            "fault events ({} chips, {:.1} s horizon, {} chip edges): {} events, {} retries / {} failovers / {} timeouts = {:.2}M events/s\n",
            self.fault_events.fleet,
            self.fault_events.horizon_ms / 1e3,
            self.fault_events.chip_faults,
            self.fault_events.events,
            self.fault_events.retries,
            self.fault_events.failovers,
            self.fault_events.timed_out,
            self.fault_events.events_per_sec / 1e6,
        ));
        out.push_str(&format!(
            "mapping search ({} models x {} reps): {:.1} searches/s, {:.0} candidates/s\n",
            self.mapping_search.models,
            self.mapping_search.reps,
            self.mapping_search.searches_per_sec,
            self.mapping_search.candidates_per_sec,
        ));
        out
    }

    /// Pretty-printed JSON (the `BENCH_*.json` format).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("serializable");
        json.push('\n');
        json
    }

    /// The CI perf gate: checks this run's [`GATE_EXPERIMENTS`] against
    /// a committed `BENCH_*.json` baseline, failing on a regression
    /// beyond [`GATE_TOLERANCE`].
    ///
    /// The comparison is always each cell's **within-run speedup**
    /// (`baseline_ms / optimized_ms`, both halves timed in the same
    /// process): machine speed cancels out of the ratio, so the check
    /// is portable across CI runners, which absolute milliseconds are
    /// not. The speedup is scenario-dependent, however — small quick
    /// cells weigh fixed cache overhead more heavily — so the baseline
    /// file should come from the **same scenario** (`quick`, `threads`)
    /// as the gated run; a scenario mismatch is flagged in the summary
    /// but still compared. CI gates its `--quick` run against the
    /// committed `BENCH_10_quick.json`; absolute wall-clock blowups are
    /// caught separately by `--max-seconds`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming every failing cell, or a parse
    /// error for a malformed baseline file.
    pub fn gate_against(&self, baseline_json: &str) -> Result<String, String> {
        use serde::Value;
        fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
            match v {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
                _ => None,
            }
        }
        fn number(v: &Value) -> Option<f64> {
            match *v {
                Value::F64(f) => Some(f),
                Value::U64(u) => Some(u as f64),
                Value::I64(i) => Some(i as f64),
                _ => None,
            }
        }
        let base: Value = serde_json::from_str(baseline_json)
            .map_err(|e| format!("perf gate: malformed baseline JSON: {e}"))?;
        let base_cell = |name: &str| -> Option<&Value> {
            match field(&base, "experiments")? {
                Value::Seq(cells) => cells
                    .iter()
                    .find(|e| matches!(field(e, "name"), Some(Value::Str(n)) if n == name)),
                _ => None,
            }
        };
        let same_scenario = matches!(
            field(&base, "quick"), Some(&Value::Bool(q)) if q == self.quick
        ) && matches!(
            field(&base, "threads"), Some(&Value::U64(t)) if t == self.threads as u64
        );

        let mut lines = Vec::new();
        let mut failures = Vec::new();
        for name in GATE_EXPERIMENTS {
            let Some(cell) = self.experiments.iter().find(|e| e.name == name) else {
                failures.push(format!("{name}: missing from this run"));
                continue;
            };
            let Some(bcell) = base_cell(name) else {
                failures.push(format!("{name}: missing from the baseline file"));
                continue;
            };
            let base_speedup = field(bcell, "speedup").and_then(number).unwrap_or(0.0);
            let ok = cell.speedup >= base_speedup / GATE_TOLERANCE;
            lines.push(format!(
                "{name}: {:.2}x vs baseline {base_speedup:.2}x ({})",
                cell.speedup,
                if ok { "ok" } else { "REGRESSION" },
            ));
            if !ok {
                failures.push(format!(
                    "{name}: speedup {:.2}x fell >{:.0}% below the committed {base_speedup:.2}x",
                    cell.speedup,
                    (GATE_TOLERANCE - 1.0) * 100.0,
                ));
            }
        }
        let mode = if same_scenario {
            "within-run speedup"
        } else {
            "within-run speedup (CAUTION: scenario differs from baseline)"
        };
        let summary = format!("perf gate [{mode}]:\n  {}\n", lines.join("\n  "));
        if failures.is_empty() {
            Ok(summary)
        } else {
            Err(format!(
                "{summary}perf gate FAILED:\n  {}",
                failures.join("\n  ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_benches_report_sane_counters() {
        let solver = solver_micro();
        assert!(solver.red_black_iterations > 0);
        assert!(
            solver.reference_iterations > solver.red_black_iterations,
            "SOR must need fewer sweeps"
        );
        let des = des_micro();
        assert_eq!(des.flows, 24);
        assert!(des.packets > 0 && des.heap_events > 0);
        assert!(des.total_channel_wait_cycles > 0, "the funnel must contend");
    }

    #[test]
    fn serving_micro_scales_events_with_the_horizon() {
        // A short probe horizon keeps the debug-mode test cheap; the
        // real harness runs 30-60 s and clears 1M events.
        let m = serving_micro(500.0, 2);
        assert_eq!(m.fleet, 4);
        assert!(m.requests > 10_000, "{} requests", m.requests);
        assert!(m.events >= m.requests);
        assert!(m.events_per_sec > 0.0);
    }

    #[test]
    fn fault_events_micro_counts_fault_activity() {
        // A short probe horizon keeps the debug-mode test cheap; the
        // default MTBF still fires several chip edges inside it.
        let m = fault_events_micro(500.0, 2);
        assert_eq!(m.fleet, 4);
        assert!(m.requests > 10_000, "{} requests", m.requests);
        assert!(m.events >= m.requests);
        assert!(m.chip_faults > 0, "plan generated no chip edges");
        assert!(
            m.retries + m.failovers + m.timed_out > 0,
            "no fault activity despite a non-empty plan"
        );
        assert!(m.events_per_sec > 0.0);
    }

    #[test]
    fn mapping_search_micro_counts_candidates() {
        let m = mapping_search_micro(1);
        assert_eq!(m.models, 3);
        assert!(m.candidates_costed > 100, "{}", m.candidates_costed);
        assert!(m.searches_per_sec > 0.0);
        assert!(m.candidates_per_sec > m.searches_per_sec);
    }

    #[test]
    fn quick_scenario_narrows_the_workload_axis() {
        let s = base_scenario(true);
        assert_eq!(s.workloads, vec!["WL1"]);
        assert!(base_scenario(false).workloads.is_empty());
    }

    /// A report skeleton with just the gate-relevant fields populated.
    fn gate_report(quick: bool, cells: &[(&str, f64, f64)]) -> PerfReport {
        let experiments = cells
            .iter()
            .map(|&(name, optimized_ms, speedup)| ExperimentTiming {
                name: name.to_string(),
                optimized_ms,
                baseline_ms: optimized_ms * speedup,
                speedup,
            })
            .collect();
        PerfReport {
            schema: "pim-bench-perf-v1",
            bench_pr: 10,
            quick,
            threads: 1,
            experiments,
            run_all: RunAllComparison {
                optimized_ms: 1.0,
                baseline_ms: 1.0,
                speedup: 1.0,
            },
            thermal_experiments: Vec::new(),
            solver: SolverMicro {
                grid: (5, 5, 4),
                red_black_ms: 1.0,
                reference_ms: 1.0,
                speedup: 1.0,
                red_black_iterations: 1,
                reference_iterations: 2,
            },
            des: DesMicro {
                flows: 0,
                packets: 0,
                heap_events: 0,
                makespan_cycles: 0,
                total_channel_wait_cycles: 0,
                simulate_ms: 0.0,
            },
            serving: ServingMicro {
                fleet: 0,
                horizon_ms: 0.0,
                requests: 0,
                events: 0,
                simulate_ms: 0.0,
                events_per_sec: 0.0,
            },
            fault_events: FaultEventsMicro {
                fleet: 0,
                horizon_ms: 0.0,
                requests: 0,
                events: 0,
                chip_faults: 0,
                retries: 0,
                failovers: 0,
                timed_out: 0,
                simulate_ms: 0.0,
                events_per_sec: 0.0,
            },
            mapping_search: MappingSearchMicro {
                models: 0,
                reps: 0,
                candidates_costed: 0,
                search_ms: 0.0,
                searches_per_sec: 0.0,
                candidates_per_sec: 0.0,
            },
            cache: CacheSummary {
                stats: CacheStats::default(),
                fingerprint: String::new(),
            },
        }
    }

    const GATE_CELLS: [(&str, f64, f64); 3] = [
        ("fig3", 5000.0, 1.0),
        ("dataflows", 8000.0, 1.2),
        ("mapping_search", 20000.0, 1.5),
    ];

    #[test]
    fn gate_passes_within_tolerance_and_ignores_machine_speed() {
        let baseline = gate_report(true, &GATE_CELLS).to_json();
        // A 3x slower machine (all ms scaled) with mild speedup drift:
        // inside the 25% ratio budget, absolute times irrelevant.
        let current = gate_report(
            true,
            &[
                ("fig3", 15000.0, 0.9),
                ("dataflows", 24000.0, 1.1),
                ("mapping_search", 60000.0, 1.4),
            ],
        );
        let summary = current.gate_against(&baseline).expect("within tolerance");
        assert!(summary.contains("within-run speedup"), "{summary}");
        assert!(!summary.contains("CAUTION"), "{summary}");
    }

    #[test]
    fn gate_fails_on_speedup_regression_beyond_tolerance() {
        let baseline = gate_report(true, &GATE_CELLS).to_json();
        let current = gate_report(
            true,
            &[
                ("fig3", 5000.0, 1.0),
                ("dataflows", 8000.0, 0.9), // 1.2x -> 0.9x: -25%+
                ("mapping_search", 20000.0, 1.5),
            ],
        );
        let err = current.gate_against(&baseline).expect_err("must fail");
        assert!(err.contains("dataflows: speedup"), "{err}");
        assert!(
            !err.contains("fig3: speedup"),
            "only dataflows fails: {err}"
        );
    }

    #[test]
    fn gate_flags_a_scenario_mismatch() {
        // The within-run speedup is scenario-dependent (small quick
        // cells weigh cache overhead more), so gating quick against a
        // full-scenario file still runs but carries a warning.
        let baseline = gate_report(false, &GATE_CELLS).to_json();
        let ok = gate_report(true, &GATE_CELLS);
        let summary = ok.gate_against(&baseline).expect("ratios match");
        assert!(summary.contains("CAUTION: scenario differs"), "{summary}");

        let bad = gate_report(
            true,
            &[
                ("fig3", 1.0, 1.0),
                ("dataflows", 1.0, 1.2),
                ("mapping_search", 1.0, 1.0), // 1.5x -> 1.0x collapse
            ],
        );
        let err = bad.gate_against(&baseline).expect_err("ratio regression");
        assert!(err.contains("mapping_search"), "{err}");
    }

    #[test]
    fn gate_reports_missing_cells_and_bad_json() {
        let baseline = gate_report(false, &GATE_CELLS).to_json();
        let missing = gate_report(false, &GATE_CELLS[..2]);
        let err = missing.gate_against(&baseline).expect_err("cell missing");
        assert!(
            err.contains("mapping_search: missing from this run"),
            "{err}"
        );
        assert!(gate_report(false, &GATE_CELLS)
            .gate_against("not json")
            .expect_err("parse error")
            .contains("malformed"));
    }
}

//! The presentation crate for the reproduction: the unified `pim-bench`
//! CLI ([`cli`]) over `pim_core`'s experiment registry, the structured
//! output renderers ([`output`]), and the criterion benches.
//!
//! Every paper artifact (Tables I-II, Figs. 2-7, the ablations) is a
//! registry entry; `pim-bench list | describe | run <name|all>` with
//! `--format table|json|csv` replaces the twenty hand-rolled binaries.
//! The per-figure binaries under `src/bin/` remain as thin shims that
//! delegate to the registry ([`cli::shim`]) so existing CI invocations
//! and README commands keep working.
//!
//! # Examples
//!
//! ```
//! // Ratios render the way the fig3/fig5 columns print them.
//! assert_eq!(pim_bench::ratio(2.236), "2.24x");
//!
//! // Thermal tier slices become one glyph per PE, `.` cold to `@` hot.
//! let map = pim_bench::ascii_heatmap(&[vec![300.0, 399.0]], 300.0, 400.0);
//! assert_eq!(map, ". @ \n");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod output;
pub mod perf;

pub use output::{ascii_heatmap, normalize_to_floret, ratio, section};

//! Shared output helpers for the reproduction binaries (`table1`,
//! `fig2`, ... — one per table/figure of the paper) and the criterion
//! benches.
//!
//! Each binary under `src/bin/` regenerates one paper artifact on the
//! `pim_core` experiment entry points; this library only owns the
//! presentation: section rules, ratio formatting, Floret-normalized
//! figure rows and ASCII heat maps. See the "Reproducing the figures"
//! table in the README for the binary ↔ figure mapping.
//!
//! # Examples
//!
//! ```
//! // Ratios render the way the fig3/fig5 columns print them.
//! assert_eq!(pim_bench::ratio(2.236), "2.24x");
//!
//! // Thermal tier slices become one glyph per PE, `.` cold to `@` hot.
//! let map = pim_bench::ascii_heatmap(&[vec![300.0, 399.0]], 300.0, 400.0);
//! assert_eq!(map, ". @ \n");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use pim_core::WorkloadReport;

/// Prints a horizontal rule with a title.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Normalizes a metric across workload reports to the Floret row and
/// returns `(arch, value, normalized)` triples in the input order.
pub fn normalize_to_floret<F>(rows: &[WorkloadReport], metric: F) -> Vec<(String, f64, f64)>
where
    F: Fn(&WorkloadReport) -> f64,
{
    let floret = rows
        .iter()
        .find(|r| r.arch == "Floret")
        .map(&metric)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    rows.iter()
        .map(|r| {
            let v = metric(r);
            (r.arch.clone(), v, v / floret)
        })
        .collect()
}

/// Renders a tier temperature slice as an ASCII heat map (one char per
/// PE, `.:oO#@` buckets relative to the given range).
pub fn ascii_heatmap(slice: &[Vec<f64>], lo: f64, hi: f64) -> String {
    let chars = ['.', ':', 'o', 'O', '#', '@'];
    let mut out = String::new();
    for row in slice {
        for &t in row {
            let f = ((t - lo) / (hi - lo)).clamp(0.0, 0.999);
            let idx = (f * chars.len() as f64) as usize;
            out.push(chars[idx]);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shape() {
        let slice = vec![vec![300.0, 350.0], vec![400.0, 325.0]];
        let map = ascii_heatmap(&slice, 300.0, 400.0);
        assert_eq!(map.lines().count(), 2);
        assert!(map.starts_with(". "));
        assert!(map.contains('@'));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(2.236), "2.24x");
    }
}

//! NSGA-II-style multi-objective evolutionary search (mutation-based)
//! producing the performance-temperature Pareto front of the Section III
//! design-space exploration.

use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::problem::{dominates, Problem};

/// NSGA-II configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NsgaConfig {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        NsgaConfig {
            population: 40,
            generations: 60,
            seed: 0x4E53_4741, // "NSGA"
        }
    }
}

/// One Pareto-front member.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontPoint<S> {
    /// The solution.
    pub solution: S,
    /// Its objective vector.
    pub objectives: Vec<f64>,
}

/// Fast non-dominated sorting: returns front indices per individual
/// (0 = non-dominated).
pub fn non_dominated_sort(objs: &[Vec<f64>]) -> Vec<usize> {
    let n = objs.len();
    let mut dominated_by = vec![0usize; n]; // count of dominators
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&objs[i], &objs[j]) {
                dominates_list[i].push(j);
            } else if dominates(&objs[j], &objs[i]) {
                dominated_by[i] += 1;
            }
        }
    }
    let mut rank = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut level = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = level;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        level += 1;
    }
    rank
}

/// Crowding distance within one front (bigger = more isolated = kept).
pub fn crowding_distance(objs: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let m = members.len();
    let mut dist = vec![0.0f64; m];
    if m == 0 {
        return dist;
    }
    let k = objs[members[0]].len();
    // `obj` selects a column across many `objs` rows; a range loop is the
    // direct expression.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..k {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            objs[members[a]][obj]
                .partial_cmp(&objs[members[b]][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = objs[members[order[0]]][obj];
        let hi = objs[members[order[m - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        if (hi - lo).abs() < 1e-30 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = objs[members[order[w - 1]]][obj];
            let next = objs[members[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / (hi - lo);
        }
    }
    dist
}

/// Runs the evolutionary search and returns the final non-dominated front
/// sorted by the first objective.
pub fn nsga2<P: Problem>(problem: &P, cfg: &NsgaConfig) -> Vec<FrontPoint<P::Solution>> {
    assert!(cfg.population >= 4, "population must be at least 4");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut pop: Vec<P::Solution> = (0..cfg.population)
        .map(|_| problem.random_solution(&mut rng))
        .collect();
    let mut objs: Vec<Vec<f64>> = pop.iter().map(|s| problem.objectives(s)).collect();

    for _ in 0..cfg.generations {
        // Offspring via tournament selection + mutation.
        let mut children: Vec<P::Solution> = Vec::with_capacity(cfg.population);
        let rank = non_dominated_sort(&objs);
        for _ in 0..cfg.population {
            let a = rng.random_range(0..pop.len());
            let b = rng.random_range(0..pop.len());
            let parent = if rank[a] <= rank[b] { &pop[a] } else { &pop[b] };
            children.push(problem.neighbor(parent, &mut rng));
        }
        let child_objs: Vec<Vec<f64>> = children.iter().map(|s| problem.objectives(s)).collect();
        pop.extend(children);
        objs.extend(child_objs);

        // Environmental selection: fronts then crowding.
        let rank = non_dominated_sort(&objs);
        let max_rank = rank.iter().copied().max().unwrap_or(0);
        let mut selected: Vec<usize> = Vec::with_capacity(cfg.population);
        for level in 0..=max_rank {
            let members: Vec<usize> = (0..pop.len()).filter(|&i| rank[i] == level).collect();
            if selected.len() + members.len() <= cfg.population {
                selected.extend(&members);
            } else {
                let crowd = crowding_distance(&objs, &members);
                let mut order: Vec<usize> = (0..members.len()).collect();
                order.sort_by(|&a, &b| {
                    crowd[b]
                        .partial_cmp(&crowd[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| members[a].cmp(&members[b]))
                });
                for &w in order.iter().take(cfg.population - selected.len()) {
                    selected.push(members[w]);
                }
                break;
            }
        }
        pop = selected.iter().map(|&i| pop[i].clone()).collect();
        objs = selected.iter().map(|&i| objs[i].clone()).collect();
    }

    // Extract the final front.
    let rank = non_dominated_sort(&objs);
    let mut front: Vec<FrontPoint<P::Solution>> = (0..pop.len())
        .filter(|&i| rank[i] == 0)
        .map(|i| FrontPoint {
            solution: pop[i].clone(),
            objectives: objs[i].clone(),
        })
        .collect();
    front.sort_by(|a, b| {
        a.objectives[0]
            .partial_cmp(&b.objectives[0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Deduplicate identical objective vectors for a clean front.
    front.dedup_by(|a, b| a.objectives == b.objectives);
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::permutation;

    /// Bi-objective toy: a permutation scored by (inversions,
    /// anti-inversions). Sorted ascending minimizes the first, sorted
    /// descending the second; the Pareto front spans the trade-off.
    struct BiSort {
        n: usize,
    }

    impl Problem for BiSort {
        type Solution = Vec<usize>;

        fn random_solution(&self, rng: &mut ChaCha8Rng) -> Vec<usize> {
            permutation::random(self.n, rng)
        }

        fn neighbor(&self, s: &Vec<usize>, rng: &mut ChaCha8Rng) -> Vec<usize> {
            permutation::swap_mutate(s, rng)
        }

        fn objectives(&self, s: &Vec<usize>) -> Vec<f64> {
            let mut inv = 0;
            let mut anti = 0;
            for i in 0..s.len() {
                for j in i + 1..s.len() {
                    if s[i] > s[j] {
                        inv += 1;
                    } else {
                        anti += 1;
                    }
                }
            }
            vec![inv as f64, anti as f64]
        }
    }

    #[test]
    fn sorting_ranks_are_consistent() {
        let objs = vec![
            vec![1.0, 1.0], // dominates everything
            vec![2.0, 2.0],
            vec![1.0, 3.0],
            vec![3.0, 1.0],
        ];
        let rank = non_dominated_sort(&objs);
        assert_eq!(rank[0], 0);
        assert!(rank[1] > 0);
        // (1,3) and (3,1) are mutually non-dominated but dominated by (1,1)?
        // (1,1) vs (1,3): no worse and strictly better -> dominated.
        assert!(rank[2] > 0);
        assert!(rank[3] > 0);
    }

    #[test]
    fn crowding_prefers_extremes() {
        let objs = vec![
            vec![0.0, 10.0],
            vec![5.0, 5.0],
            vec![10.0, 0.0],
            vec![5.1, 4.9],
        ];
        let members: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&objs, &members);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1] >= d[3] || d[3] >= 0.0);
    }

    #[test]
    fn nsga2_finds_a_spread_front() {
        let p = BiSort { n: 8 };
        let cfg = NsgaConfig {
            population: 24,
            generations: 40,
            seed: 11,
        };
        let front = nsga2(&p, &cfg);
        assert!(!front.is_empty());
        // The front must be mutually non-dominated.
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
        // Total inversions+anti = C(8,2) = 28 on every point.
        for pt in &front {
            assert_eq!(pt.objectives[0] + pt.objectives[1], 28.0);
        }
        // The extremes should be approached.
        let best_first = front[0].objectives[0];
        assert!(best_first <= 4.0, "front should near the sorted extreme");
    }

    #[test]
    fn nsga2_is_deterministic() {
        let p = BiSort { n: 6 };
        let cfg = NsgaConfig {
            population: 16,
            generations: 15,
            seed: 3,
        };
        let a = nsga2(&p, &cfg);
        let b = nsga2(&p, &cfg);
        let ao: Vec<_> = a.iter().map(|x| x.objectives.clone()).collect();
        let bo: Vec<_> = b.iter().map(|x| x.objectives.clone()).collect();
        assert_eq!(ao, bo);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let p = BiSort { n: 4 };
        let _ = nsga2(
            &p,
            &NsgaConfig {
                population: 2,
                generations: 1,
                seed: 0,
            },
        );
    }
}

//! Weighted-sum simulated annealing — the solver behind the joint
//! performance-thermal placement of Section III.

use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::problem::Problem;

/// Simulated-annealing configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Iterations.
    pub iterations: u32,
    /// Initial temperature (in units of the weighted objective).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Per-objective weights for the scalarized cost (lengths must match
    /// the problem's objective vector).
    pub weights: Vec<f64>,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 5000,
            t_start: 1.0,
            t_end: 1e-3,
            weights: vec![1.0],
            seed: 0x5EED,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Clone, Debug, PartialEq)]
pub struct SaResult<S> {
    /// Best solution found.
    pub solution: S,
    /// Its objective vector.
    pub objectives: Vec<f64>,
    /// Its scalarized cost.
    pub cost: f64,
    /// Accepted moves (diagnostic).
    pub accepted: u32,
}

fn scalarize(objs: &[f64], weights: &[f64]) -> f64 {
    objs.iter().zip(weights).map(|(o, w)| o * w).sum()
}

/// Minimizes the weighted objective sum by simulated annealing with a
/// geometric cooling schedule.
///
/// # Panics
///
/// Panics if the weight vector length does not match the problem's
/// objective count.
pub fn simulated_annealing<P: Problem>(problem: &P, cfg: &SaConfig) -> SaResult<P::Solution> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut current = problem.random_solution(&mut rng);
    let mut cur_objs = problem.objectives(&current);
    assert_eq!(
        cur_objs.len(),
        cfg.weights.len(),
        "weight vector must match the objective count"
    );
    let mut cur_cost = scalarize(&cur_objs, &cfg.weights);
    let mut best = current.clone();
    let mut best_objs = cur_objs.clone();
    let mut best_cost = cur_cost;
    let mut accepted = 0;

    let iters = cfg.iterations.max(1);
    let alpha = (cfg.t_end / cfg.t_start).powf(1.0 / iters as f64);
    let mut temp = cfg.t_start;
    for _ in 0..iters {
        let cand = problem.neighbor(&current, &mut rng);
        let objs = problem.objectives(&cand);
        let cost = scalarize(&objs, &cfg.weights);
        let delta = cost - cur_cost;
        if delta <= 0.0 || rng.random::<f64>() < (-delta / temp.max(1e-12)).exp() {
            current = cand;
            cur_objs = objs;
            cur_cost = cost;
            accepted += 1;
            if cur_cost < best_cost {
                best = current.clone();
                best_objs = cur_objs.clone();
                best_cost = cur_cost;
            }
        }
        temp *= alpha;
    }
    SaResult {
        solution: best,
        objectives: best_objs,
        cost: best_cost,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::permutation;

    /// Toy problem: order `0..n` — cost is the number of inversions.
    struct SortProblem {
        n: usize,
    }

    impl Problem for SortProblem {
        type Solution = Vec<usize>;

        fn random_solution(&self, rng: &mut ChaCha8Rng) -> Vec<usize> {
            permutation::random(self.n, rng)
        }

        fn neighbor(&self, s: &Vec<usize>, rng: &mut ChaCha8Rng) -> Vec<usize> {
            permutation::swap_mutate(s, rng)
        }

        fn objectives(&self, s: &Vec<usize>) -> Vec<f64> {
            let mut inversions = 0;
            for i in 0..s.len() {
                for j in i + 1..s.len() {
                    if s[i] > s[j] {
                        inversions += 1;
                    }
                }
            }
            vec![inversions as f64]
        }
    }

    #[test]
    fn sa_sorts_a_permutation() {
        let p = SortProblem { n: 10 };
        let cfg = SaConfig {
            iterations: 20_000,
            t_start: 5.0,
            ..SaConfig::default()
        };
        let res = simulated_annealing(&p, &cfg);
        assert_eq!(res.cost, 0.0, "SA should fully sort 10 elements");
        assert_eq!(res.solution, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let p = SortProblem { n: 8 };
        let cfg = SaConfig {
            iterations: 500,
            ..SaConfig::default()
        };
        let a = simulated_annealing(&p, &cfg);
        let b = simulated_annealing(&p, &cfg);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn sa_improves_over_random() {
        let p = SortProblem { n: 12 };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let random_cost = p.objectives(&p.random_solution(&mut rng))[0];
        let res = simulated_annealing(
            &p,
            &SaConfig {
                iterations: 5000,
                t_start: 3.0,
                ..SaConfig::default()
            },
        );
        assert!(res.cost < random_cost);
    }

    #[test]
    #[should_panic(expected = "weight vector")]
    fn weight_mismatch_panics() {
        let p = SortProblem { n: 4 };
        let cfg = SaConfig {
            weights: vec![1.0, 2.0],
            ..SaConfig::default()
        };
        let _ = simulated_annealing(&p, &cfg);
    }
}

//! Multi-objective optimization for joint performance-thermal placement
//! (Section III of the paper).
//!
//! Provides a generic [`Problem`] abstraction over candidate solutions,
//! a weighted-sum [`simulated_annealing`] solver (used for the "joint
//! performance-thermal optimized NoC" design point of Figs. 6-7) and a
//! mutation-based NSGA-II ([`nsga2`]) that exposes the whole
//! EDP-vs-peak-temperature Pareto front for the ablation benches.
//!
//! All solvers are deterministic for a fixed seed.
//!
//! # Examples
//!
//! ```
//! use opt::{simulated_annealing, Problem, SaConfig};
//! use rand_chacha::ChaCha8Rng;
//!
//! struct Line;
//! impl Problem for Line {
//!     type Solution = f64;
//!     fn random_solution(&self, rng: &mut ChaCha8Rng) -> f64 {
//!         use rand::RngExt;
//!         rng.random_range(-10.0..10.0)
//!     }
//!     fn neighbor(&self, s: &f64, rng: &mut ChaCha8Rng) -> f64 {
//!         use rand::RngExt;
//!         s + rng.random_range(-1.0..1.0)
//!     }
//!     fn objectives(&self, s: &f64) -> Vec<f64> {
//!         vec![(s - 3.0).abs()]
//!     }
//! }
//!
//! let res = simulated_annealing(&Line, &SaConfig { iterations: 20_000, ..SaConfig::default() });
//! assert!((res.solution - 3.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod nsga2;
mod problem;
mod sa;

pub use nsga2::{crowding_distance, non_dominated_sort, nsga2, FrontPoint, NsgaConfig};
pub use problem::{dominates, permutation, Problem};
pub use sa::{simulated_annealing, SaConfig, SaResult};

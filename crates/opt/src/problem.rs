//! The optimization problem abstraction shared by the SA and NSGA-II
//! solvers, plus permutation helpers for placement problems.

use rand::seq::SliceRandom;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// A multi-objective minimization problem over solutions of type
/// [`Problem::Solution`].
pub trait Problem {
    /// Candidate solution representation.
    type Solution: Clone;

    /// Samples a random feasible solution.
    fn random_solution(&self, rng: &mut ChaCha8Rng) -> Self::Solution;

    /// Produces a neighboring solution (small mutation).
    fn neighbor(&self, s: &Self::Solution, rng: &mut ChaCha8Rng) -> Self::Solution;

    /// Evaluates the objective vector (all objectives are minimized).
    fn objectives(&self, s: &Self::Solution) -> Vec<f64>;
}

/// Whether objective vector `a` Pareto-dominates `b` (no worse in every
/// objective, strictly better in at least one; minimization).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Permutation utilities for placement-style solution encodings.
pub mod permutation {
    use super::*;

    /// A uniformly random permutation of `0..n`.
    pub fn random(n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(rng);
        p
    }

    /// Swap-mutation: exchanges two random positions.
    pub fn swap_mutate(p: &[usize], rng: &mut ChaCha8Rng) -> Vec<usize> {
        let mut out = p.to_vec();
        if out.len() >= 2 {
            let i = rng.random_range(0..out.len());
            let j = rng.random_range(0..out.len());
            out.swap(i, j);
        }
        out
    }

    /// Segment-reversal mutation (2-opt move), which preserves locality
    /// better than random swaps for chain-like placements.
    pub fn reverse_mutate(p: &[usize], rng: &mut ChaCha8Rng) -> Vec<usize> {
        let mut out = p.to_vec();
        if out.len() >= 2 {
            let mut i = rng.random_range(0..out.len());
            let mut j = rng.random_range(0..out.len());
            if i > j {
                std::mem::swap(&mut i, &mut j);
            }
            out[i..=j].reverse();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dominance_rules() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(
            !dominates(&[2.0, 2.0], &[2.0, 2.0]),
            "equal does not dominate"
        );
    }

    #[test]
    fn permutations_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [0usize, 1, 5, 20] {
            let p = permutation::random(n, &mut rng);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn mutations_preserve_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = permutation::random(12, &mut rng);
        for _ in 0..50 {
            for q in [
                permutation::swap_mutate(&p, &mut rng),
                permutation::reverse_mutate(&p, &mut rng),
            ] {
                let mut sorted = q.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..12).collect::<Vec<_>>());
            }
        }
    }
}

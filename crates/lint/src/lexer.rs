//! A hand-rolled Rust lexer, just deep enough for reliable token-level
//! static analysis.
//!
//! The rules in this crate must never fire on text inside string
//! literals, comments, or char literals, and must never confuse a
//! lifetime with a char or a raw identifier with a keyword — those are
//! exactly the places a grep-based lint goes wrong. The lexer therefore
//! handles, precisely:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string, raw string (`r"…"`, `r#"…"#`, any hash count), byte
//!   string, raw byte string, char, and byte-char literals, with
//!   escapes;
//! - the lifetime-vs-char-literal ambiguity (`'a` vs `'a'`);
//! - raw identifiers (`r#type` is an identifier whose text is `type`
//!   but which is *not* the keyword);
//! - numeric literals with radix prefixes, underscores, exponents, and
//!   type suffixes (without eating `..` range puncts).
//!
//! Everything else comes out as one-character [`TokenKind::Punct`]
//! tokens; the rules match multi-character operators (`::`) as adjacent
//! punct tokens. Positions are 1-based line and column (in characters,
//! matching what editors display).

/// What a [`Token`] is. Keywords are ordinary [`TokenKind::Ident`]s —
/// rules that care about `as` or `for` match on the token text, and use
/// the kind to avoid matching the raw identifier `r#as`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `as`, `HashMap`).
    Ident,
    /// Raw identifier (`r#type`); `text()` excludes the `r#` prefix.
    RawIdent,
    /// Lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime,
    /// String / raw string / byte-string literal, quotes included.
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// Numeric literal, suffix included (`0xFFFF_FFFF`, `1.5e-3f64`).
    Num,
    /// A single punctuation character.
    Punct,
    /// `// …` comment, newline excluded.
    LineComment,
    /// `/* … */` comment (nesting handled), delimiters included.
    BlockComment,
}

/// One lexed token: a kind plus a byte span into the source and the
/// 1-based line/column of its first character.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character (for [`TokenKind::RawIdent`],
    /// of the character after `r#`).
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    pub line: usize,
    pub col: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for an identifier (raw or not) whose text is `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::RawIdent) && self.text(src) == name
    }

    /// True for the *keyword* `kw` — a plain identifier with that text
    /// (`r#as` is an identifier named "as", not the keyword).
    pub fn is_keyword(&self, src: &str, kw: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == kw
    }

    /// True for the punctuation character `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Unterminated constructs (string, block
/// comment) consume to end of input rather than erroring: the linter
/// must keep going on any input, and rustc will reject such a file
/// anyway.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one **character** (multi-byte UTF-8 advances by the
    /// full encoding), maintaining line/col.
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            let ch_len = self.src[self.pos..]
                .chars()
                .next()
                .map(char::len_utf8)
                .unwrap_or(1);
            self.col += 1;
            self.pos += ch_len;
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek_at(1) == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'r' if self.raw_string_hashes().is_some() => {
                    let hashes = self.raw_string_hashes().unwrap();
                    self.bump(); // r
                    self.raw_string_body(hashes);
                    self.push(TokenKind::Str, start, line, col);
                }
                b'r' if self.peek_at(1) == Some(b'#')
                    && self.peek_at(2).is_some_and(is_ident_start) =>
                {
                    self.bump(); // r
                    self.bump(); // #
                    let id_start = self.pos;
                    self.ident_tail();
                    self.tokens.push(Token {
                        kind: TokenKind::RawIdent,
                        start: id_start,
                        end: self.pos,
                        line,
                        col,
                    });
                }
                b'b' if self.peek_at(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokenKind::Char, start, line, col);
                }
                b'b' if self.peek_at(1) == Some(b'"') => {
                    self.bump(); // b
                    self.quoted_string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek_at(1) == Some(b'r') && self.byte_raw_hashes().is_some() => {
                    let hashes = self.byte_raw_hashes().unwrap();
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string_body(hashes);
                    self.push(TokenKind::Str, start, line, col);
                }
                b'"' => {
                    self.quoted_string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    if self.is_lifetime() {
                        self.bump(); // '
                        let id_start = self.pos;
                        self.ident_tail();
                        self.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            start: id_start,
                            end: self.pos,
                            line,
                            col,
                        });
                    } else {
                        self.char_literal();
                        self.push(TokenKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Num, start, line, col);
                }
                _ if is_ident_start(b) || b >= 0x80 => {
                    // Non-ASCII identifier starts are rare in this
                    // workspace but cost nothing to accept.
                    self.ident_tail();
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    /// If the cursor sits on `r"` / `r#…#"`, the number of hashes.
    fn raw_string_hashes(&self) -> Option<usize> {
        let mut off = 1;
        while self.peek_at(off) == Some(b'#') {
            off += 1;
        }
        (self.peek_at(off) == Some(b'"')).then_some(off - 1)
    }

    /// If the cursor sits on `br"` / `br#…#"`, the number of hashes.
    fn byte_raw_hashes(&self) -> Option<usize> {
        let mut off = 2;
        while self.peek_at(off) == Some(b'#') {
            off += 1;
        }
        (self.peek_at(off) == Some(b'"')).then_some(off - 2)
    }

    /// Consumes `#…#"body"#…#` with `hashes` hashes (cursor after the
    /// `r` / `br` prefix).
    fn raw_string_body(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump(); // leading #
        }
        self.bump(); // opening "
        loop {
            match self.peek() {
                None => return,
                Some(b'"') => {
                    self.bump();
                    let mut seen = 0;
                    while seen < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes a `"…"` with backslash escapes (cursor on the quote).
    fn quoted_string(&mut self) {
        self.bump(); // opening "
        loop {
            match self.peek() {
                None => return,
                Some(b'\\') => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    return;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal), cursor
    /// on the quote. `'\…` is always a char; `'x` followed by another
    /// quote is a char; otherwise an identifier start means lifetime.
    fn is_lifetime(&self) -> bool {
        match self.peek_at(1) {
            Some(b'\\') => false,
            Some(c) if is_ident_start(c) => {
                // 'a' → char; 'ab (impossible in valid Rust as a char)
                // and 'a  → lifetime.
                let mut off = 2;
                while self.peek_at(off).is_some_and(is_ident_continue) {
                    off += 1;
                }
                self.peek_at(off) != Some(b'\'')
            }
            _ => false,
        }
    }

    /// Consumes `'…'` (cursor on the quote) with escapes.
    fn char_literal(&mut self) {
        self.bump(); // opening '
        loop {
            match self.peek() {
                None => return,
                Some(b'\\') => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                Some(b'\'') => {
                    self.bump();
                    return;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes a numeric literal: radix prefixes, underscores, a
    /// fraction only when a digit follows the dot (so `1..n` lexes as
    /// `1`, `.`, `.`, `n`), exponents, and trailing type suffixes.
    fn number(&mut self) {
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
            )
        {
            self.bump();
            self.bump();
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            return;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(); // .
            while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && (self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek_at(1), Some(b'+' | b'-'))
                    && self.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            self.bump(); // e
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
        }
        // Type suffix (u32, f64, usize, …).
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    /// Consumes `/* … */` with nesting (cursor on the `/`).
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (None, _) => return,
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                _ => self.bump(),
            }
        }
    }

    fn ident_tail(&mut self) {
        while self
            .peek()
            .is_some_and(|c| is_ident_continue(c) || c >= 0x80)
        {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_raw_idents() {
        let toks = kinds("let r#as = x as u32;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::RawIdent, "as".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[4], (TokenKind::Ident, "as".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "u32".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let s = "x as u32 // not a comment"; let r = r#"env::var "quoted""#;"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .all(|(k, _)| !matches!(k, TokenKind::LineComment)));
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].1.contains("env::var"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds(r"fn f<'a>(x: &'a str) { let c = 'a'; let e = '\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"###);
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(strs, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { let x = 1_000u64; let y = 0xFFFF_FFFF; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1_000u64", "0xFFFF_FFFF"]);
        let floats = kinds("1.5e-3 + 2. + x.max(1)");
        assert_eq!(floats[0].1, "1.5e-3");
        // `2.` lexes as 2 then punct `.` under the digit-after-dot rule;
        // good enough — nothing downstream cares, and `x.max` survives.
        assert!(floats.iter().any(|(_, t)| t == "max"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "ab\n  cd // note\n\"s\"";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[2].kind, TokenKind::LineComment);
        assert_eq!((toks[3].line, toks[3].col), (3, 1));
    }
}

//! `pim-lint` — workspace-wide determinism & invariant static analysis.
//!
//! The repo's value proposition — golden-pinned figures, bit-identical
//! output at any thread count, dirty-vs-fresh scratch reuse — rests on
//! a determinism contract that the test suite enforces only
//! dynamically. This crate enforces the hazard classes *statically*: a
//! hand-rolled lexer (so string literals and comments can never
//! confuse a rule) feeds a small rule engine that walks every
//! workspace `.rs` file and emits `file:line:col` diagnostics.
//!
//! The rule catalogue lives in [`rules`] and is documented for humans
//! in `docs/LINT.md`. Violations that are genuinely intended carry an
//! escape hatch comment, which **must** include a written reason:
//!
//! ```text
//! // pim-lint: allow(truncating-cast) -- masked to 16 bits two tokens earlier
//! ```
//!
//! A trailing allow suppresses matching diagnostics on its own line; an
//! allow alone on a line suppresses them on the next code line. An
//! allow with no reason, an unknown rule id, or no effect is itself a
//! diagnostic (`malformed-allow` / `unused-allow`), so stale escapes
//! cannot accumulate.
//!
//! Structs can opt into the scratch-reset rule with a marker comment:
//!
//! ```text
//! // pim-lint: scratch
//! struct MyScratch { … }
//! ```

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Token};
use rules::Rule;

/// One `file:line:col` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated on every platform.
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// Rule id (`truncating-cast`, …, or the engine's `malformed-allow`
    /// / `unused-allow`).
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.msg
        )
    }
}

/// A parsed `// pim-lint: allow(<rule>) -- <reason>` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    /// Line the comment sits on.
    pub line: usize,
    pub col: usize,
    /// Line whose diagnostics it suppresses (its own for a trailing
    /// comment, the next code line for an own-line comment).
    pub target_line: usize,
    /// Empty when the author omitted the mandatory `-- <reason>`.
    pub reason: String,
}

/// One lexed source file plus everything the rules need: the code-only
/// token view, parsed allow comments, and `pim-lint: scratch` markers.
pub struct SourceFile {
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    pub text: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens — the view rules
    /// match against.
    pub code: Vec<usize>,
    pub allows: Vec<Allow>,
    /// Lines of `// pim-lint: scratch` markers; the next `struct` at or
    /// below the marker opts into the scratch-reset rule.
    pub scratch_marker_lines: Vec<usize>,
    /// `(line, col)` of comments that contained `pim-lint:` but parsed
    /// as neither `scratch` nor a well-formed allow.
    malformed: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` and parses its lint-control comments. `path` is the
    /// workspace-relative path used for diagnostics and scoping.
    pub fn parse(path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut allows = Vec::new();
        let mut scratch_marker_lines = Vec::new();
        let mut malformed = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            let body = t.text(&text);
            // Directives live in plain comments only: doc comments are
            // documentation (they may *show* the syntax, as this
            // crate's own rustdoc does) and never carry directives.
            let is_doc = (body.starts_with("///") && !body.starts_with("////"))
                || body.starts_with("//!")
                || (body.starts_with("/**") && body.len() > 4)
                || body.starts_with("/*!");
            if is_doc {
                continue;
            }
            let Some(at) = body.find("pim-lint:") else {
                continue;
            };
            let directive = body[at + "pim-lint:".len()..]
                .trim()
                .trim_end_matches("*/")
                .trim();
            if directive == "scratch" {
                scratch_marker_lines.push(t.line);
                continue;
            }
            match parse_allow(directive) {
                Some((rule, reason)) => {
                    // A comment that is the first token on its line
                    // targets the next code line; a trailing comment
                    // targets its own line.
                    let own_line = tokens[..i]
                        .iter()
                        .rev()
                        .take_while(|p| p.line == t.line)
                        .count()
                        == 0;
                    let target_line = if own_line {
                        tokens[i + 1..]
                            .iter()
                            .find(|n| !n.is_comment())
                            .map(|n| n.line)
                            .unwrap_or(t.line)
                    } else {
                        t.line
                    };
                    allows.push(Allow {
                        rule,
                        line: t.line,
                        col: t.col,
                        target_line,
                        reason,
                    });
                }
                None => malformed.push((t.line, t.col)),
            }
        }
        SourceFile {
            path: path.to_string(),
            text,
            tokens,
            code,
            allows,
            scratch_marker_lines,
            malformed,
        }
    }

    /// Comment tokens that contained `pim-lint:` but parsed as neither
    /// `scratch` nor a well-formed `allow(rule) -- reason`.
    pub fn malformed_directives(&self) -> &[(usize, usize)] {
        &self.malformed
    }
}

/// Parses `allow(<rule>) -- <reason>`; `None` when malformed or the
/// reason is missing/empty.
fn parse_allow(directive: &str) -> Option<(String, String)> {
    let rest = directive.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

/// Where a file sits in the workspace — rules scope themselves on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name (`core`, `netsim`, …), `"workspace-root"`
    /// for the umbrella crate's `src/` and root `tests/`/`examples/`.
    pub crate_name: String,
    pub kind: FileKind,
}

/// The target kind a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of some crate — code that can feed golden output.
    Src,
    /// Integration tests (`tests/`).
    Test,
    /// Criterion benches (`benches/`).
    Bench,
    /// `examples/`.
    Example,
}

/// Classifies a workspace-relative, `/`-separated path.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (String, &[&str]) =
        if parts.first() == Some(&"crates") && parts.len() > 2 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("workspace-root".to_string(), &parts[..])
        };
    let kind = match rest.first() {
        Some(&"tests") => FileKind::Test,
        Some(&"benches") => FileKind::Bench,
        Some(&"examples") => FileKind::Example,
        _ => FileKind::Src,
    };
    FileClass { crate_name, kind }
}

/// Lints one parsed file with every applicable rule, applying allow
/// suppression and emitting the engine's own `malformed-allow` /
/// `unused-allow` diagnostics.
pub fn lint_file(sf: &SourceFile, rules: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let class = classify(&sf.path);
    let mut raw = Vec::new();
    for rule in rules {
        if rule.applies(&class) {
            raw.extend(rule.check(sf));
        }
    }
    let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
    let mut out = Vec::new();
    let mut used = vec![false; sf.allows.len()];
    for d in raw {
        let suppressed = sf
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == d.rule && a.target_line == d.line);
        match suppressed {
            Some((i, _)) => used[i] = true,
            None => out.push(d),
        }
    }
    for (line, col) in sf.malformed_directives() {
        out.push(Diagnostic {
            path: sf.path.clone(),
            line: *line,
            col: *col,
            rule: "malformed-allow",
            msg: "unparseable pim-lint directive; expected `allow(<rule>) -- <reason>` \
                  (the reason is mandatory) or `scratch`"
                .to_string(),
        });
    }
    for (a, used) in sf.allows.iter().zip(&used) {
        if !known.contains(&a.rule.as_str()) {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: a.line,
                col: a.col,
                rule: "malformed-allow",
                msg: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !used {
            out.push(Diagnostic {
                path: sf.path.clone(),
                line: a.line,
                col: a.col,
                rule: "unused-allow",
                msg: format!(
                    "allow({}) suppresses nothing on line {}; delete it",
                    a.rule, a.target_line
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Walks the workspace from `root` and returns every `.rs` file the
/// linter owns, sorted, as workspace-relative `/`-separated paths.
///
/// Excluded: `vendor/` (third-party subsets, not ours), `target/`,
/// hidden directories, and the linter's own fixture corpus (which
/// contains violations *on purpose*).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "vendor"
                    || name == "target"
                    || name == "fixtures"
                    || name.starts_with('.')
                {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints `files` (workspace-relative paths under `root`) with the full
/// rule set; diagnostics come back sorted by path, then position.
pub fn run(root: &Path, files: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    let rules = rules::all_rules();
    let mut out = Vec::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let sf = SourceFile::parse(rel, text);
        out.extend(lint_file(&sf, &rules));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/sweep.rs"),
            FileClass {
                crate_name: "core".into(),
                kind: FileKind::Src
            }
        );
        assert_eq!(
            classify("crates/netsim/tests/props.rs").kind,
            FileKind::Test
        );
        assert_eq!(classify("crates/bench/benches/b.rs").kind, FileKind::Bench);
        assert_eq!(classify("src/lib.rs").crate_name, "workspace-root");
        assert_eq!(classify("tests/smoke.rs").kind, FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Example);
    }

    #[test]
    fn allow_parsing_demands_a_reason() {
        assert!(parse_allow("allow(env-read) -- sole chokepoint").is_some());
        assert!(parse_allow("allow(env-read)").is_none());
        assert!(parse_allow("allow(env-read) --   ").is_none());
        assert!(parse_allow("allow() -- reason").is_none());
        assert!(parse_allow("allow(bad rule) -- reason").is_none());
    }

    #[test]
    fn trailing_vs_own_line_allow_targets() {
        let src = "// pim-lint: allow(truncating-cast) -- next line\nlet a = x as u32;\nlet b = y as u16; // pim-lint: allow(truncating-cast) -- same line\n";
        let sf = SourceFile::parse("crates/core/src/f.rs", src.to_string());
        assert_eq!(sf.allows.len(), 2);
        assert_eq!(sf.allows[0].target_line, 2);
        assert_eq!(sf.allows[1].target_line, 3);
    }
}

//! The rule catalogue. Every rule works on the comment-free code-token
//! view of a [`SourceFile`] and scopes itself by [`FileClass`] — see
//! `docs/LINT.md` for the human-facing catalogue and the rationale
//! behind each rule.

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, FileClass, FileKind, SourceFile};

/// One static-analysis rule.
pub trait Rule {
    /// Stable id used in diagnostics and allow comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn summary(&self) -> &'static str;
    /// Whether this rule runs on files of the given class.
    fn applies(&self, class: &FileClass) -> bool;
    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic>;
}

/// The crates whose code executes *inside* a simulation — where a wall
/// clock or ambient entropy read poisons reproducibility directly.
pub const SIM_CRATES: &[&str] = &["core", "netsim", "mapper", "pim", "thermal"];

/// The full rule set, in catalogue order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnorderedIter),
        Box::new(WallClock),
        Box::new(TruncatingCast),
        Box::new(ScratchReset),
        Box::new(EnvRead),
    ]
}

/// Bounds-checked cursor over the code-only token view.
struct Code<'a> {
    sf: &'a SourceFile,
}

impl<'a> Code<'a> {
    fn new(sf: &'a SourceFile) -> Self {
        Code { sf }
    }

    fn len(&self) -> usize {
        self.sf.code.len()
    }

    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.sf.code.get(i).map(|&ti| &self.sf.tokens[ti])
    }

    fn text(&self, i: usize) -> &'a str {
        self.tok(i).map(|t| t.text(&self.sf.text)).unwrap_or("")
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_keyword(&self.sf.text, kw))
    }

    fn is_ident_tok(&self, i: usize) -> bool {
        self.tok(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(&self.sf.text, c))
    }

    /// True when token `i` is a lone `:` (not part of `::`).
    fn is_single_colon(&self, i: usize) -> bool {
        self.is_punct(i, ':') && !self.is_punct(i + 1, ':') && !(i > 0 && self.is_punct(i - 1, ':'))
    }

    fn diag(&self, i: usize, rule: &'static str, msg: String) -> Diagnostic {
        let t = self.tok(i).expect("diag at valid token");
        Diagnostic {
            path: self.sf.path.clone(),
            line: t.line,
            col: t.col,
            rule,
            msg,
        }
    }

    /// Index just past the delimiter run opened at `open` (`(`, `[` or
    /// `{`), treating all three bracket kinds as one nesting discipline.
    fn skip_balanced(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while let Some(t) = self.tok(i) {
            match t.text(&self.sf.text) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Index of the opener matching the closer at `close`, scanning
    /// backward.
    fn skip_balanced_back(&self, close: usize) -> usize {
        let mut depth = 0usize;
        let mut i = close;
        loop {
            match self.text(i) {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unordered-iter
// ---------------------------------------------------------------------------

/// Methods whose call on a hash container observes its (randomized, or
/// at best unspecified) iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Hash container type names whose iteration order is unordered.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// No `HashMap`/`HashSet` **iteration** in code that can feed golden
/// output. Keyed lookup (`get`/`insert`/`contains_key`/indexing) is
/// fine — only order-observing operations are flagged. The rule tracks,
/// per file, every binding/field whose declared type or initializer
/// mentions a hash container, then flags `for … in` loops and
/// iteration-method calls whose receiver chain touches one.
pub struct UnorderedIter;

impl UnorderedIter {
    /// Names bound to hash containers in this file: `name: …HashMap…`
    /// (let, field, or parameter type) and `let name = …HashMap…;`.
    fn hash_names(c: &Code<'_>) -> Vec<String> {
        let mut names = Vec::new();
        for i in 0..c.len() {
            // `NAME : <type containing HashMap/HashSet>`
            if c.is_ident_tok(i) && c.is_single_colon(i + 1) {
                if Self::type_mentions_hash(c, i + 2) {
                    names.push(c.text(i).to_string());
                }
                continue;
            }
            // `let [mut] NAME = <expr containing HashMap/HashSet> ;`
            if c.is_kw(i, "let") {
                let mut j = i + 1;
                if c.is_kw(j, "mut") {
                    j += 1;
                }
                if c.is_ident_tok(j) && c.is_punct(j + 1, '=') && !c.is_punct(j + 2, '=') {
                    let mut k = j + 2;
                    let mut steps = 0;
                    while let Some(t) = c.tok(k) {
                        if t.is_punct(&c.sf.text, ';') || steps > 192 {
                            break;
                        }
                        if HASH_TYPES.contains(&t.text(&c.sf.text)) {
                            names.push(c.text(j).to_string());
                            break;
                        }
                        k += 1;
                        steps += 1;
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// Scans a type position starting at `start` until a depth-0
    /// terminator, looking for a hash container name.
    fn type_mentions_hash(c: &Code<'_>, start: usize) -> bool {
        let mut depth = 0i32;
        let mut i = start;
        let mut steps = 0;
        while let Some(t) = c.tok(i) {
            let txt = t.text(&c.sf.text);
            match txt {
                "<" | "(" | "[" => depth += 1,
                ">" => {
                    // `->` return arrows don't close a generic list.
                    if !(i > 0 && c.is_punct(i - 1, '-')) {
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                }
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                "," | ";" | "=" | "{" | "}" if depth == 0 => return false,
                _ => {
                    if HASH_TYPES.contains(&txt) {
                        return true;
                    }
                }
            }
            i += 1;
            steps += 1;
            if steps > 96 {
                return false;
            }
        }
        false
    }

    /// Idents of the postfix receiver chain ending at the `.` at `dot`
    /// (e.g. `self.reports.lock().unwrap()` → [`unwrap`, `lock`,
    /// `reports`, `self`]).
    fn receiver_chain(c: &Code<'_>, dot: usize) -> Vec<String> {
        let mut out = Vec::new();
        if dot == 0 {
            return out;
        }
        let mut i = dot - 1;
        loop {
            let txt = c.text(i);
            match txt {
                ")" | "]" => {
                    let open = c.skip_balanced_back(i);
                    if open == 0 {
                        return out;
                    }
                    i = open - 1;
                    continue;
                }
                "?" => {
                    if i == 0 {
                        return out;
                    }
                    i -= 1;
                    continue;
                }
                _ if c.is_ident_tok(i) => {
                    out.push(txt.to_string());
                    if i >= 1 && c.is_punct(i - 1, '.') {
                        if i < 2 {
                            return out;
                        }
                        i -= 2;
                        continue;
                    }
                    if i >= 2 && c.is_punct(i - 1, ':') && c.is_punct(i - 2, ':') {
                        if i < 3 {
                            return out;
                        }
                        i -= 3;
                        continue;
                    }
                    return out;
                }
                _ => return out,
            }
        }
    }
}

impl Rule for UnorderedIter {
    fn id(&self) -> &'static str {
        "unordered-iter"
    }

    fn summary(&self) -> &'static str {
        "no HashMap/HashSet iteration in code feeding golden output (keyed lookup is fine)"
    }

    fn applies(&self, class: &FileClass) -> bool {
        class.kind == FileKind::Src && class.crate_name != "lint"
    }

    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic> {
        let c = Code::new(sf);
        let names = Self::hash_names(&c);
        if names.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..c.len() {
            // `for PAT in EXPR {` where EXPR touches a hash binding.
            if c.is_kw(i, "for") {
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut in_at = None;
                let mut steps = 0;
                while let Some(t) = c.tok(j) {
                    let txt = t.text(&c.sf.text);
                    match txt {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        "in" if depth == 0 && t.kind == TokenKind::Ident => {
                            in_at = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => {}
                    }
                    j += 1;
                    steps += 1;
                    if steps > 64 {
                        break;
                    }
                }
                if let Some(in_at) = in_at {
                    let mut k = in_at + 1;
                    let mut depth = 0i32;
                    let mut steps = 0;
                    while let Some(t) = c.tok(k) {
                        let txt = t.text(&c.sf.text);
                        match txt {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            _ => {
                                if t.kind == TokenKind::Ident && names.iter().any(|n| n == txt) {
                                    out.push(c.diag(
                                        k,
                                        self.id(),
                                        format!(
                                            "iterating hash-container binding `{txt}` — order \
                                             is unspecified; use a BTreeMap/sorted Vec, or \
                                             allow with a reason if order provably cannot \
                                             reach output"
                                        ),
                                    ));
                                    break;
                                }
                            }
                        }
                        k += 1;
                        steps += 1;
                        if steps > 96 {
                            break;
                        }
                    }
                }
                continue;
            }
            // `<chain>.iter()` style order-observing calls.
            if c.is_punct(i, '.')
                && c.is_ident_tok(i + 1)
                && ITER_METHODS.contains(&c.text(i + 1))
                && c.is_punct(i + 2, '(')
            {
                let chain = Self::receiver_chain(&c, i);
                if let Some(hit) = chain.iter().find(|id| names.contains(id)) {
                    out.push(c.diag(
                        i + 1,
                        self.id(),
                        format!(
                            "`.{}()` observes the unordered iteration of hash-container \
                             binding `{hit}`; use a BTreeMap/sorted Vec, or allow with a \
                             reason if order provably cannot reach output",
                            c.text(i + 1)
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 2: wall-clock
// ---------------------------------------------------------------------------

/// Nondeterminism sources banned inside simulation crates: wall-clock
/// reads and OS-seeded entropy. Simulated time comes from the DES;
/// randomness comes from seeded ChaCha streams.
const CLOCK_ENTROPY: &[&str] = &["Instant", "SystemTime", "thread_rng", "RandomState"];

/// No wall-clock or ambient-entropy source in the simulation crates.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn summary(&self) -> &'static str {
        "no Instant/SystemTime/thread_rng/RandomState in simulation crates"
    }

    fn applies(&self, class: &FileClass) -> bool {
        class.kind == FileKind::Src && SIM_CRATES.contains(&class.crate_name.as_str())
    }

    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic> {
        let c = Code::new(sf);
        let mut out = Vec::new();
        for i in 0..c.len() {
            let txt = c.text(i);
            if c.is_ident_tok(i) && CLOCK_ENTROPY.contains(&txt) {
                out.push(c.diag(
                    i,
                    self.id(),
                    format!(
                        "`{txt}` is a wall-clock/entropy source; simulation code must take \
                         time from the DES and randomness from a seeded stream"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 3: truncating-cast
// ---------------------------------------------------------------------------

/// Integer targets narrower than 64 bits: an `as` cast into one of
/// these can silently drop high bits (the workspace is 64-bit-only, so
/// `as u64`/`as usize`/`as i64` cannot truncate from any integer in
/// use).
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// No silently-truncating `as` casts in `src/` code. Use `From` for
/// provable widenings, `try_from` (or a checked helper such as
/// `topology::narrow`) for narrowings, and an allow comment with a
/// reason where the truncation is the point (bit packing, masking).
pub struct TruncatingCast;

impl Rule for TruncatingCast {
    fn id(&self) -> &'static str {
        "truncating-cast"
    }

    fn summary(&self) -> &'static str {
        "no `as` casts to sub-64-bit integers; use From/try_from or a checked helper"
    }

    fn applies(&self, class: &FileClass) -> bool {
        class.kind == FileKind::Src
    }

    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic> {
        let c = Code::new(sf);
        let mut out = Vec::new();
        for i in 0..c.len() {
            if c.is_kw(i, "as") && c.is_ident_tok(i + 1) && NARROW_INTS.contains(&c.text(i + 1)) {
                out.push(c.diag(
                    i,
                    self.id(),
                    format!(
                        "`as {0}` can silently truncate; use `{0}::from` for a widening, \
                         `{0}::try_from(..)`/`topology::narrow` for a narrowing, or allow \
                         with a reason when truncation is intended",
                        c.text(i + 1)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 4: scratch-reset
// ---------------------------------------------------------------------------

/// Structs that are scratch arenas by convention; others opt in with a
/// `// pim-lint: scratch` marker comment above the declaration.
const KNOWN_SCRATCH: &[&str] = &["SimScratch", "SweepScratch"];

/// Every field of a scratch struct must be named in a `reset*`/`clear*`
/// fn of that struct (in the same file). A field that reset forgets is
/// exactly the stale-scratch bug class the dirty-vs-fresh property
/// tests can only sample.
pub struct ScratchReset;

impl ScratchReset {
    /// `(struct-token-index, name)` of every scratch struct in `sf`.
    fn scratch_structs(c: &Code<'_>) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for i in 0..c.len() {
            if !c.is_kw(i, "struct") || !c.is_ident_tok(i + 1) {
                continue;
            }
            let name = c.text(i + 1);
            let line = c.tok(i).map(|t| t.line).unwrap_or(0);
            let marked =
                c.sf.scratch_marker_lines
                    .iter()
                    .any(|&ml| ml < line && line - ml <= 8);
            if KNOWN_SCRATCH.contains(&name) || marked {
                out.push((i, name.to_string()));
            }
        }
        out
    }

    /// Named fields of the struct declared at token index `si`
    /// (`struct` keyword), as `(code-index, name)`. Empty for tuple and
    /// unit structs.
    fn fields(c: &Code<'_>, si: usize) -> Vec<(usize, String)> {
        let mut i = si + 2; // past `struct NAME`
                            // Skip generics.
        if c.is_punct(i, '<') {
            let mut depth = 0i32;
            while let Some(t) = c.tok(i) {
                match t.text(&c.sf.text) {
                    "<" => depth += 1,
                    ">" if !c.is_punct(i.wrapping_sub(1), '-') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        if !c.is_punct(i, '{') {
            return Vec::new(); // tuple or unit struct
        }
        let body_end = c.skip_balanced(i);
        let mut out = Vec::new();
        let mut j = i + 1;
        while j + 1 < body_end {
            // Skip attributes and visibility.
            if c.is_punct(j, '#') && c.is_punct(j + 1, '[') {
                j = c.skip_balanced(j + 1);
                continue;
            }
            if c.is_kw(j, "pub") {
                j += 1;
                if c.is_punct(j, '(') {
                    j = c.skip_balanced(j);
                }
                continue;
            }
            if c.is_ident_tok(j) && c.is_single_colon(j + 1) {
                out.push((j, c.text(j).to_string()));
                // Skip the type to the field-separating comma.
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < body_end {
                    match c.text(k) {
                        "<" | "(" | "[" => depth += 1,
                        ">" if !c.is_punct(k - 1, '-') => depth -= 1,
                        ")" | "]" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
            j += 1;
        }
        out
    }

    /// Union of ident texts appearing in the bodies of `reset*`/`clear*`
    /// fns of `name`'s impl blocks in this file; `None` when no such fn
    /// exists.
    fn reset_idents(c: &Code<'_>, name: &str) -> Option<Vec<String>> {
        let mut found = false;
        let mut idents = Vec::new();
        let mut i = 0;
        while i < c.len() {
            if !c.is_kw(i, "impl") {
                i += 1;
                continue;
            }
            // Header runs to the first depth-0 `{`.
            let mut j = i + 1;
            let mut mentions = false;
            let mut depth = 0i32;
            while let Some(t) = c.tok(j) {
                let txt = t.text(&c.sf.text);
                match txt {
                    "<" | "(" | "[" => depth += 1,
                    ">" => {
                        if !c.is_punct(j - 1, '-') {
                            depth -= 1;
                        }
                    }
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => break,
                    _ => {
                        if txt == name {
                            mentions = true;
                        }
                    }
                }
                j += 1;
            }
            let body_end = c.skip_balanced(j);
            if !mentions {
                i = body_end;
                continue;
            }
            // Walk the impl body for reset*/clear* fns.
            let mut k = j + 1;
            while k + 1 < body_end {
                if c.is_kw(k, "fn") && c.is_ident_tok(k + 1) {
                    let fname = c.text(k + 1);
                    let is_reset = fname.starts_with("reset") || fname.starts_with("clear");
                    // Find the fn body opener.
                    let mut m = k + 2;
                    let mut d = 0i32;
                    while m < body_end {
                        match c.text(m) {
                            "<" | "(" | "[" => d += 1,
                            ">" if !c.is_punct(m - 1, '-') => d -= 1,
                            ")" | "]" => d -= 1,
                            "{" if d <= 0 => break,
                            ";" if d <= 0 => break, // trait-default-less sig
                            _ => {}
                        }
                        m += 1;
                    }
                    if c.is_punct(m, '{') {
                        let fn_end = c.skip_balanced(m);
                        if is_reset {
                            found = true;
                            for x in m..fn_end {
                                if c.is_ident_tok(x) {
                                    idents.push(c.text(x).to_string());
                                }
                            }
                        }
                        k = fn_end;
                        continue;
                    }
                    k = m + 1;
                    continue;
                }
                k += 1;
            }
            i = body_end;
        }
        if found {
            idents.sort();
            idents.dedup();
            Some(idents)
        } else {
            None
        }
    }
}

impl Rule for ScratchReset {
    fn id(&self) -> &'static str {
        "scratch-reset"
    }

    fn summary(&self) -> &'static str {
        "every field of a scratch struct must be named in its reset*/clear* fn(s)"
    }

    fn applies(&self, class: &FileClass) -> bool {
        class.kind == FileKind::Src
    }

    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic> {
        let c = Code::new(sf);
        let mut out = Vec::new();
        for (si, name) in Self::scratch_structs(&c) {
            let fields = Self::fields(&c, si);
            if fields.is_empty() {
                continue;
            }
            match Self::reset_idents(&c, &name) {
                None => out.push(c.diag(
                    si + 1,
                    self.id(),
                    format!(
                        "scratch struct `{name}` has no reset*/clear* fn in this file; \
                         stale fields survive reuse"
                    ),
                )),
                Some(idents) => {
                    for (fi, fname) in fields {
                        if !idents.iter().any(|id| id == &fname) {
                            out.push(c.diag(
                                fi,
                                self.id(),
                                format!(
                                    "field `{fname}` of scratch struct `{name}` is never \
                                     named in a reset*/clear* fn — a dirty reuse would \
                                     leak it"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 5: env-read
// ---------------------------------------------------------------------------

/// `std::env` readers that make output depend on ambient environment.
const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Ambient environment reads go through the `pim_core::envknobs`
/// chokepoint (allowlisted `PIM_*`/`UPDATE_GOLDEN` knobs) so golden
/// output can never silently depend on an undeclared variable. The
/// chokepoint itself carries the only allow annotations.
pub struct EnvRead;

impl Rule for EnvRead {
    fn id(&self) -> &'static str {
        "env-read"
    }

    fn summary(&self) -> &'static str {
        "env::var only through the pim_core::envknobs allowlist chokepoint"
    }

    fn applies(&self, class: &FileClass) -> bool {
        class.crate_name != "lint"
    }

    fn check(&self, sf: &SourceFile) -> Vec<Diagnostic> {
        let c = Code::new(sf);
        let mut out = Vec::new();
        for i in 0..c.len() {
            if c.tok(i).is_some_and(|t| t.is_ident(&c.sf.text, "env"))
                && c.is_punct(i + 1, ':')
                && c.is_punct(i + 2, ':')
                && c.is_ident_tok(i + 3)
                && ENV_READERS.contains(&c.text(i + 3))
            {
                out.push(c.diag(
                    i + 3,
                    self.id(),
                    format!(
                        "`env::{}` reads ambient environment; go through \
                         `pim_core::envknobs` (allowlisted PIM_*/UPDATE_GOLDEN knobs)",
                        c.text(i + 3)
                    ),
                ));
            }
        }
        out
    }
}

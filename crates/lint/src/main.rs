//! `pim-lint` — the workspace determinism/invariant linter CLI.
//!
//! ```text
//! pim-lint --workspace [--root <dir>] [--summary <file>]
//! pim-lint [--root <dir>] <paths…>
//! pim-lint --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut summary: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root needs a directory"),
            },
            "--summary" => match it.next() {
                Some(s) => summary = Some(PathBuf::from(s)),
                None => return usage("--summary needs a file path"),
            },
            "--help" | "-h" => {
                print!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return usage(&format!("unknown flag `{a}`")),
            _ => paths.push(a),
        }
    }

    if list_rules {
        for rule in lint::rules::all_rules() {
            println!("{:<16} {}", rule.id(), rule.summary());
        }
        println!(
            "{:<16} allow comments must parse and carry a reason",
            "malformed-allow"
        );
        println!(
            "{:<16} allow comments that suppress nothing are stale",
            "unused-allow"
        );
        return ExitCode::SUCCESS;
    }
    if !workspace && paths.is_empty() {
        return usage("nothing to lint: pass --workspace or explicit paths");
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("pim-lint: no workspace root found above the current directory");
                return ExitCode::from(2);
            }
        },
    };

    let files = if workspace {
        match lint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("pim-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for p in &paths {
            let full = root.join(p);
            if full.is_dir() {
                match lint::workspace_files(&full) {
                    Ok(sub) => out.extend(sub.into_iter().map(|s| format!("{p}/{s}"))),
                    Err(e) => {
                        eprintln!("pim-lint: walking {p}: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                out.push(p.clone());
            }
        }
        out
    };

    let diags = match lint::run(&root, &files) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pim-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    let report = render_summary(files.len(), &diags);
    if !diags.is_empty() {
        print!("{report}");
    }
    if let Some(path) = summary {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("pim-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

const USAGE: &str = "\
pim-lint: workspace-wide determinism & invariant static analysis

USAGE:
    pim-lint --workspace [--root <dir>] [--summary <file>]
    pim-lint [--root <dir>] <workspace-relative paths…>
    pim-lint --list-rules

Exit codes: 0 clean, 1 violations, 2 usage/io error.
See docs/LINT.md for the rule catalogue and the allow syntax.
";

fn usage(err: &str) -> ExitCode {
    eprintln!("pim-lint: {err}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Ascends from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The human/CI summary: per-rule counts plus every diagnostic line.
fn render_summary(files: usize, diags: &[lint::Diagnostic]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for d in diags {
        match counts.iter_mut().find(|(r, _)| *r == d.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((d.rule, 1)),
        }
    }
    counts.sort();
    let _ = writeln!(
        out,
        "pim-lint: {} file(s) scanned, {} diagnostic(s)",
        files,
        diags.len()
    );
    for (rule, n) in counts {
        let _ = writeln!(out, "  {rule:<16} {n}");
    }
    for d in diags {
        let _ = writeln!(out, "{d}");
    }
    out
}

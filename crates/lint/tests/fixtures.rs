//! Fixture harness: every `tests/fixtures/*.rs` file declares the
//! virtual workspace path it should be linted as on line 1
//! (`// pim-lint-fixture: <path>`) and marks each expected diagnostic
//! with a `//~ ERROR <rule>` annotation on the offending line. The
//! harness lints each fixture with the full rule set and demands the
//! `(line, rule)` multisets match exactly — a missed violation and a
//! false positive both fail.

use lint::{lint_file, rules::all_rules, SourceFile};

/// `(line, rule)` of every `//~ ERROR <rule>` annotation, 1-based.
fn expectations(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~ ERROR ") {
            rest = &rest[at + "//~ ERROR ".len()..];
            let rule: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(
                !rule.is_empty(),
                "empty //~ ERROR annotation on line {}",
                i + 1
            );
            out.push((i + 1, rule));
        }
    }
    out
}

/// The virtual path declared on the fixture's first line.
fn virtual_path(text: &str) -> &str {
    let first = text.lines().next().unwrap_or("");
    first
        .strip_prefix("// pim-lint-fixture: ")
        .unwrap_or_else(|| {
            panic!("fixture must start with `// pim-lint-fixture: <virtual path>`, got `{first}`")
        })
        .trim()
}

#[test]
fn fixtures_produce_exactly_their_annotated_diagnostics() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let rules = all_rules();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 7,
        "expected at least 7 fixture files, found {}",
        entries.len()
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let vpath = virtual_path(&text).to_string();
        let mut expected = expectations(&text);
        let sf = SourceFile::parse(&vpath, text.clone());
        let mut actual: Vec<(usize, String)> = lint_file(&sf, &rules)
            .into_iter()
            .map(|d| (d.line, d.rule.to_string()))
            .collect();
        expected.sort();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "fixture {} (linted as {vpath}): actual diagnostics (left) disagree \
             with //~ ERROR annotations (right)",
            path.display()
        );
    }
}

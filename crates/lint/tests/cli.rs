//! Exit-code and output contract of the `pim-lint` binary: 0 clean,
//! 1 violations (with `file:line:col: rule:` positions), 2 usage error.

use std::process::Command;

#[test]
fn clean_workspace_exits_zero() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint");
    let out = Command::new(env!("CARGO_BIN_EXE_pim-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(root)
        .output()
        .expect("run pim-lint");
    assert!(
        out.status.success(),
        "expected exit 0 on the workspace\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violations_exit_one_with_positions() {
    let dir = std::env::temp_dir().join(format!("pim-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    // Classified as workspace-root src, so truncating-cast applies.
    std::fs::write(
        dir.join("violating.rs"),
        "pub fn f(x: u64) -> u16 {\n    x as u16\n}\n",
    )
    .expect("write violating file");
    let out = Command::new(env!("CARGO_BIN_EXE_pim-lint"))
        .arg("--root")
        .arg(&dir)
        .arg("violating.rs")
        .output()
        .expect("run pim-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("violating.rs:2:7: truncating-cast:"),
        "diagnostic position missing from:\n{stdout}"
    );
    assert!(
        stdout.contains("1 diagnostic(s)"),
        "summary missing from:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_input_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_pim-lint"))
        .output()
        .expect("run pim-lint");
    assert_eq!(out.status.code(), Some(2));
}

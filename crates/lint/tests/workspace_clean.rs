//! The tree this linter ships in must itself be lint-clean. CI runs the
//! binary too, but enforcing it from `cargo test` means a violation
//! fails the ordinary developer loop, not just the pipeline.

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint");
    let files = lint::workspace_files(root).expect("walk workspace");
    assert!(
        files.len() > 100,
        "workspace walk looks wrong: only {} .rs files found",
        files.len()
    );
    let diags = lint::run(root, &files).expect("lint workspace");
    assert!(
        diags.is_empty(),
        "workspace has pim-lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

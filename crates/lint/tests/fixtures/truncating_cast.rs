// pim-lint-fixture: crates/topology/src/fixture.rs
//! Narrowing-cast fixture: `as` casts into sub-64-bit integers are
//! flagged; widenings via `From`, 64-bit targets, and raw-identifier
//! `r#as` are not.

pub fn casts(n: usize, x: u64) -> u64 {
    let a = n as u32; //~ ERROR truncating-cast
    let b = x as u16; //~ ERROR truncating-cast
    let c = (x & 0xFF) as u8; //~ ERROR truncating-cast
    let widened = u64::from(a) + u64::from(b) + u64::from(c);
    let index = x as usize; // 64-bit target: cannot truncate here
    let r#as = widened; // raw identifier, not the cast keyword
    let masked = r#as as i32; //~ ERROR truncating-cast
    // pim-lint: allow(truncating-cast) -- keeping the masked low byte is the point
    let low = (x & 0xFF) as u8;
    widened + index as u64 + u64::from(low) + u64::from(masked.unsigned_abs())
}

// pim-lint-fixture: crates/netsim/src/fixture.rs
//! Wall-clock fixture: clock and ambient-entropy sources are banned in
//! the simulation crates; time comes from the DES, randomness from
//! seeded streams.

pub fn timing() -> bool {
    let t0 = std::time::Instant::now(); //~ ERROR wall-clock
    let s = std::time::SystemTime::now(); //~ ERROR wall-clock
    s.elapsed().is_ok() && t0.elapsed().as_nanos() > 0
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng(); //~ ERROR wall-clock
    rand::Rng::random(&mut rng)
}

pub fn hasher_state() {
    let _state = std::collections::hash_map::RandomState::new(); //~ ERROR wall-clock
}

pub fn seeded_is_fine(seed: u64) -> u64 {
    // A deterministic, seeded stream is the blessed alternative.
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

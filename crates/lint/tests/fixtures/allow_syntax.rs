// pim-lint-fixture: crates/core/src/fixture.rs
//! Allow-directive fixture: own-line and trailing suppression, the
//! mandatory reason, unknown rule names, and stale allows.

pub fn suppressed(x: u64) -> u64 {
    // pim-lint: allow(truncating-cast) -- the mask makes the low byte the point
    let own_line = (x & 0xFF) as u8;
    let trailing = (x >> 56) as u8; // pim-lint: allow(truncating-cast) -- top byte of the packed key
    u64::from(own_line) + u64::from(trailing)
}

pub fn reason_is_mandatory(x: u64) -> u64 {
    // pim-lint: allow(truncating-cast) //~ ERROR malformed-allow
    let no_reason = x as u8; //~ ERROR truncating-cast
    u64::from(no_reason)
}

// pim-lint: allow(no-such-rule) -- citing a rule that does not exist //~ ERROR malformed-allow
pub fn unknown_rule() {}

// pim-lint: allow(wall-clock) -- nothing on the next line reads a clock //~ ERROR unused-allow
pub fn stale_allow() {}

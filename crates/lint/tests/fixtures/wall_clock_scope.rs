// pim-lint-fixture: crates/bench/src/fixture.rs
//! Scope fixture: the wall-clock rule only covers the simulation
//! crates. The bench crate times real executions on purpose (perf
//! lanes), so this file must produce no diagnostics at all.

pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    f();
    t0.elapsed()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// pim-lint-fixture: crates/netsim/src/fixture.rs
//! Scratch-reset fixture: every field of a marked scratch struct must
//! be named in a `reset*`/`clear*` fn of that struct in the same file.

// pim-lint: scratch
pub struct CoveredScratch {
    items: Vec<u32>,
    total: u64,
}

impl CoveredScratch {
    pub fn reset(&mut self) {
        self.items.clear();
        self.total = 0;
    }
}

// pim-lint: scratch
pub struct LeakyScratch {
    kept: Vec<u32>,
    forgotten: Vec<u32>, //~ ERROR scratch-reset
}

impl LeakyScratch {
    pub fn clear_kept(&mut self) {
        self.kept.clear();
    }

    pub fn push(&mut self, v: u32) {
        self.forgotten.push(v);
    }
}

// pim-lint: scratch
pub struct NoResetScratch { //~ ERROR scratch-reset
    buf: Vec<u64>,
}

impl NoResetScratch {
    pub fn push(&mut self, b: u64) {
        self.buf.push(b);
    }
}

// No marker, no reset fn: an ordinary struct, not a scratch.
pub struct PlainConfig {
    pub width: u16,
    pub height: u16,
}

// pim-lint-fixture: crates/core/src/fixture.rs
//! Unordered-iteration fixture: order-observing operations on hash
//! containers are flagged; keyed lookups are not.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    by_name: HashMap<String, u64>,
}

pub fn observe_order(map: HashMap<String, u64>, set: HashSet<u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in &map { //~ ERROR unordered-iter
        sum += v;
    }
    for v in &set { //~ ERROR unordered-iter
        sum += v;
    }
    sum + map.values().sum::<u64>() //~ ERROR unordered-iter
}

pub fn method_chains(reg: &Registry) -> usize {
    let names: Vec<&String> = reg.by_name.keys().collect(); //~ ERROR unordered-iter
    names.len()
}

pub fn drain_is_ordered_observation() -> usize {
    let mut counts = HashMap::new();
    counts.insert("a", 1u64);
    counts.drain().count() //~ ERROR unordered-iter
}

pub fn keyed_lookups_are_fine(map: &HashMap<String, u64>, set: &HashSet<u64>) -> u64 {
    let hit = map.get("alpha").copied().unwrap_or(0);
    let present = u64::from(set.contains(&hit));
    hit + present + map["alpha"]
}

pub fn vec_iteration_is_fine(rows: &[u64]) -> u64 {
    let owned: Vec<u64> = rows.to_vec();
    let mut sum = 0;
    for r in &owned {
        sum += r;
    }
    sum + owned.iter().sum::<u64>()
}

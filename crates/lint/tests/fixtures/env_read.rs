// pim-lint-fixture: crates/core/src/fixture.rs
//! Env-read fixture: ambient environment reads are flagged everywhere;
//! the `pim_core::envknobs` chokepoint (which carries its own allow
//! annotations in the real tree) is the blessed route.

pub fn raw_var() -> Option<String> {
    std::env::var("PIM_FIXTURE_KNOB").ok() //~ ERROR env-read
}

pub fn raw_var_os() -> bool {
    std::env::var_os("PIM_FIXTURE_KNOB").is_some() //~ ERROR env-read
}

pub fn raw_vars() -> usize {
    std::env::vars().count() //~ ERROR env-read
}

use std::env;

pub fn imported_read() -> Option<String> {
    env::var("PIM_FIXTURE_KNOB").ok() //~ ERROR env-read
}

pub fn routed() -> bool {
    // The chokepoint's own module path does not pattern-match `env::var`.
    pim_core::envknobs::flag("PIM_BENCH_NO_CACHE")
}

pub fn not_a_reader() -> std::path::PathBuf {
    // Other std::env items (cwd, temp dir, args) are not flagged.
    std::env::temp_dir()
}

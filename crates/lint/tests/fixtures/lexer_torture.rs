// pim-lint-fixture: crates/core/src/fixture.rs
//! Lexer fixture: rule triggers hidden inside strings, raw strings,
//! byte strings and comments must not fire; the single real violation
//! at the end proves the file is actually scanned.

pub fn torture() -> usize {
    let s = "std::env::var(\"X\") as u16 and Instant::now()";
    let raw = r#"thread_rng() as u8 "quoted" SystemTime"#;
    let bytes = b"env::var as i32";
    // A comment mentioning env::var("HOME"), x as u32, and Instant.
    /* block /* nested env::var */ as u16 Instant */
    let life: &'static str = "x";
    let not_a_lifetime = 'a';
    let escaped = '\'';
    let hex = 0xFFu64;
    let range_count = (0..hex).count(); // `0..` must not lex as a float
    let real = hex as u16; //~ ERROR truncating-cast
    s.len()
        + raw.len()
        + bytes.len()
        + life.len()
        + (not_a_lifetime as usize)
        + (escaped as usize)
        + range_count
        + (real as usize)
}

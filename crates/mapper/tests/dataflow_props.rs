//! Property tests for the dataflow-aware transfer expansion.
//!
//! Two contracts are pinned on random conv stacks and random placements:
//!
//! 1. `transfers_for(.., WeightStationary)` is byte-identical to the
//!    pre-refactor behaviour, reproduced below as a test-only copy of
//!    the seed's fixed spatially-tiled loop;
//! 2. every dataflow mode conserves or strictly reduces the total
//!    transferred bytes relative to that seed scheme — re-stationing and
//!    fused-pipeline elision only ever *replace* a larger activation
//!    slice, never add traffic on top of it.

use std::collections::BTreeMap;

use dnn::{Dataflow, Dataset, GraphBuilder, SegmentGraph};
use mapper::{
    transfers_for, transfers_for_batch, NodeShare, SegmentPlacement, TaskId, TaskPlacement,
    Transfer,
};
use proptest::prelude::*;
use topology::NodeId;

/// Test-only copy of the seed's `placement_transfers`: every segment
/// edge becomes one fixed spatially-tiled activation split between the
/// aligned chiplet shares of each side. The dataflow refactor must keep
/// the weight-stationary mode byte-identical to this loop.
fn seed_tiled_transfers(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
) -> Vec<Transfer> {
    let mut acc: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for e in sg.edges() {
        let src_place = &tp.segments[e.src.index()];
        let dst_place = &tp.segments[e.dst.index()];
        if src_place.shares.is_empty() || dst_place.shares.is_empty() {
            continue;
        }
        let vol = (e.volume * bytes_per_element) as f64;
        let src_total: u64 = src_place.total_weights();
        let dst_total: u64 = dst_place.total_weights();
        if src_total == 0 || dst_total == 0 {
            continue;
        }
        let mut a0 = 0.0f64;
        let mut dst_iter = dst_place.shares.iter();
        let mut dst_cur = dst_iter.next().expect("non-empty dst");
        let mut c0 = 0.0f64;
        let mut c1 = dst_cur.weights as f64 / dst_total as f64;
        for a in &src_place.shares {
            let a1 = a0 + a.weights as f64 / src_total as f64;
            loop {
                let overlap = (a1.min(c1) - a0.max(c0)).max(0.0);
                if overlap > 0.0 && a.node != dst_cur.node {
                    let bytes = (vol * overlap).round() as u64;
                    if bytes > 0 {
                        *acc.entry((a.node, dst_cur.node)).or_insert(0) += bytes;
                    }
                }
                if c1 < a1 {
                    match dst_iter.next() {
                        Some(next) => {
                            dst_cur = next;
                            c0 = c1;
                            c1 += dst_cur.weights as f64 / dst_total as f64;
                        }
                        None => break,
                    }
                } else {
                    break;
                }
            }
            a0 = a1;
        }
    }
    acc.into_iter()
        .map(|((src, dst), bytes)| Transfer {
            src,
            dst,
            bytes,
            task: tp.task,
        })
        .collect()
}

/// A random conv stack in the style of the dnn property suite.
fn random_graph(widths: &[u32], with_pool: bool) -> SegmentGraph {
    let mut g = GraphBuilder::new("rand", Dataset::Cifar10);
    let mut cur = g.input();
    for (i, &w) in widths.iter().enumerate() {
        cur = g.conv_bn_relu(cur, &format!("c{i}"), w, 3, 1, 1).unwrap();
        if with_pool && i == 0 {
            cur = g.max_pool(cur, "pool", 2, 2, 0).unwrap();
        }
    }
    let p = g.global_avg_pool(cur, "gap").unwrap();
    g.linear(p, "fc", 10, true).unwrap();
    SegmentGraph::from_layer_graph(&g.build())
}

/// Derives a placement from one `u64` seed per segment: each segment gets
/// 1-3 shares on pseudo-random chiplets with pseudo-random weight splits
/// (a SplitMix64 step per draw keeps the derivation deterministic).
fn random_placement(sg: &SegmentGraph, seeds: &[u64]) -> TaskPlacement {
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let segments = sg
        .segments()
        .iter()
        .map(|seg| {
            let mut state = seeds[seg.id.index() % seeds.len()] ^ seg.id.0 as u64;
            let n_shares = 1 + (next(&mut state) % 3) as usize;
            let shares = (0..n_shares)
                .map(|_| NodeShare {
                    node: NodeId((next(&mut state) % 12) as u32),
                    weights: 1 + next(&mut state) % 997,
                })
                .collect();
            SegmentPlacement {
                segment: seg.id,
                shares,
            }
        })
        .collect();
    TaskPlacement {
        task: TaskId(7),
        model: sg.name().to_string(),
        segments,
    }
}

fn total(ts: &[Transfer]) -> u64 {
    ts.iter().map(|t| t.bytes).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1: weight-stationary is the seed scheme, byte for byte —
    /// same pairs, same order, same rounding.
    #[test]
    fn weight_stationary_is_byte_identical_to_the_seed_scheme(
        widths in prop::collection::vec(8u32..64, 1..8),
        seeds in prop::collection::vec(0u64..u64::MAX, 1..9),
        with_pool in any::<bool>(),
        bpe in 1u64..5,
    ) {
        let sg = random_graph(&widths, with_pool);
        let tp = random_placement(&sg, &seeds);
        let seed = seed_tiled_transfers(&tp, &sg, bpe);
        let ws = transfers_for(&tp, &sg, bpe, Dataflow::WeightStationary);
        prop_assert_eq!(ws, seed);
    }

    /// Contract 2: no dataflow mode ever moves more bytes than the seed
    /// tiled scheme on any placement, at any batch size (the seed scheme
    /// scales linearly with the batch; re-stationing and elision only
    /// ever replace part of it).
    #[test]
    fn every_mode_conserves_or_reduces_total_bytes(
        widths in prop::collection::vec(8u32..64, 1..8),
        seeds in prop::collection::vec(0u64..u64::MAX, 1..9),
        with_pool in any::<bool>(),
        bpe in 1u64..5,
        batch in 1u64..9,
    ) {
        let sg = random_graph(&widths, with_pool);
        let tp = random_placement(&sg, &seeds);
        let ws_total = total(&seed_tiled_transfers(&tp, &sg, bpe)) * batch;
        prop_assert_eq!(
            total(&transfers_for_batch(&tp, &sg, bpe, Dataflow::WeightStationary, batch)),
            ws_total
        );
        for df in Dataflow::all() {
            let t = total(&transfers_for_batch(&tp, &sg, bpe, df, batch));
            prop_assert!(
                t <= ws_total,
                "{df} batch {batch} moved {t} bytes > seed {ws_total}"
            );
        }
    }

    /// Fused-layer elision is real: on a pure chain placed with every
    /// segment on its own chiplet (all edges fusible and cross-node),
    /// fused-layer moves strictly less than the seed scheme.
    #[test]
    fn fused_layer_strictly_reduces_disjoint_chains(
        widths in prop::collection::vec(8u32..64, 2..8),
    ) {
        let sg = random_graph(&widths, false);
        let segments = sg
            .segments()
            .iter()
            .map(|seg| SegmentPlacement {
                segment: seg.id,
                shares: vec![NodeShare {
                    node: NodeId(seg.id.0),
                    weights: seg.params.max(1),
                }],
            })
            .collect();
        let tp = TaskPlacement {
            task: TaskId(0),
            model: sg.name().to_string(),
            segments,
        };
        let ws_total = total(&seed_tiled_transfers(&tp, &sg, 1));
        let fl_total = total(&transfers_for(&tp, &sg, 1, Dataflow::FusedLayer));
        prop_assert!(
            fl_total < ws_total,
            "fused {fl_total} vs seed {ws_total}"
        );
    }
}

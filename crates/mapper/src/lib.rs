//! Dataflow-aware mapping of DNN layers onto PIM chiplet systems.
//!
//! Implements the mapping layer of the DATE 2024 paper: the SFC
//! (Floret) strategy that packs consecutive neural layers onto contiguous
//! chiplets along the space-filling curve ([`map_task_sfc`]), the greedy
//! nearest-hop baseline used for mesh/Kite/SWAP ([`map_task_greedy`]),
//! the queue-based multi-wave scheduler ([`run_queue`]) and the expansion
//! of placements into inter-chiplet transfers ([`wave_transfers`]) that
//! the `netsim` crate replays.
//!
//! # Examples
//!
//! ```
//! use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
//! use mapper::{run_queue, Strategy};
//!
//! let net = build_model(ModelKind::ResNet18, Dataset::ImageNet)?;
//! let task = SegmentGraph::from_layer_graph(&net);
//! let (_, layout) = topology::floret(10, 10, 6)?;
//! let out = run_queue(&vec![task; 10], 100, 1_000_000, &Strategy::sfc(&layout));
//! assert_eq!(out.mapped_tasks(), 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod greedy;
mod placement;
mod scheduler;
pub mod search;
mod sfc;
mod transfers;

pub use arrivals::{
    run_poisson, run_service, sample_arrivals, ArrivalConfig, ArrivalProcess, ServiceOutcome,
};
pub use greedy::{map_task_greedy, GreedyConfig};
pub use placement::{CapacityLedger, MapError, NodeShare, SegmentPlacement, TaskId, TaskPlacement};
pub use scheduler::{
    run_churn, run_churn_with_ledger, run_queue, ChurnOutcome, QueueOutcome, Strategy,
    StrategyKind, Wave,
};
pub use search::{search_model, MappingProblem, SearchOptions, SearchOutcome};
pub use sfc::{contiguity_score, map_task_sfc, sfc_order};
pub use transfers::{
    placement_transfers, transfers_for, transfers_for_batch, transfers_for_batch_into,
    transfers_for_batch_mapped, transfers_for_batch_mapped_into, transfers_for_mapped,
    wave_transfers, wave_transfers_for, Transfer,
};

//! Placement types shared by the SFC and greedy mappers.

use std::fmt;

use dnn::SegmentId;
use serde::{Deserialize, Serialize};
use topology::NodeId;

/// Identifier of a DNN task instance in the workload queue.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A slice of one chiplet's weight capacity allocated to a segment.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NodeShare {
    /// The chiplet/PE.
    pub node: NodeId,
    /// Weights of the segment stored on this chiplet.
    pub weights: u64,
}

/// Where one segment's weights live.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SegmentPlacement {
    /// The segment.
    pub segment: SegmentId,
    /// Chiplet shares in allocation order (empty for the parameter-free
    /// input segment, which rides with the first weighted segment).
    pub shares: Vec<NodeShare>,
}

impl SegmentPlacement {
    /// Nodes this placement touches.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.shares.iter().map(|s| s.node)
    }

    /// Total weights placed.
    pub fn total_weights(&self) -> u64 {
        self.shares.iter().map(|s| s.weights).sum()
    }
}

/// A fully mapped DNN task.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TaskPlacement {
    /// Task id in the workload queue.
    pub task: TaskId,
    /// Model name for reporting.
    pub model: String,
    /// Per-segment placements, indexed by segment id.
    pub segments: Vec<SegmentPlacement>,
}

impl TaskPlacement {
    /// Distinct chiplets used by this task.
    pub fn used_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.segments.iter().flat_map(|s| s.nodes()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Error produced when a task cannot be mapped.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MapError {
    /// Not enough free weight capacity anywhere in the system.
    InsufficientCapacity {
        /// Weights the task still needs.
        needed: u64,
        /// Weights available.
        available: u64,
    },
    /// The locality constraint could not be met (greedy baseline): no free
    /// chiplet within the radius of the previous layer's chiplets.
    NoNearbyChiplet {
        /// Segment that failed.
        segment: SegmentId,
        /// Hop radius that was searched.
        radius: u32,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InsufficientCapacity { needed, available } => write!(
                f,
                "insufficient capacity: need {needed} weights, {available} free"
            ),
            MapError::NoNearbyChiplet { segment, radius } => write!(
                f,
                "no free chiplet within {radius} hops for segment {segment:?}"
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// Mutable chiplet-capacity ledger for one mapping wave.
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityLedger {
    capacity: u64,
    free: Vec<u64>,
    /// Chiplets already touched by any task (a chiplet is never shared
    /// between tasks: independent DNNs keep disjoint resources).
    owner: Vec<Option<TaskId>>,
    /// Chiplets disabled by fault injection; never allocatable.
    failed: Vec<bool>,
}

impl CapacityLedger {
    /// Creates a ledger for `nodes` chiplets of `capacity` weights each.
    pub fn new(nodes: usize, capacity: u64) -> Self {
        CapacityLedger {
            capacity,
            free: vec![capacity; nodes],
            owner: vec![None; nodes],
            failed: vec![false; nodes],
        }
    }

    /// Marks a chiplet as permanently failed: it loses all capacity and
    /// is skipped by every allocator. The SFC mapper then "re-stitches"
    /// the curve around the failure (consecutive layers hop over the dead
    /// chiplet).
    pub fn mark_failed(&mut self, n: NodeId) {
        self.failed[n.index()] = true;
        self.free[n.index()] = 0;
        self.owner[n.index()] = None;
    }

    /// Whether a chiplet is failed.
    pub fn is_failed(&self, n: NodeId) -> bool {
        self.failed[n.index()]
    }

    /// Number of failed chiplets.
    pub fn failed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// Per-chiplet weight capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of chiplets.
    pub fn node_count(&self) -> usize {
        self.free.len()
    }

    /// Free weights on a chiplet.
    pub fn free_on(&self, n: NodeId) -> u64 {
        self.free[n.index()]
    }

    /// Whether the chiplet is entirely unused.
    pub fn is_untouched(&self, n: NodeId) -> bool {
        self.owner[n.index()].is_none()
    }

    /// Whether `task` may take capacity from `n` (unowned or already its,
    /// and not failed).
    pub fn available_to(&self, n: NodeId, task: TaskId) -> bool {
        if self.failed[n.index()] {
            return false;
        }
        match self.owner[n.index()] {
            None => self.free[n.index()] > 0,
            Some(t) => t == task && self.free[n.index()] > 0,
        }
    }

    /// Total free weights across chiplets available to `task`.
    pub fn total_available_to(&self, task: TaskId) -> u64 {
        (0..self.free.len())
            .filter(|&i| self.available_to(NodeId(topology::narrow::u32_idx(i)), task))
            .map(|i| self.free[i])
            .sum()
    }

    /// Takes up to `want` weights from `n` for `task`, returning the
    /// amount actually taken.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the chiplet belongs to another task.
    pub fn take(&mut self, n: NodeId, task: TaskId, want: u64) -> u64 {
        debug_assert!(
            self.owner[n.index()].is_none() || self.owner[n.index()] == Some(task),
            "chiplet {n} owned by another task"
        );
        let got = want.min(self.free[n.index()]);
        if got > 0 {
            self.free[n.index()] -= got;
            self.owner[n.index()] = Some(task);
        }
        got
    }

    /// Releases every chiplet owned by `task` (task completion). Failed
    /// chiplets stay failed.
    pub fn release_task(&mut self, task: TaskId) {
        for i in 0..self.free.len() {
            if self.owner[i] == Some(task) && !self.failed[i] {
                self.owner[i] = None;
                self.free[i] = self.capacity;
            }
        }
    }

    /// Number of chiplets owned by any task.
    pub fn used_nodes(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Fraction of chiplets owned by any task.
    pub fn utilization(&self) -> f64 {
        self.used_nodes() as f64 / self.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_take_and_release() {
        let mut led = CapacityLedger::new(4, 100);
        let t = TaskId(0);
        assert_eq!(led.take(NodeId(0), t, 60), 60);
        assert_eq!(led.free_on(NodeId(0)), 40);
        assert_eq!(led.take(NodeId(0), t, 60), 40);
        assert_eq!(led.free_on(NodeId(0)), 0);
        assert_eq!(led.used_nodes(), 1);
        led.release_task(t);
        assert_eq!(led.free_on(NodeId(0)), 100);
        assert_eq!(led.used_nodes(), 0);
    }

    #[test]
    fn ledger_ownership_blocks_other_tasks() {
        let mut led = CapacityLedger::new(2, 100);
        led.take(NodeId(0), TaskId(0), 10);
        assert!(led.available_to(NodeId(0), TaskId(0)));
        assert!(!led.available_to(NodeId(0), TaskId(1)));
        assert!(led.available_to(NodeId(1), TaskId(1)));
        assert_eq!(led.total_available_to(TaskId(1)), 100);
        assert_eq!(led.total_available_to(TaskId(0)), 190);
    }

    #[test]
    fn utilization_counts_touched_nodes() {
        let mut led = CapacityLedger::new(10, 100);
        led.take(NodeId(3), TaskId(0), 1);
        led.take(NodeId(7), TaskId(1), 100);
        assert!((led.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn failed_chiplets_are_never_allocatable() {
        let mut led = CapacityLedger::new(4, 100);
        led.mark_failed(NodeId(1));
        assert!(led.is_failed(NodeId(1)));
        assert_eq!(led.failed_count(), 1);
        assert!(!led.available_to(NodeId(1), TaskId(0)));
        assert_eq!(led.free_on(NodeId(1)), 0);
        assert_eq!(led.total_available_to(TaskId(0)), 300);
    }

    #[test]
    fn release_does_not_resurrect_failed() {
        let mut led = CapacityLedger::new(2, 100);
        led.take(NodeId(0), TaskId(0), 50);
        led.mark_failed(NodeId(0));
        led.release_task(TaskId(0));
        assert!(!led.available_to(NodeId(0), TaskId(1)));
        assert_eq!(led.free_on(NodeId(0)), 0);
    }

    #[test]
    fn task_placement_used_nodes_dedup() {
        let tp = TaskPlacement {
            task: TaskId(0),
            model: "m".into(),
            segments: vec![
                SegmentPlacement {
                    segment: SegmentId(0),
                    shares: vec![NodeShare {
                        node: NodeId(1),
                        weights: 5,
                    }],
                },
                SegmentPlacement {
                    segment: SegmentId(1),
                    shares: vec![
                        NodeShare {
                            node: NodeId(1),
                            weights: 5,
                        },
                        NodeShare {
                            node: NodeId(2),
                            weights: 5,
                        },
                    ],
                },
            ],
        };
        assert_eq!(tp.used_nodes(), vec![NodeId(1), NodeId(2)]);
    }
}

//! Greedy nearest-hop baseline mapping used for the mesh (SIAM), Kite and
//! SWAP NoIs: consecutive DNN layers go to the free chiplets separated by
//! the least number of hops. On multi-hop topologies this fragments the
//! free space and strands unmapped chiplets (Fig. 4).

use dnn::SegmentGraph;
use serde::{Deserialize, Serialize};
use topology::{NodeId, Topology};

use crate::placement::{
    CapacityLedger, MapError, NodeShare, SegmentPlacement, TaskId, TaskPlacement,
};

/// Configuration of the greedy baseline.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GreedyConfig {
    /// Maximum hop distance from the previous layer's chiplets within
    /// which the next layer's chiplets must be found.
    ///
    /// * [`GreedyConfig::contiguous`] uses a small radius — an admission
    ///   model where a DNN *requires* near-contiguous chiplets; tasks that
    ///   cannot find them are not admitted and distant chiplets stay
    ///   unmapped (the Fig. 4 resource-utilization comparison).
    /// * [`GreedyConfig::soft`] uses an unbounded radius — the plain
    ///   "least number of hops" greedy of Section II, which always admits
    ///   but accepts scattered multi-hop placements under fragmentation
    ///   (the Fig. 3/5 latency/energy comparison).
    pub radius: u32,
}

impl GreedyConfig {
    /// Hard-contiguity admission model with the given radius.
    pub fn contiguous(radius: u32) -> Self {
        GreedyConfig { radius }
    }

    /// Unconstrained nearest-hop greedy (always admits given capacity).
    pub fn soft() -> Self {
        GreedyConfig { radius: u32::MAX }
    }
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig { radius: 2 }
    }
}

/// Maps one task with the greedy nearest-hop strategy.
///
/// The first chiplet is the lowest-id untouched chiplet (deterministic
/// corner packing); every subsequent allocation picks the free chiplet
/// with the smallest hop distance to the *previous* segment's chiplets
/// (continuing on the current chiplet counts as distance zero), subject
/// to [`GreedyConfig::radius`].
///
/// # Errors
///
/// Returns [`MapError::InsufficientCapacity`] when total capacity is
/// short, or [`MapError::NoNearbyChiplet`] when the locality constraint
/// cannot be met (the Fig. 4 fragmentation case).
pub fn map_task_greedy(
    ledger: &mut CapacityLedger,
    topo: &Topology,
    apsp: &[Vec<u32>],
    task: TaskId,
    sg: &SegmentGraph,
    cfg: &GreedyConfig,
) -> Result<TaskPlacement, MapError> {
    let needed: u64 = sg.segments().iter().map(|s| s.params).sum();
    let available = ledger.total_available_to(task);
    if needed > available {
        return Err(MapError::InsufficientCapacity { needed, available });
    }

    // Snapshot to roll back on locality failure so a failed task does not
    // strand half-allocated chiplets.
    let snapshot = ledger.clone();

    let mut segments: Vec<SegmentPlacement> = Vec::with_capacity(sg.segment_count());
    let mut prev_nodes: Vec<NodeId> = Vec::new();
    for seg in sg.segments() {
        let mut shares: Vec<NodeShare> = Vec::new();
        let mut remaining = seg.params;
        let mut cur_nodes: Vec<NodeId> = Vec::new();
        while remaining > 0 {
            let anchor: &[NodeId] = if !cur_nodes.is_empty() {
                &cur_nodes
            } else {
                &prev_nodes
            };
            let pick = pick_nearest(ledger, topo, apsp, task, anchor, cfg.radius);
            let Some(node) = pick else {
                *ledger = snapshot;
                return Err(MapError::NoNearbyChiplet {
                    segment: seg.id,
                    radius: cfg.radius,
                });
            };
            let got = ledger.take(node, task, remaining);
            debug_assert!(got > 0);
            remaining -= got;
            if !cur_nodes.contains(&node) {
                cur_nodes.push(node);
            }
            shares.push(NodeShare { node, weights: got });
        }
        if !cur_nodes.is_empty() {
            prev_nodes = cur_nodes;
        }
        segments.push(SegmentPlacement {
            segment: seg.id,
            shares,
        });
    }
    Ok(TaskPlacement {
        task,
        model: sg.name().to_string(),
        segments,
    })
}

/// Picks the free chiplet nearest to `anchor` (hop distance to the
/// closest anchor node, tie-broken by id). With an empty anchor (task
/// start) the radius does not apply and the chiplet with the most free
/// chiplets in its 2-hop neighborhood is chosen — the load-balancing
/// admission heuristic of multi-tenant systems, which gives each task
/// room to grow but scatters concurrent tasks across the grid (the
/// scattered-region picture of Fig. 4).
fn pick_nearest(
    ledger: &CapacityLedger,
    topo: &Topology,
    apsp: &[Vec<u32>],
    task: TaskId,
    anchor: &[NodeId],
    radius: u32,
) -> Option<NodeId> {
    if anchor.is_empty() {
        // Task start: maximize free capacity in the 2-hop neighborhood.
        let mut best: Option<(usize, NodeId)> = None;
        for (i, apsp_row) in apsp.iter().enumerate().take(topo.node_count()) {
            let n = NodeId(topology::narrow::u32_idx(i));
            if !ledger.available_to(n, task) {
                continue;
            }
            let free_near = (0..topo.node_count())
                .filter(|&j| {
                    apsp_row[j] <= 2
                        && ledger.available_to(NodeId(topology::narrow::u32_idx(j)), task)
                })
                .count();
            match best {
                None => best = Some((free_near, n)),
                Some((bf, bn)) => {
                    if free_near > bf || (free_near == bf && n < bn) {
                        best = Some((free_near, n));
                    }
                }
            }
        }
        return best.map(|(_, n)| n);
    }
    let mut best: Option<(u32, NodeId)> = None;
    // `i` is a *column* of `apsp` here (distance from each anchor row), so
    // the range loop stays.
    #[allow(clippy::needless_range_loop)]
    for i in 0..topo.node_count() {
        let n = NodeId(topology::narrow::u32_idx(i));
        if !ledger.available_to(n, task) {
            continue;
        }
        let d = anchor
            .iter()
            .map(|a| apsp[a.index()][i])
            .min()
            .expect("anchor non-empty");
        if d > radius {
            continue;
        }
        match best {
            None => best = Some((d, n)),
            Some((bd, bn)) => {
                if d < bd || (d == bd && n < bn) {
                    best = Some((d, n));
                }
            }
        }
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::{mesh2d, swap, SwapConfig};

    fn resnet18() -> SegmentGraph {
        SegmentGraph::from_layer_graph(
            &build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap(),
        )
    }

    #[test]
    fn greedy_maps_on_mesh() {
        let topo = mesh2d(10, 10).unwrap();
        let apsp = topo.all_pairs_hops();
        let mut led = CapacityLedger::new(100, 2_000_000);
        let tp = map_task_greedy(
            &mut led,
            &topo,
            &apsp,
            TaskId(0),
            &resnet18(),
            &GreedyConfig::default(),
        )
        .unwrap();
        assert!(tp.used_nodes().len() >= 6);
        for (seg, sp) in resnet18().segments().iter().zip(&tp.segments) {
            assert_eq!(sp.total_weights(), seg.params);
        }
    }

    #[test]
    fn greedy_keeps_consecutive_segments_close() {
        let topo = mesh2d(10, 10).unwrap();
        let apsp = topo.all_pairs_hops();
        let mut led = CapacityLedger::new(100, 2_000_000);
        let cfg = GreedyConfig { radius: 2 };
        let tp = map_task_greedy(&mut led, &topo, &apsp, TaskId(0), &resnet18(), &cfg).unwrap();
        for pair in tp.segments.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (Some(la), Some(fb)) = (a.shares.last(), b.shares.first()) else {
                continue;
            };
            let d = apsp[la.node.index()][fb.node.index()];
            assert!(d <= cfg.radius, "consecutive layers {d} hops apart");
        }
    }

    #[test]
    fn greedy_failure_rolls_back() {
        // A radius of zero forces every layer onto the same chiplet, which
        // cannot hold the model -> locality failure, and the ledger must be
        // unchanged afterwards.
        let topo = mesh2d(10, 10).unwrap();
        let apsp = topo.all_pairs_hops();
        let mut led = CapacityLedger::new(100, 2_000_000);
        let cfg = GreedyConfig { radius: 0 };
        let err =
            map_task_greedy(&mut led, &topo, &apsp, TaskId(0), &resnet18(), &cfg).unwrap_err();
        assert!(matches!(err, MapError::NoNearbyChiplet { .. }));
        assert_eq!(led.used_nodes(), 0, "failed mapping must roll back");
    }

    #[test]
    fn swap_fragments_more_than_mesh() {
        // Map tasks until failure on both topologies with the same radius;
        // the sparse small-world SWAP strands more chiplets (Fig. 4).
        let mesh = mesh2d(10, 10).unwrap();
        let sw = swap(10, 10, &SwapConfig::default()).unwrap();
        let sg = resnet18();
        let cfg = GreedyConfig { radius: 2 };
        let mut counts = Vec::new();
        for topo in [&mesh, &sw] {
            let apsp = topo.all_pairs_hops();
            let mut led = CapacityLedger::new(topo.node_count(), 1_000_000);
            let mut mapped = 0u32;
            for t in 0..20 {
                if map_task_greedy(&mut led, topo, &apsp, TaskId(t), &sg, &cfg).is_err() {
                    break;
                }
                mapped += 1;
            }
            counts.push((mapped, led.utilization()));
        }
        let (mesh_mapped, mesh_util) = counts[0];
        let (swap_mapped, swap_util) = counts[1];
        assert!(
            swap_mapped <= mesh_mapped,
            "SWAP should admit no more tasks than mesh ({swap_mapped} vs {mesh_mapped})"
        );
        assert!(
            swap_util <= mesh_util + 1e-9,
            "SWAP utilization {swap_util} should not beat mesh {mesh_util}"
        );
    }

    #[test]
    fn insufficient_capacity_detected_before_allocation() {
        let topo = mesh2d(4, 4).unwrap();
        let apsp = topo.all_pairs_hops();
        let mut led = CapacityLedger::new(16, 1000);
        let err = map_task_greedy(
            &mut led,
            &topo,
            &apsp,
            TaskId(0),
            &resnet18(),
            &GreedyConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MapError::InsufficientCapacity { .. }));
        assert_eq!(led.used_nodes(), 0);
    }
}

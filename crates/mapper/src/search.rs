//! Deterministic per-layer mapping search over the loop-nest space of
//! [`dnn::mapping`].
//!
//! For every segment the search enumerates divisor-based register-tile
//! factors × innermost-loop choices × the fused-pipeline flag, prunes
//! candidates that are Pareto-dominated on (energy, latency) — the model
//! objective `(Σ energy)·(Σ latency)` is strictly increasing in both
//! partial sums, so a dominated candidate can never appear in an optimal
//! assignment — and then runs a fixed-width beam over the segment
//! sequence to minimize whole-model compute energy×latency
//! ([`search_model`]).
//!
//! Everything is deterministic: candidate order is fixed, ties break on
//! the lower candidate index, and no randomness is consumed. The same
//! space is also exposed to the stochastic `opt` solvers (NSGA-II / SA)
//! through [`MappingProblem`], an [`opt::Problem`] whose solutions are
//! per-segment candidate indices.

use dnn::mapping::Loop;
use dnn::{Mapping, ModelMapping, Segment, SegmentGraph};
use opt::Problem;
use pim::{segment_cost_mapped, PimConfig};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Tuning knobs of the deterministic search.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SearchOptions {
    /// Deepest register tile considered (candidate tiles are the
    /// divisor-friendly factors `1, 2, 4, …` up to this cap, clamped to
    /// each loop extent).
    pub max_reg_tile: u64,
    /// Beam width of the whole-model pass: partial assignments kept per
    /// segment step.
    pub beam_width: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_reg_tile: 16,
            beam_width: 8,
        }
    }
}

/// Result of [`search_model`]: the winning mapping plus search-effort
/// counters (what `pim-bench perf` reports as mappings/sec).
#[derive(Clone, Debug, PartialEq)]
pub struct SearchOutcome {
    /// The searched per-segment mapping.
    pub mapping: ModelMapping,
    /// Candidate mappings costed across all segments (pre-pruning).
    pub candidates_costed: u64,
    /// Model compute energy under the winning mapping, pJ.
    pub energy_pj: f64,
    /// Model compute latency under the winning mapping, ns.
    pub latency_ns: f64,
}

/// One per-segment candidate: the mapping and its segment cost.
#[derive(Clone, Debug)]
struct Candidate {
    mapping: Mapping,
    energy_pj: f64,
    latency_ns: f64,
}

/// Divisor-based register-tile candidates for `extent`: every
/// power-of-two step up to `cap` plus every exact divisor of the extent
/// in range, sorted and deduplicated. Always contains 1.
fn tile_candidates(extent: u64, cap: u64) -> Vec<u64> {
    let cap = cap.min(extent).max(1);
    let mut out: Vec<u64> = Vec::new();
    let mut t = 1u64;
    while t <= cap {
        out.push(t);
        t *= 2;
    }
    for d in 2..=cap {
        if extent % d == 0 {
            out.push(d);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Enumerates, costs and Pareto-prunes the candidate mappings of one
/// segment. `fusible` states whether the segment sits on a fusible edge
/// (only then are fused-pipeline variants legal). The four hand presets
/// are always in the pool, so the searched optimum can never lose to a
/// hand mode on segment compute cost. Returns the surviving candidates
/// in deterministic enumeration order plus the number costed.
fn segment_candidates(
    seg: &Segment,
    cfg: &PimConfig,
    opts: &SearchOptions,
    fusible: bool,
) -> (Vec<Candidate>, u64) {
    let ext = dnn::mapping::LoopExtents::of(seg);
    let mut pool: Vec<Mapping> = Vec::new();
    // Hand presets first: they anchor the space (and the tie-break, so
    // a searched mapping only replaces a preset when strictly better).
    pool.push(Mapping::weight_stationary(seg));
    pool.push(Mapping::output_stationary(seg));
    pool.push(Mapping::input_stationary(seg));
    if fusible {
        pool.push(Mapping::fused_layer(seg));
    }
    // The open space: innermost loop × register tile × fused flag.
    for inner in [Loop::N, Loop::K, Loop::M] {
        for &t in &tile_candidates(ext.extent(inner), opts.max_reg_tile) {
            for fused in [false, true] {
                if fused && !fusible {
                    continue;
                }
                pool.push(Mapping::derived(inner, t, fused, seg));
            }
        }
    }

    let costed = pool.len() as u64;
    let mut cands: Vec<Candidate> = pool
        .into_iter()
        .map(|mapping| {
            let c = segment_cost_mapped(seg, cfg, &mapping);
            Candidate {
                mapping,
                energy_pj: c.energy_pj,
                latency_ns: c.latency_ns,
            }
        })
        .collect();

    // Branch-and-bound style pruning: drop candidates Pareto-dominated
    // on (energy, latency) — they cannot participate in any optimal
    // whole-model assignment — and exact duplicates (first wins, which
    // keeps the preset on ties).
    let mut keep: Vec<Candidate> = Vec::new();
    'outer: for (i, c) in cands.iter().enumerate() {
        for (j, o) in cands.iter().enumerate() {
            let dominated =
                opt::dominates(&[o.energy_pj, o.latency_ns], &[c.energy_pj, c.latency_ns]);
            let duplicate = j < i && o.energy_pj == c.energy_pj && o.latency_ns == c.latency_ns;
            if dominated || duplicate {
                continue 'outer;
            }
        }
        keep.push(c.clone());
    }
    cands = keep;
    (cands, costed)
}

/// One beam state: per-segment candidate indices chosen so far and the
/// running cost sums.
#[derive(Clone, Debug)]
struct BeamState {
    choice: Vec<usize>,
    energy_pj: f64,
    latency_ns: f64,
}

/// Searches a whole-model mapping minimizing compute energy×latency:
/// deterministic beam over the segment sequence with Pareto-pruned
/// per-segment candidates (see the module docs).
///
/// The search never consumes randomness; equal scores resolve to the
/// earlier enumeration index, so repeated calls — from any thread —
/// return bit-identical mappings.
pub fn search_model(sg: &SegmentGraph, cfg: &PimConfig, opts: &SearchOptions) -> SearchOutcome {
    let (per_segment, costed) = candidate_table(sg, cfg, opts);
    let beam_width = opts.beam_width.max(1);

    let mut beam = vec![BeamState {
        choice: Vec::with_capacity(sg.segment_count()),
        energy_pj: 0.0,
        latency_ns: 0.0,
    }];
    for cands in &per_segment {
        let mut next: Vec<BeamState> = Vec::with_capacity(beam.len() * cands.len());
        for state in &beam {
            for (ci, c) in cands.iter().enumerate() {
                let mut choice = state.choice.clone();
                choice.push(ci);
                next.push(BeamState {
                    choice,
                    energy_pj: state.energy_pj + c.energy_pj,
                    latency_ns: state.latency_ns + c.latency_ns,
                });
            }
        }
        // Keep the `beam_width` best partial products. The sort is
        // total: EDP first, then the choice vector (unique per state),
        // so equal-scoring states order deterministically.
        next.sort_by(|a, b| {
            let ea = a.energy_pj * a.latency_ns;
            let eb = b.energy_pj * b.latency_ns;
            ea.partial_cmp(&eb)
                .expect("finite costs")
                .then_with(|| a.choice.cmp(&b.choice))
        });
        next.truncate(beam_width);
        beam = next;
    }

    let best = beam.into_iter().next().expect("non-empty beam");
    let mapping = ModelMapping::from_mappings(
        sg,
        "searched",
        best.choice
            .iter()
            .zip(&per_segment)
            .map(|(&ci, cands)| cands[ci].mapping.clone())
            .collect(),
    );
    let mut out = SearchOutcome {
        mapping,
        candidates_costed: costed,
        energy_pj: best.energy_pj,
        latency_ns: best.latency_ns,
    };

    // Anchor against the four uniform hand presets at the model level.
    // The per-segment pools restrict fused variants to genuinely fusible
    // segments, while the legacy FL mode discounts every segment — so
    // the presets are whole-model candidates too, which is also what
    // guarantees searched ≤ best hand mode by construction. The beam
    // result wins ties (strict inequality), keeping the preference for
    // structurally legal mappings.
    for df in dnn::Dataflow::all() {
        let preset = ModelMapping::preset(df, sg);
        let c = pim::model_cost_mapped(sg, cfg, &preset);
        out.candidates_costed += sg.segment_count() as u64;
        if c.energy_pj * c.latency_ns < out.energy_pj * out.latency_ns {
            out = SearchOutcome {
                mapping: ModelMapping::from_mappings(sg, "searched", preset.mappings().to_vec()),
                candidates_costed: out.candidates_costed,
                energy_pj: c.energy_pj,
                latency_ns: c.latency_ns,
            };
        }
    }
    out
}

/// Builds the Pareto-pruned candidate table for every segment. A segment
/// may use fused variants when any incident edge is fusible.
fn candidate_table(
    sg: &SegmentGraph,
    cfg: &PimConfig,
    opts: &SearchOptions,
) -> (Vec<Vec<Candidate>>, u64) {
    let fusible_edges = sg.fusible_edges();
    let mut fusible_seg = vec![false; sg.segment_count()];
    for (e, f) in sg.edges().iter().zip(&fusible_edges) {
        if *f {
            fusible_seg[e.src.index()] = true;
            fusible_seg[e.dst.index()] = true;
        }
    }
    let mut costed = 0u64;
    let table = sg
        .segments()
        .iter()
        .map(|seg| {
            let (cands, n) = segment_candidates(seg, cfg, opts, fusible_seg[seg.id.index()]);
            costed += n;
            cands
        })
        .collect();
    (table, costed)
}

/// The mapping space as a multi-objective [`opt::Problem`], so NSGA-II
/// and simulated annealing can drive the same per-segment candidate
/// sets the deterministic beam searches. Solutions are per-segment
/// candidate indices; objectives are whole-model compute
/// `[energy_pj, latency_ns]`.
#[derive(Debug)]
pub struct MappingProblem<'a> {
    sg: &'a SegmentGraph,
    candidates: Vec<Vec<Candidate>>,
}

impl<'a> MappingProblem<'a> {
    /// Builds the problem over `sg`'s Pareto-pruned candidate table.
    pub fn new(sg: &'a SegmentGraph, cfg: &PimConfig, opts: &SearchOptions) -> MappingProblem<'a> {
        let (candidates, _) = candidate_table(sg, cfg, opts);
        MappingProblem { sg, candidates }
    }

    /// Materializes a solution into a [`ModelMapping`].
    ///
    /// # Panics
    ///
    /// Panics when `s` has the wrong arity or an index out of range.
    pub fn mapping_for(&self, s: &[usize]) -> ModelMapping {
        assert_eq!(s.len(), self.candidates.len(), "one choice per segment");
        ModelMapping::from_mappings(
            self.sg,
            "searched",
            s.iter()
                .zip(&self.candidates)
                .map(|(&ci, cands)| cands[ci].mapping.clone())
                .collect(),
        )
    }
}

impl Problem for MappingProblem<'_> {
    type Solution = Vec<usize>;

    fn random_solution(&self, rng: &mut ChaCha8Rng) -> Vec<usize> {
        self.candidates
            .iter()
            .map(|cands| rng.random_range(0..cands.len()))
            .collect()
    }

    fn neighbor(&self, s: &Vec<usize>, rng: &mut ChaCha8Rng) -> Vec<usize> {
        let mut out = s.clone();
        let i = rng.random_range(0..out.len());
        out[i] = rng.random_range(0..self.candidates[i].len());
        out
    }

    fn objectives(&self, s: &Vec<usize>) -> Vec<f64> {
        let (mut e, mut l) = (0.0, 0.0);
        for (&ci, cands) in s.iter().zip(&self.candidates) {
            e += cands[ci].energy_pj;
            l += cands[ci].latency_ns;
        }
        vec![e, l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataflow, Dataset, ModelKind};
    use rand::SeedableRng;

    fn graph(kind: ModelKind, ds: Dataset) -> SegmentGraph {
        SegmentGraph::from_layer_graph(&build_model(kind, ds).unwrap())
    }

    #[test]
    fn searched_never_loses_to_any_hand_mode_on_compute_edp() {
        let cfg = PimConfig::default();
        let opts = SearchOptions::default();
        for (kind, ds) in [
            (ModelKind::ResNet18, Dataset::ImageNet),
            (ModelKind::Vgg11, Dataset::Cifar10),
            (ModelKind::DenseNet169, Dataset::ImageNet),
        ] {
            let sg = graph(kind, ds);
            let out = search_model(&sg, &cfg, &opts);
            let searched = out.energy_pj * out.latency_ns;
            for df in Dataflow::all() {
                let c = pim::model_cost_with(&sg, &cfg, df);
                let hand = c.energy_pj * c.latency_ns;
                assert!(
                    searched <= hand,
                    "{}: searched {searched} > {df} {hand}",
                    sg.name()
                );
            }
            assert!(out.candidates_costed > 0);
        }
    }

    #[test]
    fn search_is_deterministic_and_consistent() {
        let cfg = PimConfig::default();
        let opts = SearchOptions::default();
        let sg = graph(ModelKind::ResNet18, Dataset::ImageNet);
        let a = search_model(&sg, &cfg, &opts);
        let b = search_model(&sg, &cfg, &opts);
        assert_eq!(a, b);
        assert_eq!(a.mapping.fingerprint(), b.mapping.fingerprint());
        // The reported sums match re-costing the returned mapping.
        let c = pim::model_cost_mapped(&sg, &cfg, &a.mapping);
        assert_eq!(c.energy_pj, a.energy_pj);
        assert_eq!(c.latency_ns, a.latency_ns);
    }

    #[test]
    fn beam_width_one_is_greedy_but_still_bounded_by_presets() {
        let cfg = PimConfig::default();
        let sg = graph(ModelKind::Vgg11, Dataset::Cifar10);
        let narrow = search_model(
            &sg,
            &cfg,
            &SearchOptions {
                beam_width: 1,
                ..SearchOptions::default()
            },
        );
        let wide = search_model(&sg, &cfg, &SearchOptions::default());
        let n = narrow.energy_pj * narrow.latency_ns;
        let w = wide.energy_pj * wide.latency_ns;
        assert!(
            w <= n + n * 1e-12,
            "wide beam {w} must not lose to greedy {n}"
        );
    }

    #[test]
    fn tile_candidates_are_divisor_based_and_capped() {
        assert_eq!(tile_candidates(12, 16), vec![1, 2, 3, 4, 6, 8, 12]);
        assert_eq!(tile_candidates(7, 16), vec![1, 2, 4, 7]);
        assert_eq!(tile_candidates(64, 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(tile_candidates(1, 16), vec![1]);
    }

    #[test]
    fn problem_adapter_exposes_the_same_space() {
        let cfg = PimConfig::default();
        let opts = SearchOptions::default();
        let sg = graph(ModelKind::ResNet18, Dataset::ImageNet);
        let problem = MappingProblem::new(&sg, &cfg, &opts);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let beam = search_model(&sg, &cfg, &opts);
        let beam_edp = beam.energy_pj * beam.latency_ns;
        for _ in 0..32 {
            let s = problem.random_solution(&mut rng);
            let o = problem.objectives(&s);
            // Objectives agree with the pim cost of the materialized
            // mapping, and no random point beats the deterministic beam.
            let mm = problem.mapping_for(&s);
            let c = pim::model_cost_mapped(&sg, &cfg, &mm);
            assert_eq!(o, vec![c.energy_pj, c.latency_ns]);
            assert!(beam_edp <= o[0] * o[1] * (1.0 + 1e-12));
            let n = problem.neighbor(&s, &mut rng);
            assert_eq!(n.len(), s.len());
        }
    }
}

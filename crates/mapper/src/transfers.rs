//! Conversion of placements into inter-chiplet transfer descriptors — the
//! traffic that the network simulator replays.

use std::collections::BTreeMap;

use dnn::SegmentGraph;
use serde::{Deserialize, Serialize};
use topology::NodeId;

use crate::placement::{TaskId, TaskPlacement};
use crate::scheduler::Wave;

/// One aggregated point-to-point transfer per inference pass.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Transfer {
    /// Source chiplet.
    pub src: NodeId,
    /// Destination chiplet.
    pub dst: NodeId,
    /// Payload bytes per inference.
    pub bytes: u64,
    /// Owning task (for per-task accounting).
    pub task: TaskId,
}

/// Expands a task placement into inter-chiplet transfers.
///
/// For every segment edge, the activation tensor is treated as spatially
/// partitioned across the chiplet shares of each side in share order
/// (standard tiled PIM inference): source share `k` owns the slice
/// `[a_k, b_k)` of the tensor (proportional to its weight fraction) and
/// sends each destination share the overlap of their slices. The aligned
/// slices keep transfers between *corresponding* chiplets, preserving the
/// total volume exactly.
///
/// Same-chiplet transfers cost nothing on the NoI and are dropped, as are
/// edges from the parameter-free input segment (input frames stream from
/// off-chip I/O, not across the NoI).
pub fn placement_transfers(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
) -> Vec<Transfer> {
    let mut acc: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for e in sg.edges() {
        let src_place = &tp.segments[e.src.index()];
        let dst_place = &tp.segments[e.dst.index()];
        if src_place.shares.is_empty() || dst_place.shares.is_empty() {
            continue;
        }
        let vol = (e.volume * bytes_per_element) as f64;
        let src_total: u64 = src_place.total_weights();
        let dst_total: u64 = dst_place.total_weights();
        if src_total == 0 || dst_total == 0 {
            continue;
        }
        // Cumulative slice boundaries over [0, 1).
        let mut a0 = 0.0f64;
        let mut dst_iter = dst_place.shares.iter();
        let mut dst_cur = dst_iter.next().expect("non-empty dst");
        let mut c0 = 0.0f64;
        let mut c1 = dst_cur.weights as f64 / dst_total as f64;
        for a in &src_place.shares {
            let a1 = a0 + a.weights as f64 / src_total as f64;
            // Advance destination slices overlapping [a0, a1).
            loop {
                let overlap = (a1.min(c1) - a0.max(c0)).max(0.0);
                if overlap > 0.0 && a.node != dst_cur.node {
                    let bytes = (vol * overlap).round() as u64;
                    if bytes > 0 {
                        *acc.entry((a.node, dst_cur.node)).or_insert(0) += bytes;
                    }
                }
                if c1 < a1 {
                    match dst_iter.next() {
                        Some(next) => {
                            dst_cur = next;
                            c0 = c1;
                            c1 += dst_cur.weights as f64 / dst_total as f64;
                        }
                        None => break,
                    }
                } else {
                    break;
                }
            }
            a0 = a1;
        }
    }
    acc.into_iter()
        .map(|((src, dst), bytes)| Transfer {
            src,
            dst,
            bytes,
            task: tp.task,
        })
        .collect()
}

/// Expands every placement of a wave; `graphs[task.index()]` must be the
/// segment graph the task was mapped from.
pub fn wave_transfers(
    wave: &Wave,
    graphs: &[SegmentGraph],
    bytes_per_element: u64,
) -> Vec<Transfer> {
    wave.placements
        .iter()
        .flat_map(|tp| placement_transfers(tp, &graphs[tp.task.index()], bytes_per_element))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CapacityLedger;
    use crate::sfc::map_task_sfc;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::floret;

    fn mapped_resnet18(capacity: u64) -> (TaskPlacement, SegmentGraph) {
        let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let (_, layout) = floret(10, 10, 6).unwrap();
        let order = layout.global_order();
        let mut led = CapacityLedger::new(100, capacity);
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        (tp, sg)
    }

    #[test]
    fn transfers_exist_for_multi_chiplet_tasks() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let ts = placement_transfers(&tp, &sg, 1);
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|t| t.src != t.dst));
        assert!(ts.iter().all(|t| t.bytes > 0));
    }

    #[test]
    fn single_chiplet_task_has_no_noi_traffic() {
        // Capacity large enough for the whole model on one chiplet.
        let (tp, sg) = mapped_resnet18(20_000_000);
        assert_eq!(tp.used_nodes().len(), 1);
        let ts = placement_transfers(&tp, &sg, 1);
        assert!(ts.is_empty());
    }

    #[test]
    fn transfer_volume_scales_with_bytes_per_element() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let t1: u64 = placement_transfers(&tp, &sg, 1)
            .iter()
            .map(|t| t.bytes)
            .sum();
        let t2: u64 = placement_transfers(&tp, &sg, 2)
            .iter()
            .map(|t| t.bytes)
            .sum();
        let ratio = t2 as f64 / t1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn transfer_volume_bounded_by_edge_volume() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let total: u64 = placement_transfers(&tp, &sg, 1)
            .iter()
            .map(|t| t.bytes)
            .sum();
        let upper: u64 = sg.edges().iter().map(|e| e.volume).sum();
        assert!(
            total <= upper + sg.edges().len() as u64,
            "{total} > {upper}"
        );
    }

    #[test]
    fn transfers_are_deduplicated() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let ts = placement_transfers(&tp, &sg, 1);
        let mut pairs: Vec<(NodeId, NodeId)> = ts.iter().map(|t| (t.src, t.dst)).collect();
        let len = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), len);
    }
}

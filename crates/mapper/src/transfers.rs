//! Conversion of placements into inter-chiplet transfer descriptors — the
//! traffic that the network simulator replays.
//!
//! The shape of that traffic depends on the mapping's outermost-level
//! tiles: which operand stays resident in the PIM banks — its
//! [`NoiPolicy`] — decides whether activation slices, staged weight
//! tiles, or only fused-pipeline halo bands cross the NoI.
//! [`transfers_for_batch_mapped`] expands a per-segment
//! [`ModelMapping`]; the [`Dataflow`] entry points ([`transfers_for`])
//! are façades that apply the mode's uniform preset policy;
//! [`placement_transfers`] is the weight-stationary (seed) baseline.

use std::collections::BTreeMap;

use dnn::{Dataflow, ModelMapping, NoiPolicy, SegmentEdge, SegmentGraph};
use serde::{Deserialize, Serialize};
use topology::NodeId;

use crate::placement::{TaskId, TaskPlacement};
use crate::scheduler::Wave;

/// One aggregated point-to-point transfer per inference pass.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Transfer {
    /// Source chiplet.
    pub src: NodeId,
    /// Destination chiplet.
    pub dst: NodeId,
    /// Payload bytes over the expanded window: one inference for
    /// [`transfers_for`]/[`placement_transfers`], the whole batch for
    /// [`transfers_for_batch`].
    pub bytes: u64,
    /// Owning task (for per-task accounting).
    pub task: TaskId,
}

/// Walks the aligned spatial slices of one segment edge.
///
/// The activation tensor is treated as spatially partitioned across the
/// chiplet shares of each side in share order (standard tiled PIM
/// inference): source share `k` owns the slice `[a_k, b_k)` of the tensor
/// (proportional to its weight fraction). `f` is invoked once per
/// `(source node, destination node, overlap fraction)` with overlap > 0,
/// including same-node pairs — callers decide what a pair costs.
fn for_each_aligned_pair<F: FnMut(NodeId, NodeId, f64)>(
    src_place: &crate::placement::SegmentPlacement,
    dst_place: &crate::placement::SegmentPlacement,
    mut f: F,
) {
    let src_total: u64 = src_place.total_weights();
    let dst_total: u64 = dst_place.total_weights();
    if src_total == 0 || dst_total == 0 {
        return;
    }
    // Cumulative slice boundaries over [0, 1).
    let mut a0 = 0.0f64;
    let mut dst_iter = dst_place.shares.iter();
    let mut dst_cur = dst_iter.next().expect("non-empty dst");
    let mut c0 = 0.0f64;
    let mut c1 = dst_cur.weights as f64 / dst_total as f64;
    for a in &src_place.shares {
        let a1 = a0 + a.weights as f64 / src_total as f64;
        // Advance destination slices overlapping [a0, a1).
        loop {
            let overlap = (a1.min(c1) - a0.max(c0)).max(0.0);
            if overlap > 0.0 {
                f(a.node, dst_cur.node, overlap);
            }
            if c1 < a1 {
                match dst_iter.next() {
                    Some(next) => {
                        dst_cur = next;
                        c0 = c1;
                        c1 += dst_cur.weights as f64 / dst_total as f64;
                    }
                    None => break,
                }
            } else {
                break;
            }
        }
        a0 = a1;
    }
}

/// Where an expansion takes each edge's NoI policy from: one uniform
/// policy (the [`Dataflow`] façade) or the consumer segment's resolved
/// mapping.
enum Policies<'a> {
    /// Every edge uses the same policy.
    Uniform(NoiPolicy),
    /// `per_segment[dst.index()]` decides each edge (the consumer's
    /// mapping owns the edge: its residency is what gets staged).
    PerSegment(&'a [NoiPolicy]),
}

impl Policies<'_> {
    fn for_dst(&self, dst_index: usize) -> NoiPolicy {
        match self {
            Policies::Uniform(p) => *p,
            Policies::PerSegment(ps) => ps[dst_index],
        }
    }

    fn any_fused(&self) -> bool {
        match self {
            Policies::Uniform(p) => *p == NoiPolicy::FusedHalo,
            Policies::PerSegment(ps) => ps.contains(&NoiPolicy::FusedHalo),
        }
    }
}

/// One transfer expansion in progress: the placement/graph pair being
/// expanded and the per-edge NoI policies, element width and batch it
/// is costed under.
struct Expansion<'a> {
    tp: &'a TaskPlacement,
    sg: &'a SegmentGraph,
    bytes_per_element: u64,
    policies: Policies<'a>,
    batch: u64,
}

impl Expansion<'_> {
    /// Accumulates one edge's cross-chiplet traffic into the
    /// `(src, dst) -> bytes` map, for the expansion's batch of frames.
    /// `fusible` states whether a fused-layer pipeline may elide this
    /// edge.
    ///
    /// Re-stationing ([`NoiPolicy::StageOncePerBatch`] /
    /// [`NoiPolicy::StagePerFrame`]) moves the consumer's computation to
    /// the producer's chiplets: the consumer's weight tile crosses
    /// dst → src and the produced output slice always streams back
    /// src → dst, so every tensor ends the edge where downstream edges
    /// expect it. Psum residency (OS) stages the weight tile *once per
    /// batch*; without it (IS) the tile re-stages every frame — which is
    /// exactly why re-stationing decisions are made on batch totals, not
    /// per frame.
    fn accumulate_edge(
        &self,
        acc: &mut BTreeMap<(NodeId, NodeId), u64>,
        e: &SegmentEdge,
        fusible: bool,
    ) {
        let Expansion {
            tp,
            sg,
            bytes_per_element,
            ref policies,
            batch,
        } = *self;
        let src_place = &tp.segments[e.src.index()];
        let dst_place = &tp.segments[e.dst.index()];
        if src_place.shares.is_empty() || dst_place.shares.is_empty() {
            return;
        }
        let vol = (e.volume * bytes_per_element) as f64;
        let dst_seg = sg.segment(e.dst);
        let weight_bytes = (dst_seg.params * bytes_per_element) as f64;
        let out_bytes = (dst_seg.out_activations * bytes_per_element) as f64;
        let policy = policies.for_dst(e.dst.index());
        let mut add = |from: NodeId, to: NodeId, bytes: u64| {
            if bytes > 0 {
                *acc.entry((from, to)).or_insert(0) += bytes;
            }
        };
        for_each_aligned_pair(src_place, dst_place, |sn, dn, overlap| {
            if sn == dn {
                // Same-chiplet pairs cost nothing on the NoI in every mode.
                return;
            }
            // Per-frame slice sizes; `act` is what the tiled path moves.
            let act = (vol * overlap).round() as u64;
            let reload = (weight_bytes * overlap).round() as u64;
            let writeback = (out_bytes * overlap).round() as u64;
            match policy {
                // Weights never move: the activation slice crosses per frame
                // (seed scheme; WS).
                NoiPolicy::Tiled => add(sn, dn, act * batch),
                // Psums accumulate in the borrowed crossbars: one weight-tile
                // stage for the whole batch, one output slice back per frame
                // — where that beats the tiled path (OS).
                NoiPolicy::StageOncePerBatch => {
                    if reload + writeback * batch < act * batch {
                        add(dn, sn, reload);
                        add(sn, dn, writeback * batch);
                    } else {
                        add(sn, dn, act * batch);
                    }
                }
                // Only the input slice is resident: no psum residency means
                // the weight tile re-stages every frame alongside the output
                // write-back (IS).
                NoiPolicy::StagePerFrame => {
                    if (reload + writeback) * batch < act * batch {
                        add(dn, sn, reload * batch);
                        add(sn, dn, writeback * batch);
                    } else {
                        add(sn, dn, act * batch);
                    }
                }
                // Fusible edges keep the intermediate tensor inside the tile
                // pipeline; only the halo band crosses. Everything else falls
                // back to the tiled path (FL).
                NoiPolicy::FusedHalo => {
                    if fusible {
                        let halo = (vol * overlap * Dataflow::FUSED_HALO_FRACTION).round() as u64;
                        add(sn, dn, halo * batch);
                    } else {
                        add(sn, dn, act * batch);
                    }
                }
            }
        });
    }
}

/// Expands a task placement into the inter-chiplet transfers of one
/// inference under `dataflow` — [`transfers_for_batch`] with a batch of
/// one.
pub fn transfers_for(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    dataflow: Dataflow,
) -> Vec<Transfer> {
    transfers_for_batch(tp, sg, bytes_per_element, dataflow, 1)
}

/// Expands a task placement into the inter-chiplet transfers implied by
/// `dataflow` for `batch` back-to-back inference frames (see
/// [`Dataflow`] for the per-mode movement accounting).
///
/// Batching matters to the dataflow: output-stationary stages a weight
/// tile *once* for the whole batch, so re-stationing can win at batch
/// granularity where it loses per frame. Re-stationing applies per
/// aligned share pair and only where the staged tensors are strictly
/// smaller than the batch's activation slices, so for every mode and
/// every batch the total bytes never exceed the weight-stationary
/// baseline (the seed tiled scheme of [`placement_transfers`] scaled by
/// `batch`).
///
/// Same-chiplet transfers cost nothing on the NoI and are dropped, as are
/// edges from the parameter-free input segment (input frames stream from
/// off-chip I/O, not across the NoI). Same `(src, dst)` pairs are merged
/// through a [`BTreeMap`], so the emitted order is sorted by
/// `(src, dst)` and independent of the edge iteration order.
pub fn transfers_for_batch(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    dataflow: Dataflow,
    batch: u64,
) -> Vec<Transfer> {
    let mut out = Vec::new();
    transfers_for_batch_into(tp, sg, bytes_per_element, dataflow, batch, &mut out);
    out
}

/// [`transfers_for_batch`] into a caller-owned buffer (cleared first),
/// so sweep scratch reuse skips the per-task output allocation.
pub fn transfers_for_batch_into(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    dataflow: Dataflow,
    batch: u64,
    out: &mut Vec<Transfer>,
) {
    expand_into(
        tp,
        sg,
        bytes_per_element,
        Policies::Uniform(dataflow.noi_policy()),
        batch,
        out,
    );
}

/// Expands a task placement under a resolved per-segment
/// [`ModelMapping`] for one inference frame —
/// [`transfers_for_batch_mapped`] with a batch of one.
pub fn transfers_for_mapped(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    mapping: &ModelMapping,
) -> Vec<Transfer> {
    transfers_for_batch_mapped(tp, sg, bytes_per_element, mapping, 1)
}

/// Expands a task placement into the inter-chiplet transfers implied by
/// a resolved per-segment [`ModelMapping`] for `batch` back-to-back
/// frames.
///
/// Each edge follows the NoI policy of its *consumer* segment's mapping
/// ([`dnn::Mapping::noi_policy`]) — the consumer's operand residency is
/// what decides which tensor gets staged across the edge. A uniform
/// preset mapping is therefore byte-identical to [`transfers_for_batch`]
/// on the matching [`Dataflow`]. Ordering and merge semantics are the
/// same as [`transfers_for_batch`].
///
/// # Panics
///
/// Panics when `mapping` was built for a different segment count.
pub fn transfers_for_batch_mapped(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    mapping: &ModelMapping,
    batch: u64,
) -> Vec<Transfer> {
    let mut out = Vec::new();
    transfers_for_batch_mapped_into(tp, sg, bytes_per_element, mapping, batch, &mut out);
    out
}

/// [`transfers_for_batch_mapped`] into a caller-owned buffer (cleared
/// first).
///
/// # Panics
///
/// Panics when `mapping` was built for a different segment count.
pub fn transfers_for_batch_mapped_into(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    mapping: &ModelMapping,
    batch: u64,
    out: &mut Vec<Transfer>,
) {
    assert_eq!(
        mapping.mappings().len(),
        sg.segment_count(),
        "mapping/segment count mismatch for {}",
        sg.name()
    );
    let policies: Vec<NoiPolicy> = mapping.mappings().iter().map(|m| m.noi_policy()).collect();
    expand_into(
        tp,
        sg,
        bytes_per_element,
        Policies::PerSegment(&policies),
        batch,
        out,
    );
}

/// The shared expansion loop behind the enum and mapping entry points,
/// writing into a caller-owned buffer (cleared first). The `(src, dst)`
/// merge map still accumulates per call; only the emitted transfer list
/// reuses capacity.
fn expand_into(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
    policies: Policies<'_>,
    batch: u64,
    out: &mut Vec<Transfer>,
) {
    let fusible = if policies.any_fused() {
        sg.fusible_edges()
    } else {
        Vec::new()
    };
    let exp = Expansion {
        tp,
        sg,
        bytes_per_element,
        policies,
        batch,
    };
    let mut acc: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (ei, e) in sg.edges().iter().enumerate() {
        let f = fusible.get(ei).copied().unwrap_or(false);
        exp.accumulate_edge(&mut acc, e, f);
    }
    out.clear();
    out.extend(acc.into_iter().map(|((src, dst), bytes)| Transfer {
        src,
        dst,
        bytes,
        task: tp.task,
    }));
}

/// Expands a task placement under the weight-stationary (seed) scheme:
/// every segment edge becomes one fixed spatially-tiled activation split
/// between the aligned chiplet shares of each side.
///
/// Equivalent to [`transfers_for`] with
/// [`Dataflow::WeightStationary`] — pinned byte-identical to the
/// pre-dataflow behaviour by the `dataflow_props` suite.
pub fn placement_transfers(
    tp: &TaskPlacement,
    sg: &SegmentGraph,
    bytes_per_element: u64,
) -> Vec<Transfer> {
    transfers_for(tp, sg, bytes_per_element, Dataflow::WeightStationary)
}

/// Expands every placement of a wave under `dataflow`;
/// `graphs[task.index()]` must be the segment graph the task was mapped
/// from.
pub fn wave_transfers_for(
    wave: &Wave,
    graphs: &[SegmentGraph],
    bytes_per_element: u64,
    dataflow: Dataflow,
) -> Vec<Transfer> {
    wave.placements
        .iter()
        .flat_map(|tp| transfers_for(tp, &graphs[tp.task.index()], bytes_per_element, dataflow))
        .collect()
}

/// [`wave_transfers_for`] under the weight-stationary baseline.
pub fn wave_transfers(
    wave: &Wave,
    graphs: &[SegmentGraph],
    bytes_per_element: u64,
) -> Vec<Transfer> {
    wave_transfers_for(wave, graphs, bytes_per_element, Dataflow::WeightStationary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CapacityLedger;
    use crate::sfc::map_task_sfc;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::floret;

    fn mapped_resnet18(capacity: u64) -> (TaskPlacement, SegmentGraph) {
        let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let (_, layout) = floret(10, 10, 6).unwrap();
        let order = layout.global_order();
        let mut led = CapacityLedger::new(100, capacity);
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        (tp, sg)
    }

    fn mapped_vgg11(capacity: u64) -> (TaskPlacement, SegmentGraph) {
        let g = build_model(ModelKind::Vgg11, Dataset::Cifar10).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let (_, layout) = floret(10, 10, 6).unwrap();
        let order = layout.global_order();
        let mut led = CapacityLedger::new(100, capacity);
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        (tp, sg)
    }

    fn total(ts: &[Transfer]) -> u64 {
        ts.iter().map(|t| t.bytes).sum()
    }

    #[test]
    fn transfers_exist_for_multi_chiplet_tasks() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let ts = placement_transfers(&tp, &sg, 1);
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|t| t.src != t.dst));
        assert!(ts.iter().all(|t| t.bytes > 0));
    }

    #[test]
    fn single_chiplet_task_has_no_noi_traffic() {
        // Capacity large enough for the whole model on one chiplet.
        let (tp, sg) = mapped_resnet18(20_000_000);
        assert_eq!(tp.used_nodes().len(), 1);
        for df in Dataflow::all() {
            assert!(transfers_for(&tp, &sg, 1, df).is_empty(), "{df}");
        }
    }

    #[test]
    fn transfer_volume_scales_with_bytes_per_element() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let t1: u64 = total(&placement_transfers(&tp, &sg, 1));
        let t2: u64 = total(&placement_transfers(&tp, &sg, 2));
        let ratio = t2 as f64 / t1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn transfer_volume_bounded_by_edge_volume() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        let total: u64 = total(&placement_transfers(&tp, &sg, 1));
        let upper: u64 = sg.edges().iter().map(|e| e.volume).sum();
        assert!(
            total <= upper + sg.edges().len() as u64,
            "{total} > {upper}"
        );
    }

    #[test]
    fn transfers_are_deduplicated() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        for df in Dataflow::all() {
            let ts = transfers_for(&tp, &sg, 1, df);
            let mut pairs: Vec<(NodeId, NodeId)> = ts.iter().map(|t| (t.src, t.dst)).collect();
            let len = pairs.len();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), len, "{df}");
        }
    }

    #[test]
    fn emitted_order_is_independent_of_edge_iteration_order() {
        // Regression for the deterministic-merge contract: accumulating
        // the edges forward and reversed must produce the same transfer
        // list, because same (src, dst, task) pairs merge through the
        // BTreeMap and the output is its sorted iteration.
        let (tp, sg) = mapped_resnet18(1_000_000);
        for df in Dataflow::all() {
            let fusible = sg.fusible_edges();
            let exp = Expansion {
                tp: &tp,
                sg: &sg,
                bytes_per_element: 2,
                policies: Policies::Uniform(df.noi_policy()),
                batch: 3,
            };
            let mut fwd: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
            let mut rev: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
            for (ei, e) in sg.edges().iter().enumerate() {
                exp.accumulate_edge(&mut fwd, e, fusible[ei]);
            }
            for (ei, e) in sg.edges().iter().enumerate().rev() {
                exp.accumulate_edge(&mut rev, e, fusible[ei]);
            }
            let fwd: Vec<_> = fwd.into_iter().collect();
            let rev: Vec<_> = rev.into_iter().collect();
            assert_eq!(fwd, rev, "{df}");
        }
        // And the public API emits strictly sorted (src, dst) pairs.
        let ts = placement_transfers(&tp, &sg, 2);
        for w in ts.windows(2) {
            assert!((w[0].src, w[0].dst) < (w[1].src, w[1].dst));
        }
    }

    #[test]
    fn every_mode_is_bounded_by_weight_stationary() {
        let (tp, sg) = mapped_resnet18(1_000_000);
        for batch in [1, 8] {
            let ws = total(&transfers_for_batch(
                &tp,
                &sg,
                1,
                Dataflow::WeightStationary,
                batch,
            ));
            for df in Dataflow::all() {
                let t = total(&transfers_for_batch(&tp, &sg, 1, df, batch));
                assert!(t <= ws, "{df} batch {batch}: {t} > WS {ws}");
            }
        }
    }

    #[test]
    fn weight_stationary_batch_scales_linearly() {
        // The WS batch expansion must stay byte-identical to the seed
        // per-inference scheme times the batch (what the platform
        // multiplied by before batching moved into the expansion).
        let (tp, sg) = mapped_resnet18(1_000_000);
        let per_frame = placement_transfers(&tp, &sg, 4);
        let batched = transfers_for_batch(&tp, &sg, 4, Dataflow::WeightStationary, 8);
        assert_eq!(per_frame.len(), batched.len());
        for (f, b) in per_frame.iter().zip(&batched) {
            assert_eq!((f.src, f.dst, f.bytes * 8), (b.src, b.dst, b.bytes));
        }
    }

    #[test]
    fn uniform_preset_mappings_expand_byte_identically_to_the_enum() {
        // The policy-based expansion subsumes the enum match: a uniform
        // preset ModelMapping must reproduce the mode's transfer list
        // exactly — same pairs, same order, same rounding.
        for (tp, sg) in [mapped_resnet18(1_000_000), mapped_vgg11(1_000_000)] {
            for df in Dataflow::all() {
                let mm = dnn::ModelMapping::preset(df, &sg);
                for batch in [1, 8] {
                    assert_eq!(
                        transfers_for_batch(&tp, &sg, 2, df, batch),
                        transfers_for_batch_mapped(&tp, &sg, 2, &mm, batch),
                        "{} {df} batch {batch}",
                        sg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn per_segment_policies_mix_modes_along_the_graph() {
        // A mixed mapping (fused chain except one re-stationed segment)
        // is a point neither enum mode can express, and stays bounded by
        // the WS baseline like every policy arm.
        let (tp, sg) = mapped_vgg11(1_000_000);
        let mut per_seg: Vec<dnn::Mapping> = sg
            .segments()
            .iter()
            .map(dnn::Mapping::fused_layer)
            .collect();
        let mid = sg.segment_count() / 2;
        per_seg[mid] = dnn::Mapping::output_stationary(&sg.segments()[mid]);
        let mixed = dnn::ModelMapping::from_mappings(&sg, "mixed", per_seg);
        let got = total(&transfers_for_batch_mapped(&tp, &sg, 1, &mixed, 8));
        let ws = total(&transfers_for_batch(
            &tp,
            &sg,
            1,
            Dataflow::WeightStationary,
            8,
        ));
        let fl = total(&transfers_for_batch(&tp, &sg, 1, Dataflow::FusedLayer, 8));
        assert!(got <= ws, "mixed {got} > WS {ws}");
        assert_ne!(got, fl, "re-stationing one segment must show up");
    }

    #[test]
    fn fused_layer_elides_chain_traffic() {
        // VGG's segment graph is a pure fusible chain: fused-layer keeps
        // only the halo bands, cutting the traffic by ~8x.
        let (tp, sg) = mapped_vgg11(1_000_000);
        let ws = total(&placement_transfers(&tp, &sg, 1));
        let fl = total(&transfers_for(&tp, &sg, 1, Dataflow::FusedLayer));
        assert!(fl > 0);
        assert!(
            (fl as f64) < 0.2 * ws as f64,
            "fused {fl} vs weight-stationary {ws}"
        );
    }

    #[test]
    fn output_stationary_restations_downsampling_edges() {
        // Re-stationing pays one weight tile (per batch for OS, per
        // frame for IS) plus the output write-back, so it wins exactly
        // where the consumer shrinks the tensor — downsampling edges
        // whose weights are smaller than the saved activation volume.
        // Placed one-segment-per-chiplet (every edge crosses),
        // ResNet-18's stride-2 stage transitions give OS a strict win at
        // batch granularity.
        let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let segments = sg
            .segments()
            .iter()
            .map(|seg| crate::placement::SegmentPlacement {
                segment: seg.id,
                shares: vec![crate::placement::NodeShare {
                    node: NodeId(seg.id.0),
                    weights: seg.params.max(1),
                }],
            })
            .collect();
        let tp = TaskPlacement {
            task: TaskId(0),
            model: sg.name().to_string(),
            segments,
        };
        let batch = 8;
        let ws = total(&transfers_for_batch(
            &tp,
            &sg,
            1,
            Dataflow::WeightStationary,
            batch,
        ));
        let os = total(&transfers_for_batch(
            &tp,
            &sg,
            1,
            Dataflow::OutputStationary,
            batch,
        ));
        let is = total(&transfers_for_batch(
            &tp,
            &sg,
            1,
            Dataflow::InputStationary,
            batch,
        ));
        assert!(os < ws, "OS {os} must beat WS {ws} on stride-2 edges");
        // IS re-stages the weight tile every frame, so it never beats OS.
        assert!(os <= is, "OS {os} vs IS {is}");
        assert!(is <= ws, "IS {is} vs WS {ws}");
    }
}

//! Queue-based multi-wave scheduling of a concurrent DNN workload onto a
//! fixed chiplet system ("the mapping algorithm treats the list of tasks W
//! as a queue, assigning one DNN task at a time").
//!
//! Tasks are admitted from the queue front until one fails to map; that
//! closes the wave — the wave executes, every task completes and releases
//! its chiplets, and the next wave starts with the failed task. The
//! per-wave chiplet utilization at close time is the Fig. 4 metric.

use dnn::SegmentGraph;
use serde::{Deserialize, Serialize};
use topology::{NodeId, Topology};

use crate::greedy::{map_task_greedy, GreedyConfig};
use crate::placement::{CapacityLedger, MapError, TaskId, TaskPlacement};
use crate::sfc::{map_task_sfc, map_task_sfc_from};

/// Named mapping-strategy axis: which [`Strategy`] family to build,
/// independent of the borrowed layout/topology it runs over.
///
/// This is the value that travels through scenario specs and the
/// `pim-bench --strategy` flag (mirroring `NoiArch::from_name`); the
/// platform layer turns it into a concrete [`Strategy`] instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Dataflow-aware SFC mapping along a Floret global order.
    Sfc,
    /// Greedy nearest-hop baseline over an arbitrary topology.
    Greedy,
}

impl StrategyKind {
    /// Every strategy kind, in canonical order.
    pub fn all() -> [StrategyKind; 2] {
        [StrategyKind::Sfc, StrategyKind::Greedy]
    }

    /// Canonical lowercase name (the inverse of [`StrategyKind::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Sfc => "sfc",
            StrategyKind::Greedy => "greedy",
        }
    }

    /// Parses a case-insensitive strategy name (`sfc`, `greedy`).
    pub fn from_name(name: &str) -> Option<StrategyKind> {
        let canonical = name.to_ascii_lowercase();
        StrategyKind::all()
            .into_iter()
            .find(|k| k.name() == canonical)
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StrategyKind::from_name(s)
            .ok_or_else(|| format!("unknown strategy `{s}` (expected sfc or greedy)"))
    }
}

/// Mapping strategy for the scheduler.
#[derive(Clone, Debug)]
pub enum Strategy<'a> {
    /// Dataflow-aware SFC mapping along a Floret global order.
    Sfc {
        /// The SFC order ([`topology::FloretLayout::global_order`]).
        order: Vec<NodeId>,
    },
    /// Greedy nearest-hop baseline over an arbitrary topology.
    Greedy {
        /// The NoI to map onto.
        topo: &'a Topology,
        /// All-pairs hop distances of `topo`.
        apsp: Vec<Vec<u32>>,
        /// Locality constraint.
        cfg: GreedyConfig,
    },
}

impl<'a> Strategy<'a> {
    /// Builds the SFC strategy from a Floret layout.
    pub fn sfc(layout: &topology::FloretLayout) -> Strategy<'a> {
        Strategy::Sfc {
            order: layout.global_order(),
        }
    }

    /// Builds the greedy strategy for a topology.
    pub fn greedy(topo: &'a Topology, cfg: GreedyConfig) -> Strategy<'a> {
        Strategy::Greedy {
            topo,
            apsp: topo.all_pairs_hops(),
            cfg,
        }
    }

    /// The named kind of this strategy instance.
    pub fn kind(&self) -> StrategyKind {
        match self {
            Strategy::Sfc { .. } => StrategyKind::Sfc,
            Strategy::Greedy { .. } => StrategyKind::Greedy,
        }
    }

    fn map_task(
        &self,
        ledger: &mut CapacityLedger,
        cursor: &mut usize,
        task: TaskId,
        sg: &SegmentGraph,
    ) -> Result<TaskPlacement, MapError> {
        match self {
            Strategy::Sfc { order } => {
                let (tp, next) = map_task_sfc_from(ledger, order, *cursor, task, sg)?;
                *cursor = next;
                Ok(tp)
            }
            Strategy::Greedy { topo, apsp, cfg } => {
                map_task_greedy(ledger, topo, apsp, task, sg, cfg)
            }
        }
    }
}

/// One execution wave: the tasks resident together on the system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Wave {
    /// Placements of the admitted tasks.
    pub placements: Vec<TaskPlacement>,
    /// Chiplets owned by any task when the wave closed.
    pub used_nodes: usize,
    /// Fraction of chiplets in use when the wave closed (Fig. 4 metric).
    pub utilization: f64,
}

/// Outcome of scheduling a whole workload queue.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueOutcome {
    /// Execution waves in order.
    pub waves: Vec<Wave>,
    /// Tasks that could not be mapped even on an empty system.
    pub failed: Vec<TaskId>,
}

impl QueueOutcome {
    /// Total tasks successfully placed.
    pub fn mapped_tasks(&self) -> usize {
        self.waves.iter().map(|w| w.placements.len()).sum()
    }

    /// Mean per-wave utilization (resource-usage comparison of Fig. 4).
    pub fn mean_utilization(&self) -> f64 {
        if self.waves.is_empty() {
            return 0.0;
        }
        self.waves.iter().map(|w| w.utilization).sum::<f64>() / self.waves.len() as f64
    }
}

/// Schedules `tasks` (a queue, front first) onto `node_count` chiplets of
/// `capacity` weights each using `strategy`.
///
/// A task that fails on an *empty* system is retried once with the greedy
/// locality constraint lifted (radius = diameter); if it still fails it is
/// recorded in [`QueueOutcome::failed`] and skipped — otherwise the queue
/// would deadlock, mirroring the paper's sequential-queue deadlock-freedom
/// argument.
pub fn run_queue(
    tasks: &[SegmentGraph],
    node_count: usize,
    capacity: u64,
    strategy: &Strategy<'_>,
) -> QueueOutcome {
    let mut ledger = CapacityLedger::new(node_count, capacity);
    let mut waves = Vec::new();
    let mut failed = Vec::new();
    let mut current = Wave {
        placements: Vec::new(),
        used_nodes: 0,
        utilization: 0.0,
    };
    let mut cursor = 0usize;
    let mut idx = 0usize;
    while idx < tasks.len() {
        let task = TaskId(topology::narrow::u32_idx(idx));
        let sg = &tasks[idx];
        match strategy.map_task(&mut ledger, &mut cursor, task, sg) {
            Ok(tp) => {
                current.placements.push(tp);
                idx += 1;
            }
            Err(_) if current.placements.is_empty() => {
                // Empty system and still unmappable: retry unconstrained,
                // then give up on this task.
                let relaxed = match strategy {
                    Strategy::Greedy { topo, apsp, .. } => {
                        let cfg = GreedyConfig {
                            radius: topo.diameter(),
                        };
                        map_task_greedy(&mut ledger, topo, apsp, task, sg, &cfg)
                    }
                    Strategy::Sfc { order } => map_task_sfc(&mut ledger, order, task, sg),
                };
                match relaxed {
                    Ok(tp) => {
                        current.placements.push(tp);
                        idx += 1;
                    }
                    Err(_) => {
                        failed.push(task);
                        idx += 1;
                    }
                }
            }
            Err(_) => {
                // Close the wave; all resident tasks complete and release.
                current.used_nodes = ledger.used_nodes();
                current.utilization = ledger.utilization();
                for tp in &current.placements {
                    ledger.release_task(tp.task);
                }
                waves.push(std::mem::replace(
                    &mut current,
                    Wave {
                        placements: Vec::new(),
                        used_nodes: 0,
                        utilization: 0.0,
                    },
                ));
                cursor = 0; // wave close empties the system
            }
        }
    }
    if !current.placements.is_empty() {
        current.used_nodes = ledger.used_nodes();
        current.utilization = ledger.utilization();
        waves.push(current);
    }
    QueueOutcome { waves, failed }
}

/// Outcome of the dynamic-churn scheduler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// Placement of every successfully mapped task, in admission order.
    /// Each placement reflects the fragmented system state at its
    /// admission time.
    pub placements: Vec<TaskPlacement>,
    /// Tasks that could not be mapped even on an empty system.
    pub failed: Vec<TaskId>,
    /// Mean chiplet utilization sampled right after each admission.
    pub mean_utilization: f64,
    /// Total number of forced task completions (departures) that were
    /// needed to admit the queue — a churn-pressure diagnostic.
    pub departures: usize,
    /// Resident task sets sampled right after each admission, in
    /// admission order (the co-running DNNs whose traffic shares the NoI
    /// at that instant).
    pub snapshots: Vec<Vec<TaskId>>,
}

/// Schedules `tasks` under dynamic churn: tasks are admitted from the
/// queue front; when the head does not fit, the *oldest* resident task
/// completes (FIFO service) and releases its chiplets, and admission is
/// retried. This reproduces the paper's dynamic setting where "as the
/// different DNN tasks complete, the chiplets used for that task need to
/// be reassigned to newer tasks" — the free space fragments, and the
/// quality of each strategy's placements under fragmentation drives the
/// Fig. 3/5 latency and energy gaps.
pub fn run_churn(
    tasks: &[SegmentGraph],
    node_count: usize,
    capacity: u64,
    strategy: &Strategy<'_>,
) -> ChurnOutcome {
    run_churn_with_ledger(tasks, CapacityLedger::new(node_count, capacity), strategy)
}

/// [`run_churn`] with a caller-prepared ledger — use
/// [`CapacityLedger::mark_failed`] beforehand to inject chiplet faults
/// and study graceful degradation (the SFC re-stitches around dead
/// chiplets).
pub fn run_churn_with_ledger(
    tasks: &[SegmentGraph],
    mut ledger: CapacityLedger,
    strategy: &Strategy<'_>,
) -> ChurnOutcome {
    let mut resident: std::collections::VecDeque<TaskId> = std::collections::VecDeque::new();
    let mut placements = Vec::new();
    let mut failed = Vec::new();
    let mut utils = Vec::new();
    let mut departures = 0usize;
    let mut snapshots: Vec<Vec<TaskId>> = Vec::new();
    let mut cursor = 0usize;

    for (idx, sg) in tasks.iter().enumerate() {
        let task = TaskId(topology::narrow::u32_idx(idx));
        loop {
            match strategy.map_task(&mut ledger, &mut cursor, task, sg) {
                Ok(tp) => {
                    resident.push_back(task);
                    placements.push(tp);
                    utils.push(ledger.utilization());
                    snapshots.push(resident.iter().copied().collect());
                    break;
                }
                Err(_) => {
                    if let Some(oldest) = resident.pop_front() {
                        ledger.release_task(oldest);
                        departures += 1;
                    } else {
                        // Empty system: retry unconstrained, else skip.
                        let relaxed = match strategy {
                            Strategy::Greedy { topo, apsp, .. } => {
                                let cfg = GreedyConfig {
                                    radius: topo.diameter(),
                                };
                                map_task_greedy(&mut ledger, topo, apsp, task, sg, &cfg)
                            }
                            Strategy::Sfc { order } => map_task_sfc(&mut ledger, order, task, sg),
                        };
                        match relaxed {
                            Ok(tp) => {
                                resident.push_back(task);
                                placements.push(tp);
                                utils.push(ledger.utilization());
                                snapshots.push(resident.iter().copied().collect());
                            }
                            Err(_) => failed.push(task),
                        }
                        break;
                    }
                }
            }
        }
    }

    ChurnOutcome {
        placements,
        failed,
        mean_utilization: if utils.is_empty() {
            0.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        },
        departures,
        snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::{floret, mesh2d, swap, SwapConfig};

    fn tasks(n: usize) -> Vec<SegmentGraph> {
        let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        vec![sg; n]
    }

    #[test]
    fn sfc_queue_fills_then_waves() {
        let (_, layout) = floret(10, 10, 6).unwrap();
        let strategy = Strategy::sfc(&layout);
        // ResNet18 = 11.7M weights; capacity 1M/chiplet -> ~12 chiplets per
        // task -> 8 tasks per 100-chiplet wave.
        let out = run_queue(&tasks(20), 100, 1_000_000, &strategy);
        assert_eq!(out.mapped_tasks(), 20);
        assert!(out.failed.is_empty());
        assert!(out.waves.len() >= 2, "20 tasks must not fit one wave");
        // Every wave except possibly the last is nearly full.
        for w in &out.waves[..out.waves.len() - 1] {
            assert!(w.utilization > 0.85, "wave util {}", w.utilization);
        }
    }

    #[test]
    fn greedy_mesh_queue_completes() {
        let topo = mesh2d(10, 10).unwrap();
        let strategy = Strategy::greedy(&topo, GreedyConfig { radius: 2 });
        let out = run_queue(&tasks(12), 100, 1_000_000, &strategy);
        assert_eq!(out.mapped_tasks(), 12);
        assert!(out.failed.is_empty());
    }

    #[test]
    fn swap_wastes_resources_vs_floret() {
        // Fig. 4: the application-specific SWAP NoI leaves chiplets
        // unmapped under the greedy strategy, while Floret's SFC mapping
        // utilizes nearly all of them.
        let sw = swap(10, 10, &SwapConfig::default()).unwrap();
        let greedy = Strategy::greedy(&sw, GreedyConfig { radius: 2 });
        let out_swap = run_queue(&tasks(16), 100, 1_000_000, &greedy);

        let (_, layout) = floret(10, 10, 6).unwrap();
        let sfc = Strategy::sfc(&layout);
        let out_floret = run_queue(&tasks(16), 100, 1_000_000, &sfc);

        assert!(
            out_floret.mean_utilization() > out_swap.mean_utilization(),
            "floret util {} must beat swap {}",
            out_floret.mean_utilization(),
            out_swap.mean_utilization()
        );
        assert!(
            out_floret.waves.len() <= out_swap.waves.len(),
            "floret needs no more waves than swap"
        );
    }

    #[test]
    fn impossible_task_is_skipped_not_deadlocked() {
        let (_, layout) = floret(4, 4, 2).unwrap();
        let strategy = Strategy::sfc(&layout);
        // Capacity 1000 weights/chiplet, 16 chiplets: ResNet18 never fits.
        let out = run_queue(&tasks(3), 16, 1000, &strategy);
        assert_eq!(out.mapped_tasks(), 0);
        assert_eq!(out.failed.len(), 3);
    }

    #[test]
    fn churn_admits_everything_eventually() {
        let (_, layout) = floret(10, 10, 6).unwrap();
        let strategy = Strategy::sfc(&layout);
        let out = run_churn(&tasks(30), 100, 1_000_000, &strategy);
        assert_eq!(out.placements.len(), 30);
        assert!(out.failed.is_empty());
        assert!(out.departures > 0, "30 tasks must force departures");
        assert!(out.mean_utilization > 0.5);
    }

    #[test]
    fn churn_floret_stays_contiguous() {
        // FIFO departures + first-fit along the curve act like a ring
        // buffer: every placement stays contiguous along the SFC.
        let (_, layout) = floret(10, 10, 6).unwrap();
        let order = layout.global_order();
        let strategy = Strategy::sfc(&layout);
        let out = run_churn(&tasks(25), 100, 1_000_000, &strategy);
        let late = &out.placements[20]; // placed on a well-churned system
        let score = crate::sfc::contiguity_score(late, &order);
        assert!(
            score < 20.0,
            "late placements should stay near-contiguous, score {score}"
        );
    }

    #[test]
    fn strategy_kind_round_trips_and_rejects() {
        for kind in StrategyKind::all() {
            assert_eq!(StrategyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<StrategyKind>(), Ok(kind));
            assert_eq!(
                kind.name().to_ascii_uppercase().parse::<StrategyKind>(),
                Ok(kind)
            );
        }
        assert!(StrategyKind::from_name("random").is_none());
        let err = "random".parse::<StrategyKind>().unwrap_err();
        assert!(err.contains("random"), "{err}");
    }

    #[test]
    fn strategy_reports_its_kind() {
        let (_, layout) = floret(4, 4, 2).unwrap();
        assert_eq!(Strategy::sfc(&layout).kind(), StrategyKind::Sfc);
        let topo = mesh2d(4, 4).unwrap();
        assert_eq!(
            Strategy::greedy(&topo, GreedyConfig { radius: 2 }).kind(),
            StrategyKind::Greedy
        );
    }

    #[test]
    fn empty_queue_is_empty_outcome() {
        let (_, layout) = floret(4, 4, 2).unwrap();
        let out = run_queue(&[], 16, 1000, &Strategy::sfc(&layout));
        assert!(out.waves.is_empty());
        assert!(out.failed.is_empty());
        assert_eq!(out.mean_utilization(), 0.0);
    }
}

//! Dataflow-aware SFC mapping: neural layers are assigned to contiguous
//! chiplets along the Floret global order, spilling over from the tail of
//! one petal to the head of the next.

use dnn::SegmentGraph;
use topology::{FloretLayout, NodeId};

use crate::placement::{
    CapacityLedger, MapError, NodeShare, SegmentPlacement, TaskId, TaskPlacement,
};

/// Maps one task along the SFC global order using first-fit allocation
/// over free chiplets (in SFC order), packing consecutive segments into
/// the same chiplet until its weight capacity is exhausted.
///
/// The queue-based discipline of the paper (one task mapped at a time,
/// tasks never share a chiplet) is enforced through the ledger's
/// ownership rules, which also gives the deadlock-freedom argument of
/// Section II: tasks are mutually independent and mapped sequentially.
///
/// # Errors
///
/// Returns [`MapError::InsufficientCapacity`] when the free capacity
/// (including chiplets already owned by this task) cannot hold the
/// remaining weights.
pub fn map_task_sfc(
    ledger: &mut CapacityLedger,
    order: &[NodeId],
    task: TaskId,
    sg: &SegmentGraph,
) -> Result<TaskPlacement, MapError> {
    map_task_sfc_from(ledger, order, 0, task, sg).map(|(tp, _)| tp)
}

/// [`map_task_sfc`] with a persistent allocation cursor (next-fit).
///
/// Starting each task where the previous one ended turns the curve into a
/// ring buffer under FIFO task completions: frees accumulate behind the
/// frontier and every allocation stays contiguous — the dynamic
/// reassignment behaviour Section II describes. Returns the placement and
/// the advanced cursor to feed into the next admission.
///
/// # Errors
///
/// Returns [`MapError::InsufficientCapacity`] when the free capacity
/// cannot hold the remaining weights.
pub fn map_task_sfc_from(
    ledger: &mut CapacityLedger,
    order: &[NodeId],
    start_cursor: usize,
    task: TaskId,
    sg: &SegmentGraph,
) -> Result<(TaskPlacement, usize), MapError> {
    let needed: u64 = sg.segments().iter().map(|s| s.params).sum();
    let available = ledger.total_available_to(task);
    if needed > available {
        return Err(MapError::InsufficientCapacity { needed, available });
    }

    let n = order.len();
    let mut segments = Vec::with_capacity(sg.segment_count());
    // Cursor over the SFC order; holds position across segments so that
    // consecutive segments land on the same or the next chiplet. `steps`
    // bounds the scan to one full loop around the ring.
    let mut cursor = start_cursor % n.max(1);
    let mut steps = 0usize;
    for seg in sg.segments() {
        let mut shares: Vec<NodeShare> = Vec::new();
        let mut remaining = seg.params;
        while remaining > 0 {
            // Advance to a chiplet this task can still use, wrapping at
            // most once around the curve.
            while steps < n && !ledger.available_to(order[cursor % n], task) {
                cursor += 1;
                steps += 1;
            }
            if steps >= n {
                return Err(MapError::InsufficientCapacity {
                    needed: remaining,
                    available: 0,
                });
            }
            let node = order[cursor % n];
            let got = ledger.take(node, task, remaining);
            debug_assert!(got > 0);
            remaining -= got;
            shares.push(NodeShare { node, weights: got });
            if ledger.free_on(node) == 0 {
                cursor += 1;
                steps += 1;
            }
        }
        segments.push(SegmentPlacement {
            segment: seg.id,
            shares,
        });
    }
    Ok((
        TaskPlacement {
            task,
            model: sg.name().to_string(),
            segments,
        },
        cursor % n,
    ))
}

/// Convenience: the SFC order of a Floret layout.
pub fn sfc_order(layout: &FloretLayout) -> Vec<NodeId> {
    layout.global_order()
}

/// SFC-order position of every node, dense-indexed by `NodeId`. The ids
/// of an SFC order are dense, so a flat table replaces the hash map the
/// seed used here — a keyed structure was fine for lookups, but a dense
/// one is cheaper and keeps this file trivially inside the
/// `unordered-iter` determinism contract.
fn order_positions(order: &[NodeId]) -> Vec<usize> {
    let max_id = order.iter().map(|n| n.0 as usize).max().unwrap_or(0);
    let mut pos = vec![usize::MAX; max_id + 1];
    for (i, &n) in order.iter().enumerate() {
        pos[n.0 as usize] = i;
    }
    pos
}

/// Mean SFC-order distance between the chiplets of consecutive segments —
/// a contiguity diagnostic (0 means every transition stays on-chiplet or
/// moves to the next chiplet along the curve).
pub fn contiguity_score(tp: &TaskPlacement, order: &[NodeId]) -> f64 {
    let pos = order_positions(order);
    let mut total = 0i64;
    let mut count = 0i64;
    for pair in tp.segments.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let (Some(la), Some(fb)) = (a.shares.last(), b.shares.first()) else {
            continue;
        };
        let pa = pos[la.node.0 as usize] as i64;
        let pb = pos[fb.node.0 as usize] as i64;
        total += (pb - pa).abs().max(1) - 1;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::floret;

    fn ledger100(capacity: u64) -> (CapacityLedger, Vec<NodeId>) {
        let (_, layout) = floret(10, 10, 6).unwrap();
        let order = sfc_order(&layout);
        (CapacityLedger::new(100, capacity), order)
    }

    fn resnet18() -> SegmentGraph {
        SegmentGraph::from_layer_graph(
            &build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap(),
        )
    }

    #[test]
    fn sfc_mapping_is_contiguous() {
        let (mut led, order) = ledger100(2_000_000);
        let sg = resnet18();
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        // ~11.7M weights over 2M/chiplet -> 6 chiplets...
        let used = tp.used_nodes();
        assert!(
            used.len() >= 6,
            "expected multi-chiplet task, used {}",
            used.len()
        );
        // ...and they must be exactly the first chiplets of the SFC order.
        let expect: Vec<NodeId> = order[..used.len()].to_vec();
        let mut sorted_expect = expect.clone();
        sorted_expect.sort_unstable();
        assert_eq!(used, sorted_expect);
        // Perfect contiguity along the fresh curve.
        assert_eq!(contiguity_score(&tp, &order), 0.0);
    }

    #[test]
    fn successive_tasks_pack_back_to_back() {
        let (mut led, order) = ledger100(2_000_000);
        let sg = resnet18();
        let t0 = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        let t1 = map_task_sfc(&mut led, &order, TaskId(1), &sg).unwrap();
        let n0 = t0.used_nodes();
        let n1 = t1.used_nodes();
        assert!(
            n0.iter().all(|n| !n1.contains(n)),
            "tasks never share chiplets"
        );
        // Task 1 continues where task 0 stopped (possibly sharing boundary
        // chiplet is forbidden, so it starts at the next free one).
        let pos = order_positions(&order);
        let max0 = n0.iter().map(|n| pos[n.0 as usize]).max().unwrap();
        let min1 = n1.iter().map(|n| pos[n.0 as usize]).min().unwrap();
        assert!(min1 > max0);
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let (mut led, order) = ledger100(10_000); // tiny chiplets
        let sg = resnet18();
        let err = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap_err();
        assert!(matches!(err, MapError::InsufficientCapacity { .. }));
    }

    #[test]
    fn released_chiplets_are_reused() {
        let (mut led, order) = ledger100(2_000_000);
        let sg = resnet18();
        let t0 = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        let used_before = led.used_nodes();
        led.release_task(TaskId(0));
        let t1 = map_task_sfc(&mut led, &order, TaskId(1), &sg).unwrap();
        assert_eq!(
            t0.used_nodes(),
            t1.used_nodes(),
            "freed chiplets reassigned"
        );
        assert_eq!(led.used_nodes(), used_before);
    }

    #[test]
    fn weights_are_conserved() {
        let (mut led, order) = ledger100(2_000_000);
        let sg = resnet18();
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        for (seg, sp) in sg.segments().iter().zip(&tp.segments) {
            assert_eq!(sp.total_weights(), seg.params, "{}", seg.name);
        }
    }

    #[test]
    fn sfc_restitches_around_failed_chiplets() {
        // Kill a few chiplets mid-curve; the mapping must skip them and
        // still conserve every weight.
        let (mut led, order) = ledger100(2_000_000);
        for &dead in &[order[2], order[3], order[10]] {
            led.mark_failed(dead);
        }
        let sg = resnet18();
        let tp = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        let used = tp.used_nodes();
        assert!(!used.contains(&order[2]));
        assert!(!used.contains(&order[3]));
        assert!(!used.contains(&order[10]));
        for (seg, sp) in sg.segments().iter().zip(&tp.segments) {
            assert_eq!(sp.total_weights(), seg.params, "{}", seg.name);
        }
    }

    #[test]
    fn spillover_wraps_to_freed_holes() {
        // Fill the system with small tasks, free one in the middle, then
        // map a task that must use the freed hole.
        let (mut led, order) = ledger100(200_000);
        let sg = resnet18(); // 11.7M weights -> ~59 chiplets
        let t0 = map_task_sfc(&mut led, &order, TaskId(0), &sg).unwrap();
        assert!(map_task_sfc(&mut led, &order, TaskId(1), &sg).is_err());
        led.release_task(TaskId(0));
        let t2 = map_task_sfc(&mut led, &order, TaskId(2), &sg).unwrap();
        assert_eq!(t0.used_nodes(), t2.used_nodes());
    }
}

//! Event-driven multi-tenant service model: DNN tasks arrive as a Poisson
//! process, hold their chiplets for an exponential service time, and
//! depart — the "datacenter-scale scenario" of Section II with real
//! arrival/departure dynamics instead of the synthetic FIFO churn.

use dnn::SegmentGraph;
use rand::RngExt;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::placement::{CapacityLedger, TaskId, TaskPlacement};
use crate::scheduler::Strategy;

/// Arrival-process configuration (times are in abstract service units).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean inter-arrival time (Poisson process).
    pub mean_interarrival: f64,
    /// Mean service (residency) time per task, exponential.
    pub mean_service: f64,
    /// RNG seed (deterministic per seed).
    pub seed: u64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            mean_interarrival: 1.0,
            mean_service: 8.0,
            seed: 0xA221,
        }
    }
}

/// Outcome of one arrival-process run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceOutcome {
    /// Placement of every admitted task, in admission order.
    pub placements: Vec<TaskPlacement>,
    /// Tasks that could not be mapped even on an empty system.
    pub failed: Vec<TaskId>,
    /// Mean admission wait (admission time minus arrival time).
    pub mean_wait: f64,
    /// Time-weighted mean number of resident tasks.
    pub mean_resident: f64,
    /// Time-weighted chiplet utilization.
    pub utilization: f64,
    /// Time at which the last task departed.
    pub makespan: f64,
}

fn sample_exp(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
    -mean * (1.0 - u).ln()
}

/// Runs the arrival process: `tasks` arrive in order at Poisson times and
/// are admitted FIFO as capacity allows; each resident task departs after
/// its exponential service time and frees its chiplets.
///
/// Placements reflect the fragmented system state at each admission
/// instant, as in [`crate::run_churn`], but the occupancy dynamics are
/// driven by the stochastic arrival/service process rather than forced
/// evictions.
pub fn run_poisson(
    tasks: &[SegmentGraph],
    node_count: usize,
    capacity: u64,
    strategy: &Strategy<'_>,
    cfg: &ArrivalConfig,
) -> ServiceOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // Pre-sample arrival times and service durations for determinism.
    let mut t = 0.0;
    let arrivals: Vec<f64> = tasks
        .iter()
        .map(|_| {
            t += sample_exp(&mut rng, cfg.mean_interarrival);
            t
        })
        .collect();
    let services: Vec<f64> = tasks
        .iter()
        .map(|_| sample_exp(&mut rng, cfg.mean_service))
        .collect();

    let mut ledger = CapacityLedger::new(node_count, capacity);
    let mut cursor = 0usize;
    // Departure min-heap: (time, task).
    let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();
    let to_key = |time: f64| (time * 1e9) as u64;

    let mut placements = Vec::new();
    let mut failed = Vec::new();
    let mut waits = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut now = 0.0f64;
    let mut last_event = 0.0f64;
    let mut util_integral = 0.0f64;
    let mut resident_integral = 0.0f64;
    let mut resident = 0usize;
    let mut next_arrival = 0usize;
    let mut admitted_at: Vec<f64> = vec![0.0; tasks.len()];

    let advance = |now: f64,
                   last: &mut f64,
                   ui: &mut f64,
                   ri: &mut f64,
                   ledger: &CapacityLedger,
                   resident: usize| {
        let dt = now - *last;
        *ui += ledger.utilization() * dt;
        *ri += resident as f64 * dt;
        *last = now;
    };

    loop {
        // Next event: arrival or departure.
        let arr_t = arrivals.get(next_arrival).copied();
        let dep_t = departures.peek().map(|r| r.0 .0 as f64 / 1e9);
        let (event_t, is_arrival) = match (arr_t, dep_t) {
            (Some(a), Some(d)) => {
                if a <= d {
                    (a, true)
                } else {
                    (d, false)
                }
            }
            (Some(a), None) => (a, true),
            (None, Some(d)) => (d, false),
            (None, None) => break,
        };
        now = event_t;
        advance(
            now,
            &mut last_event,
            &mut util_integral,
            &mut resident_integral,
            &ledger,
            resident,
        );

        if is_arrival {
            queue.push_back(next_arrival);
            next_arrival += 1;
        } else {
            let std::cmp::Reverse((_, task)) = departures.pop().expect("peeked");
            ledger.release_task(TaskId(task));
            resident -= 1;
        }

        // Admit as many queued tasks as now fit (FIFO).
        while let Some(&idx) = queue.front() {
            let task = TaskId(idx as u32);
            let mapped = match strategy {
                Strategy::Sfc { order } => {
                    crate::sfc::map_task_sfc_from(&mut ledger, order, cursor, task, &tasks[idx])
                        .map(|(tp, next)| {
                            cursor = next;
                            tp
                        })
                }
                Strategy::Greedy { topo, apsp, cfg } => {
                    crate::greedy::map_task_greedy(&mut ledger, topo, apsp, task, &tasks[idx], cfg)
                }
            };
            match mapped {
                Ok(tp) => {
                    queue.pop_front();
                    admitted_at[idx] = now;
                    waits.push(now - arrivals[idx]);
                    departures.push(std::cmp::Reverse((to_key(now + services[idx]), idx as u32)));
                    resident += 1;
                    placements.push(tp);
                }
                Err(_) => {
                    if resident == 0 {
                        // Unmappable even on an empty system.
                        queue.pop_front();
                        failed.push(task);
                        continue;
                    }
                    break; // wait for a departure
                }
            }
        }
    }

    let makespan = now.max(1e-12);
    ServiceOutcome {
        placements,
        failed,
        mean_wait: if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        },
        mean_resident: resident_integral / makespan,
        utilization: util_integral / makespan,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::{build_model, Dataset, ModelKind};
    use topology::floret;

    fn tasks(n: usize) -> Vec<SegmentGraph> {
        let g = build_model(ModelKind::ResNet18, Dataset::ImageNet).unwrap();
        vec![SegmentGraph::from_layer_graph(&g); n]
    }

    fn sfc_strategy() -> Strategy<'static> {
        let (_, layout) = floret(10, 10, 6).unwrap();
        Strategy::sfc(&layout)
    }

    #[test]
    fn poisson_serves_every_task() {
        let out = run_poisson(
            &tasks(30),
            100,
            1_000_000,
            &sfc_strategy(),
            &ArrivalConfig::default(),
        );
        assert_eq!(out.placements.len(), 30);
        assert!(out.failed.is_empty());
        assert!(out.makespan > 0.0);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn heavier_load_raises_waits_and_utilization() {
        let light = ArrivalConfig {
            mean_interarrival: 4.0,
            mean_service: 4.0,
            seed: 3,
        };
        let heavy = ArrivalConfig {
            mean_interarrival: 0.5,
            mean_service: 8.0,
            seed: 3,
        };
        let t = tasks(40);
        let s = sfc_strategy();
        let l = run_poisson(&t, 100, 1_000_000, &s, &light);
        let h = run_poisson(&t, 100, 1_000_000, &s, &heavy);
        assert!(
            h.utilization > l.utilization,
            "{} vs {}",
            h.utilization,
            l.utilization
        );
        assert!(h.mean_wait >= l.mean_wait);
        assert!(h.mean_resident > l.mean_resident);
    }

    #[test]
    fn poisson_is_deterministic() {
        let cfg = ArrivalConfig::default();
        let t = tasks(15);
        let s = sfc_strategy();
        let a = run_poisson(&t, 100, 1_000_000, &s, &cfg);
        let b = run_poisson(&t, 100, 1_000_000, &s, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_works_with_greedy_strategy() {
        let topo = topology::mesh2d(10, 10).unwrap();
        let strategy = Strategy::greedy(&topo, crate::GreedyConfig::soft());
        let out = run_poisson(
            &tasks(20),
            100,
            1_000_000,
            &strategy,
            &ArrivalConfig::default(),
        );
        assert_eq!(out.placements.len(), 20);
        assert!(out.failed.is_empty());
    }

    #[test]
    fn waits_are_nonnegative_and_bounded_by_makespan() {
        let out = run_poisson(
            &tasks(25),
            100,
            1_000_000,
            &sfc_strategy(),
            &ArrivalConfig {
                mean_interarrival: 0.3,
                mean_service: 10.0,
                seed: 42,
            },
        );
        assert!(out.mean_wait >= 0.0);
        assert!(out.mean_wait < out.makespan);
        assert!(out.mean_resident <= 100.0);
    }

    #[test]
    fn impossible_tasks_fail_cleanly() {
        let out = run_poisson(
            &tasks(3),
            4,
            1_000, // far below any task's needs
            &sfc_strategy(),
            &ArrivalConfig::default(),
        );
        assert_eq!(out.placements.len(), 0);
        assert_eq!(out.failed.len(), 3);
    }
}

//! Wafer-yield and NoI fabrication cost model — Eqs. (2)-(5) of the paper.
//!
//! The normalized fabrication cost of an NoI is
//! `C_NoI = (n_ref / n) * exp(-D0 * (A_ref - A_NoI))`, where `n` is the
//! number of systems per wafer, `D0` the wafer defect density and `A` the
//! NoI silicon area. The reference system is the AMD 864 mm² interposer
//! with 64 chiplets (Eq. (2)). The ratio between two NoIs (Eq. (5)) then
//! reduces to `exp(D0 * (A_1 - A_2))` scaled by their systems-per-wafer
//! ratio.
//!
//! # Examples
//!
//! ```
//! use cost::CostModel;
//! use topology::{floret, kite, HwParams};
//!
//! let hw = HwParams::default();
//! let model = CostModel::default();
//! let a_kite = hw.noi_area_mm2(&kite(10, 10)?);
//! let a_floret = hw.noi_area_mm2(&floret(10, 10, 6)?.0);
//! // Floret's smaller NoI is cheaper to fabricate (paper: ~2.8x vs Kite).
//! assert!(model.cost_ratio(a_kite, a_floret) > 2.0);
//! # Ok::<(), topology::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};

/// Fabrication cost model parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Wafer defect density `D0`, defects per mm².
    pub defect_density_per_mm2: f64,
    /// NoI area of the reference system (`A_ref`), mm². The paper's
    /// reference is the AMD 864 mm² interposer 2.5D system with 64
    /// chiplets; its NoI share is ~85% of the interposer.
    pub reference_noi_area_mm2: f64,
    /// Usable wafer area, mm² (300 mm wafer).
    pub wafer_area_mm2: f64,
    /// Non-NoI system area (chiplets + margins) added to the NoI area
    /// when counting systems per wafer, mm².
    pub base_system_area_mm2: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            defect_density_per_mm2: 0.007, // 0.7 defects/cm²
            reference_noi_area_mm2: 864.0 * 0.85,
            wafer_area_mm2: std::f64::consts::PI * 150.0 * 150.0,
            base_system_area_mm2: 400.0,
        }
    }
}

impl CostModel {
    /// Poisson wafer yield for a die of `area_mm2`.
    pub fn yield_factor(&self, area_mm2: f64) -> f64 {
        (-self.defect_density_per_mm2 * area_mm2).exp()
    }

    /// Systems per wafer for a given NoI area (`n` in Eq. (2)).
    pub fn systems_per_wafer(&self, noi_area_mm2: f64) -> f64 {
        self.wafer_area_mm2 / (self.base_system_area_mm2 + noi_area_mm2)
    }

    /// Normalized NoI fabrication cost per Eq. (2): the reference system
    /// costs exactly 1.
    pub fn relative_cost(&self, noi_area_mm2: f64) -> f64 {
        let n_ref = self.systems_per_wafer(self.reference_noi_area_mm2);
        let n = self.systems_per_wafer(noi_area_mm2);
        let d0 = self.defect_density_per_mm2;
        (n_ref / n) * (d0 * (noi_area_mm2 - self.reference_noi_area_mm2)).exp()
    }

    /// Cost ratio of NoI `a` over NoI `b` per Eq. (5), both areas in mm².
    pub fn cost_ratio(&self, area_a_mm2: f64, area_b_mm2: f64) -> f64 {
        self.relative_cost(area_a_mm2) / self.relative_cost(area_b_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{floret, kite, mesh2d, swap, HwParams, SwapConfig};

    #[test]
    fn reference_costs_one() {
        let m = CostModel::default();
        let c = m.relative_cost(m.reference_noi_area_mm2);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn yield_decreases_with_area() {
        let m = CostModel::default();
        assert!(m.yield_factor(100.0) > m.yield_factor(500.0));
        assert!((m.yield_factor(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_transitive() {
        let m = CostModel::default();
        let (a, b, c) = (120.0, 240.0, 410.0);
        let direct = m.cost_ratio(c, a);
        let chained = m.cost_ratio(c, b) * m.cost_ratio(b, a);
        assert!((direct - chained).abs() / direct < 1e-12);
    }

    #[test]
    fn bigger_noi_costs_more() {
        let m = CostModel::default();
        assert!(m.relative_cost(300.0) > m.relative_cost(150.0));
    }

    #[test]
    fn paper_cost_ordering_holds() {
        // Floret < SWAP < SIAM < Kite in fabrication cost, with the
        // Kite/Floret gap in the paper's ~2.8x regime.
        let hw = HwParams::default();
        let m = CostModel::default();
        let a_kite = hw.noi_area_mm2(&kite(10, 10).unwrap());
        let a_mesh = hw.noi_area_mm2(&mesh2d(10, 10).unwrap());
        let a_swap = hw.noi_area_mm2(&swap(10, 10, &SwapConfig::default()).unwrap());
        let a_floret = hw.noi_area_mm2(&floret(10, 10, 6).unwrap().0);

        let r_kite = m.cost_ratio(a_kite, a_floret);
        let r_mesh = m.cost_ratio(a_mesh, a_floret);
        let r_swap = m.cost_ratio(a_swap, a_floret);
        assert!(r_kite > r_mesh, "kite {r_kite} vs mesh {r_mesh}");
        assert!(r_mesh > r_swap, "mesh {r_mesh} vs swap {r_swap}");
        assert!(r_swap > 1.0);
        assert!(
            (1.8..=4.0).contains(&r_kite),
            "kite/floret cost ratio {r_kite} out of the paper's regime (2.8)"
        );
    }
}

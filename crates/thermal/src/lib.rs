//! Steady-state thermal model for 3D-stacked PIM manycore systems
//! (Section III of the paper).
//!
//! The stack is modelled as a resistive grid: every PE cell exchanges heat
//! with its lateral neighbors (same tier), with the tiers above/below
//! (through the inter-layer dielectric — thin for M3D, thicker for
//! TSV-based stacks), and tier 0 couples to the heat sink at ambient
//! temperature. The steady state solves
//! `sum_j g_ij (T_j - T_i) + P_i = 0` by Gauss-Seidel iteration.
//!
//! Tier convention: tier 0 is closest to the heat sink; the *bottom tier*
//! of Fig. 7 (farthest from the sink, hottest) is tier `tiers - 1`.
//!
//! # Examples
//!
//! ```
//! use thermal::{solve, PowerMap, ThermalConfig};
//!
//! let mut power = PowerMap::new(5, 5, 4)?;
//! power.set(2, 2, 3, 2.0)?; // a 2 W hotspot far from the sink
//! let map = solve(&power, &ThermalConfig::m3d());
//! assert!(map.peak_k() > 300.0);
//! // The hotspot cell is the hottest.
//! assert_eq!(map.argmax(), (2, 2, 3));
//! # Ok::<(), thermal::ThermalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error produced by power-map construction.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ThermalError {
    /// Zero-sized grid.
    EmptyGrid,
    /// Cell coordinates outside the grid.
    OutOfBounds {
        /// Requested coordinate.
        coord: (u16, u16, u16),
        /// Grid dimensions.
        dims: (u16, u16, u16),
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::EmptyGrid => write!(f, "thermal grid must be non-empty"),
            ThermalError::OutOfBounds { coord, dims } => {
                write!(f, "cell {coord:?} outside grid of {dims:?}")
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Thermal network parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Conductance between laterally adjacent PEs, W/K.
    pub g_lateral: f64,
    /// Conductance between vertically adjacent PEs, W/K. M3D's nano-scale
    /// ILD conducts much better than TSV bonding layers.
    pub g_vertical: f64,
    /// Conductance from each tier-0 PE to the heat sink, W/K.
    pub g_sink: f64,
    /// Ambient / sink temperature, K.
    pub ambient_k: f64,
    /// Gauss-Seidel iteration cap.
    pub max_iters: u32,
    /// Convergence threshold on the max temperature update, K.
    pub tolerance_k: f64,
}

impl ThermalConfig {
    /// Monolithic-3D stack: thin ILD, strong vertical conduction, better
    /// heat dissipation (Section I).
    pub fn m3d() -> Self {
        ThermalConfig {
            g_lateral: 0.08,
            g_vertical: 2.0,
            g_sink: 0.05,
            ambient_k: 300.0,
            max_iters: 20_000,
            tolerance_k: 1e-6,
        }
    }

    /// TSV-based stack: bonding layers throttle vertical conduction.
    pub fn tsv() -> Self {
        ThermalConfig {
            g_vertical: 0.6,
            ..ThermalConfig::m3d()
        }
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig::m3d()
    }
}

/// Per-PE power dissipation over a `w x h x tiers` grid, in watts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    w: u16,
    h: u16,
    tiers: u16,
    power: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyGrid`] for zero-sized grids.
    pub fn new(w: u16, h: u16, tiers: u16) -> Result<Self, ThermalError> {
        if w == 0 || h == 0 || tiers == 0 {
            return Err(ThermalError::EmptyGrid);
        }
        Ok(PowerMap {
            w,
            h,
            tiers,
            power: vec![0.0; w as usize * h as usize * tiers as usize],
        })
    }

    /// Grid dimensions `(w, h, tiers)`.
    pub fn dims(&self) -> (u16, u16, u16) {
        (self.w, self.h, self.tiers)
    }

    fn index(&self, x: u16, y: u16, z: u16) -> Result<usize, ThermalError> {
        if x >= self.w || y >= self.h || z >= self.tiers {
            return Err(ThermalError::OutOfBounds {
                coord: (x, y, z),
                dims: self.dims(),
            });
        }
        Ok((z as usize * self.h as usize + y as usize) * self.w as usize + x as usize)
    }

    /// Sets the power of one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn set(&mut self, x: u16, y: u16, z: u16, watts: f64) -> Result<(), ThermalError> {
        let i = self.index(x, y, z)?;
        self.power[i] = watts;
        Ok(())
    }

    /// Adds power to one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn add(&mut self, x: u16, y: u16, z: u16, watts: f64) -> Result<(), ThermalError> {
        let i = self.index(x, y, z)?;
        self.power[i] += watts;
        Ok(())
    }

    /// Power of one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn get(&self, x: u16, y: u16, z: u16) -> Result<f64, ThermalError> {
        Ok(self.power[self.index(x, y, z)?])
    }

    /// Total dissipated power, W.
    pub fn total_w(&self) -> f64 {
        self.power.iter().sum()
    }
}

/// Steady-state temperature field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalMap {
    w: u16,
    h: u16,
    tiers: u16,
    temps: Vec<f64>,
    /// Gauss-Seidel iterations used.
    pub iterations: u32,
}

impl ThermalMap {
    fn idx(&self, x: u16, y: u16, z: u16) -> usize {
        (z as usize * self.h as usize + y as usize) * self.w as usize + x as usize
    }

    /// Temperature of one cell, K.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, x: u16, y: u16, z: u16) -> f64 {
        self.temps[self.idx(x, y, z)]
    }

    /// Peak temperature, K (the Fig. 6(b) metric).
    pub fn peak_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature, K.
    pub fn mean_k(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Coordinates of the hottest cell.
    pub fn argmax(&self) -> (u16, u16, u16) {
        let (mut best, mut coord) = (f64::NEG_INFINITY, (0, 0, 0));
        for z in 0..self.tiers {
            for y in 0..self.h {
                for x in 0..self.w {
                    let t = self.get(x, y, z);
                    if t > best {
                        best = t;
                        coord = (x, y, z);
                    }
                }
            }
        }
        coord
    }

    /// One tier as a row-major `h x w` matrix (Fig. 7 heat map export).
    pub fn tier_slice(&self, z: u16) -> Vec<Vec<f64>> {
        (0..self.h)
            .map(|y| (0..self.w).map(|x| self.get(x, y, z)).collect())
            .collect()
    }

    /// Number of cells at or above `threshold_k` (hotspot count).
    pub fn hotspot_count(&self, threshold_k: f64) -> usize {
        self.temps.iter().filter(|&&t| t >= threshold_k).count()
    }
}

/// Solves the steady-state temperature field for a power map.
///
/// Gauss-Seidel over the resistive grid; deterministic and robust for the
/// diagonally dominant systems this discretization produces.
pub fn solve(power: &PowerMap, cfg: &ThermalConfig) -> ThermalMap {
    let (w, h, tiers) = power.dims();
    let (wi, hi, ti) = (w as usize, h as usize, tiers as usize);
    let n = wi * hi * ti;
    let mut temps = vec![cfg.ambient_k; n];
    let idx = |x: usize, y: usize, z: usize| (z * hi + y) * wi + x;

    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        let mut max_delta = 0.0f64;
        for z in 0..ti {
            for y in 0..hi {
                for x in 0..wi {
                    let i = idx(x, y, z);
                    let mut g_sum = 0.0;
                    let mut gt_sum = 0.0;
                    if x > 0 {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x - 1, y, z)];
                    }
                    if x + 1 < wi {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x + 1, y, z)];
                    }
                    if y > 0 {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x, y - 1, z)];
                    }
                    if y + 1 < hi {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x, y + 1, z)];
                    }
                    if z > 0 {
                        g_sum += cfg.g_vertical;
                        gt_sum += cfg.g_vertical * temps[idx(x, y, z - 1)];
                    }
                    if z + 1 < ti {
                        g_sum += cfg.g_vertical;
                        gt_sum += cfg.g_vertical * temps[idx(x, y, z + 1)];
                    }
                    if z == 0 {
                        g_sum += cfg.g_sink;
                        gt_sum += cfg.g_sink * cfg.ambient_k;
                    }
                    let t_new = (gt_sum + power.power[i]) / g_sum;
                    let delta = (t_new - temps[i]).abs();
                    if delta > max_delta {
                        max_delta = delta;
                    }
                    temps[i] = t_new;
                }
            }
        }
        iterations = it + 1;
        if max_delta < cfg.tolerance_k {
            break;
        }
    }
    ThermalMap {
        w,
        h,
        tiers,
        temps,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_power_is_ambient() {
        let power = PowerMap::new(4, 4, 2).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert!((map.peak_k() - 300.0).abs() < 1e-6);
        assert!((map.mean_k() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn energy_balance_holds() {
        // In steady state, all injected power must leave through the sink:
        // sum over tier-0 cells of g_sink * (T - T_amb) == total power.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.3).unwrap();
                }
            }
        }
        let cfg = ThermalConfig::m3d();
        let map = solve(&power, &cfg);
        let sink_w: f64 = (0..5)
            .flat_map(|y| (0..5).map(move |x| (x, y)))
            .map(|(x, y)| cfg.g_sink * (map.get(x, y, 0) - cfg.ambient_k))
            .sum();
        let total = power.total_w();
        assert!(
            (sink_w - total).abs() / total < 1e-3,
            "sink {sink_w} W vs injected {total} W"
        );
    }

    #[test]
    fn far_tier_runs_hotter() {
        // Uniform power: the tier farthest from the sink is hottest.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.4).unwrap();
                }
            }
        }
        let map = solve(&power, &ThermalConfig::m3d());
        let t0 = map.get(2, 2, 0);
        let t3 = map.get(2, 2, 3);
        assert!(t3 > t0, "bottom tier {t3} must exceed sink tier {t0}");
    }

    #[test]
    fn hotspot_location_found() {
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        power.set(4, 1, 3, 3.0).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert_eq!(map.argmax(), (4, 1, 3));
        assert!(map.get(4, 1, 3) > map.get(0, 4, 0) + 1.0);
    }

    #[test]
    fn m3d_cooler_than_tsv() {
        // Same power map: the M3D stack's better vertical conduction
        // lowers the peak temperature (Section I).
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                power.set(x, y, 3, 0.8).unwrap();
            }
        }
        let m3d = solve(&power, &ThermalConfig::m3d());
        let tsv = solve(&power, &ThermalConfig::tsv());
        assert!(
            m3d.peak_k() < tsv.peak_k(),
            "M3D {} K should beat TSV {} K",
            m3d.peak_k(),
            tsv.peak_k()
        );
    }

    #[test]
    fn spreading_power_lowers_peak() {
        // A concentrated column vs the same power spread over the system.
        let mut concentrated = PowerMap::new(5, 5, 4).unwrap();
        for z in 0..4 {
            concentrated.set(2, 2, z, 1.0).unwrap();
        }
        let mut spread = PowerMap::new(5, 5, 4).unwrap();
        for (i, (x, y)) in [(0u16, 0u16), (4, 0), (0, 4), (4, 4)].iter().enumerate() {
            spread.set(*x, *y, i as u16, 1.0).unwrap();
        }
        let cfg = ThermalConfig::m3d();
        let peak_conc = solve(&concentrated, &cfg).peak_k();
        let peak_spread = solve(&spread, &cfg).peak_k();
        assert!(
            peak_conc > peak_spread + 1.0,
            "column {peak_conc} K vs spread {peak_spread} K"
        );
    }

    #[test]
    fn tier_slice_shape() {
        let power = PowerMap::new(3, 4, 2).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        let slice = map.tier_slice(1);
        assert_eq!(slice.len(), 4);
        assert_eq!(slice[0].len(), 3);
    }

    #[test]
    fn hotspot_count_thresholds() {
        let mut power = PowerMap::new(4, 4, 1).unwrap();
        power.set(0, 0, 0, 5.0).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert!(map.hotspot_count(300.0) == 16);
        assert!(map.hotspot_count(map.peak_k() + 1.0) == 0);
    }

    #[test]
    fn bounds_are_validated() {
        let mut power = PowerMap::new(3, 3, 1).unwrap();
        assert!(matches!(
            power.set(3, 0, 0, 1.0),
            Err(ThermalError::OutOfBounds { .. })
        ));
        assert!(PowerMap::new(0, 3, 1).is_err());
    }

    #[test]
    fn paper_scale_temperatures() {
        // A 100-PE system at ~0.5 W/PE should land peak temperatures in
        // the 330-370 K band where the ReRAM accuracy effects of Fig. 6
        // operate.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.5).unwrap();
                }
            }
        }
        let map = solve(&power, &ThermalConfig::m3d());
        let peak = map.peak_k();
        assert!(
            (325.0..385.0).contains(&peak),
            "peak {peak} K outside the paper's operating band"
        );
    }
}

//! Steady-state thermal model for 3D-stacked PIM manycore systems
//! (Section III of the paper).
//!
//! The stack is modelled as a resistive grid: every PE cell exchanges heat
//! with its lateral neighbors (same tier), with the tiers above/below
//! (through the inter-layer dielectric — thin for M3D, thicker for
//! TSV-based stacks), and tier 0 couples to the heat sink at ambient
//! temperature. The steady state solves
//! `sum_j g_ij (T_j - T_i) + P_i = 0`.
//!
//! Two solvers are provided. The production path ([`solve`], explicitly
//! [`solve_red_black`]) is **red-black successive over-relaxation**: the
//! grid is two-colored by coordinate parity (every stencil neighbor has
//! the opposite color), the iteration-invariant conductance sums and
//! neighbor lists are precomputed once into flat arrays, and each color
//! is swept reading only the opposite color — so the sweep is
//! deterministic for *any* worker count and converges in far fewer
//! iterations than plain Gauss-Seidel thanks to over-relaxation. The
//! original sequential Gauss-Seidel is kept verbatim as a reference
//! oracle ([`solve_reference`]) for tests, criterion benches and the
//! `pim-bench perf` baseline; `PIM_THERMAL_SOLVER=reference` (or
//! [`set_default_solver`]) re-routes [`solve`] onto it.
//!
//! Both solvers report [`ThermalMap::iterations`], the final
//! [`ThermalMap::residual_k`] and a [`ThermalMap::converged`] flag;
//! [`solve_checked`] turns a capped run into a typed
//! [`ThermalError::NotConverged`] instead of silently returning the last
//! sweep.
//!
//! Tier convention: tier 0 is closest to the heat sink; the *bottom tier*
//! of Fig. 7 (farthest from the sink, hottest) is tier `tiers - 1`.
//!
//! # Examples
//!
//! ```
//! use thermal::{solve, PowerMap, ThermalConfig};
//!
//! let mut power = PowerMap::new(5, 5, 4)?;
//! power.set(2, 2, 3, 2.0)?; // a 2 W hotspot far from the sink
//! let map = solve(&power, &ThermalConfig::m3d());
//! assert!(map.peak_k() > 300.0);
//! assert!(map.converged);
//! // The hotspot cell is the hottest.
//! assert_eq!(map.argmax(), (2, 2, 3));
//! # Ok::<(), thermal::ThermalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

/// Error produced by power-map construction or a checked solve.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ThermalError {
    /// Zero-sized grid.
    EmptyGrid,
    /// Cell coordinates outside the grid.
    OutOfBounds {
        /// Requested coordinate.
        coord: (u16, u16, u16),
        /// Grid dimensions.
        dims: (u16, u16, u16),
    },
    /// [`solve_checked`] hit the iteration cap before the residual fell
    /// under the tolerance.
    NotConverged {
        /// Iterations performed (== `max_iters`).
        iterations: u32,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::EmptyGrid => write!(f, "thermal grid must be non-empty"),
            ThermalError::OutOfBounds { coord, dims } => {
                write!(f, "cell {coord:?} outside grid of {dims:?}")
            }
            ThermalError::NotConverged { iterations } => {
                write!(
                    f,
                    "thermal solve hit the {iterations}-iteration cap before converging"
                )
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Thermal network parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Conductance between laterally adjacent PEs, W/K.
    pub g_lateral: f64,
    /// Conductance between vertically adjacent PEs, W/K. M3D's nano-scale
    /// ILD conducts much better than TSV bonding layers.
    pub g_vertical: f64,
    /// Conductance from each tier-0 PE to the heat sink, W/K.
    pub g_sink: f64,
    /// Ambient / sink temperature, K.
    pub ambient_k: f64,
    /// Gauss-Seidel iteration cap.
    pub max_iters: u32,
    /// Convergence threshold on the max temperature update, K.
    pub tolerance_k: f64,
}

impl ThermalConfig {
    /// Monolithic-3D stack: thin ILD, strong vertical conduction, better
    /// heat dissipation (Section I).
    pub fn m3d() -> Self {
        ThermalConfig {
            g_lateral: 0.08,
            g_vertical: 2.0,
            g_sink: 0.05,
            ambient_k: 300.0,
            max_iters: 20_000,
            tolerance_k: 1e-6,
        }
    }

    /// TSV-based stack: bonding layers throttle vertical conduction.
    pub fn tsv() -> Self {
        ThermalConfig {
            g_vertical: 0.6,
            ..ThermalConfig::m3d()
        }
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig::m3d()
    }
}

/// Per-PE power dissipation over a `w x h x tiers` grid, in watts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    w: u16,
    h: u16,
    tiers: u16,
    power: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyGrid`] for zero-sized grids.
    pub fn new(w: u16, h: u16, tiers: u16) -> Result<Self, ThermalError> {
        if w == 0 || h == 0 || tiers == 0 {
            return Err(ThermalError::EmptyGrid);
        }
        Ok(PowerMap {
            w,
            h,
            tiers,
            power: vec![0.0; w as usize * h as usize * tiers as usize],
        })
    }

    /// Grid dimensions `(w, h, tiers)`.
    pub fn dims(&self) -> (u16, u16, u16) {
        (self.w, self.h, self.tiers)
    }

    fn index(&self, x: u16, y: u16, z: u16) -> Result<usize, ThermalError> {
        if x >= self.w || y >= self.h || z >= self.tiers {
            return Err(ThermalError::OutOfBounds {
                coord: (x, y, z),
                dims: self.dims(),
            });
        }
        Ok((z as usize * self.h as usize + y as usize) * self.w as usize + x as usize)
    }

    /// Sets the power of one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn set(&mut self, x: u16, y: u16, z: u16, watts: f64) -> Result<(), ThermalError> {
        let i = self.index(x, y, z)?;
        self.power[i] = watts;
        Ok(())
    }

    /// Adds power to one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn add(&mut self, x: u16, y: u16, z: u16, watts: f64) -> Result<(), ThermalError> {
        let i = self.index(x, y, z)?;
        self.power[i] += watts;
        Ok(())
    }

    /// Power of one cell, W.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::OutOfBounds`] for invalid coordinates.
    pub fn get(&self, x: u16, y: u16, z: u16) -> Result<f64, ThermalError> {
        Ok(self.power[self.index(x, y, z)?])
    }

    /// Total dissipated power, W.
    pub fn total_w(&self) -> f64 {
        self.power.iter().sum()
    }
}

/// Steady-state temperature field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalMap {
    w: u16,
    h: u16,
    tiers: u16,
    temps: Vec<f64>,
    /// Solver iterations used (full grid sweeps).
    pub iterations: u32,
    /// Final residual: the largest temperature update of the last sweep,
    /// K. Converged runs end below [`ThermalConfig::tolerance_k`].
    pub residual_k: f64,
    /// Whether the residual fell under the tolerance before the
    /// [`ThermalConfig::max_iters`] cap.
    pub converged: bool,
}

impl ThermalMap {
    fn idx(&self, x: u16, y: u16, z: u16) -> usize {
        (z as usize * self.h as usize + y as usize) * self.w as usize + x as usize
    }

    /// Temperature of one cell, K.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, x: u16, y: u16, z: u16) -> f64 {
        self.temps[self.idx(x, y, z)]
    }

    /// Peak temperature, K (the Fig. 6(b) metric).
    pub fn peak_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean temperature, K.
    pub fn mean_k(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Coordinates of the hottest cell.
    pub fn argmax(&self) -> (u16, u16, u16) {
        let (mut best, mut coord) = (f64::NEG_INFINITY, (0, 0, 0));
        for z in 0..self.tiers {
            for y in 0..self.h {
                for x in 0..self.w {
                    let t = self.get(x, y, z);
                    if t > best {
                        best = t;
                        coord = (x, y, z);
                    }
                }
            }
        }
        coord
    }

    /// One tier as a row-major `h x w` matrix (Fig. 7 heat map export).
    pub fn tier_slice(&self, z: u16) -> Vec<Vec<f64>> {
        (0..self.h)
            .map(|y| (0..self.w).map(|x| self.get(x, y, z)).collect())
            .collect()
    }

    /// Number of cells at or above `threshold_k` (hotspot count).
    pub fn hotspot_count(&self, threshold_k: f64) -> usize {
        self.temps.iter().filter(|&&t| t >= threshold_k).count()
    }
}

/// Which steady-state solver [`solve`] dispatches to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Solver {
    /// Red-black successive over-relaxation on a precomputed stencil —
    /// the production path.
    RedBlackSor,
    /// The original lexicographic Gauss-Seidel sweep, kept verbatim as a
    /// reference oracle (slow: no over-relaxation, conductances
    /// recomputed in every cell visit).
    GaussSeidelReference,
}

/// Process-wide default solver: 0 = red-black SOR, 1 = reference
/// Gauss-Seidel, 2 = not yet resolved from the environment.
static DEFAULT_SOLVER: AtomicU8 = AtomicU8::new(2);

/// The solver [`solve`] currently dispatches to. Resolved once from
/// `PIM_THERMAL_SOLVER` (`redblack` default, `reference` for the seed
/// path) unless [`set_default_solver`] overrode it.
pub fn default_solver() -> Solver {
    match DEFAULT_SOLVER.load(Ordering::Relaxed) {
        0 => Solver::RedBlackSor,
        1 => Solver::GaussSeidelReference,
        _ => {
            let s = match topology::envknobs::var("PIM_THERMAL_SOLVER").as_deref() {
                Some("reference") => Solver::GaussSeidelReference,
                _ => Solver::RedBlackSor,
            };
            set_default_solver(s);
            s
        }
    }
}

/// Overrides the process-wide default solver (the `pim-bench perf`
/// baseline switch). Both solvers converge to the same fixed point
/// within [`ThermalConfig::tolerance_k`].
pub fn set_default_solver(s: Solver) {
    DEFAULT_SOLVER.store(
        match s {
            Solver::RedBlackSor => 0,
            Solver::GaussSeidelReference => 1,
        },
        Ordering::Relaxed,
    );
}

/// Over-relaxation factor for the red-black sweep. The resistive grids
/// this crate solves are small (hundreds of cells) and strongly
/// anisotropic (vertical conduction dominates, the sink coupling is
/// weak), which makes plain Gauss-Seidel crawl; a fixed aggressive
/// factor inside the guaranteed-convergent `(0, 2)` band for symmetric
/// positive-definite systems cuts iteration counts by an order of
/// magnitude across the paper's M3D/TSV configurations (empirically
/// tuned: 1.85 balances the two stacks best).
const SOR_OMEGA: f64 = 1.85;

/// Cells below this count are swept on the calling thread; per-sweep
/// worker spawning only pays off on grids far larger than the paper's.
const PAR_THRESHOLD: usize = 16_384;

/// The iteration-invariant part of the stencil, precomputed once per
/// solve into flat arrays: per-cell conductance sums, the constant
/// right-hand side (injected power plus the tier-0 sink term), a CSR
/// neighbor list, and the two parity color classes.
struct Stencil {
    inv_g_sum: Vec<f64>,
    rhs: Vec<f64>,
    nbr_start: Vec<u32>,
    nbr: Vec<(u32, f64)>,
    colors: [Vec<u32>; 2],
}

impl Stencil {
    fn build(power: &PowerMap, cfg: &ThermalConfig) -> Stencil {
        let (w, h, tiers) = power.dims();
        let (wi, hi, ti) = (w as usize, h as usize, tiers as usize);
        let n = wi * hi * ti;
        let idx = |x: usize, y: usize, z: usize| (z * hi + y) * wi + x;

        let mut inv_g_sum = Vec::with_capacity(n);
        let mut rhs = Vec::with_capacity(n);
        let mut nbr_start = Vec::with_capacity(n + 1);
        let mut nbr: Vec<(u32, f64)> = Vec::with_capacity(6 * n);
        let mut colors = [Vec::new(), Vec::new()];
        nbr_start.push(0);
        for z in 0..ti {
            for y in 0..hi {
                for x in 0..wi {
                    let i = idx(x, y, z);
                    let mut g_sum = 0.0;
                    let mut push = |j: usize, g: f64| {
                        nbr.push((topology::narrow::u32_idx(j), g));
                        g_sum += g;
                    };
                    if x > 0 {
                        push(idx(x - 1, y, z), cfg.g_lateral);
                    }
                    if x + 1 < wi {
                        push(idx(x + 1, y, z), cfg.g_lateral);
                    }
                    if y > 0 {
                        push(idx(x, y - 1, z), cfg.g_lateral);
                    }
                    if y + 1 < hi {
                        push(idx(x, y + 1, z), cfg.g_lateral);
                    }
                    if z > 0 {
                        push(idx(x, y, z - 1), cfg.g_vertical);
                    }
                    if z + 1 < ti {
                        push(idx(x, y, z + 1), cfg.g_vertical);
                    }
                    let mut r = power.power[i];
                    if z == 0 {
                        g_sum += cfg.g_sink;
                        r += cfg.g_sink * cfg.ambient_k;
                    }
                    inv_g_sum.push(1.0 / g_sum);
                    rhs.push(r);
                    nbr_start.push(topology::narrow::u32_idx(nbr.len()));
                    colors[(x + y + z) & 1].push(topology::narrow::u32_idx(i));
                }
            }
        }
        Stencil {
            inv_g_sum,
            rhs,
            nbr_start,
            nbr,
            colors,
        }
    }

    /// One cell update: reads only opposite-color neighbors (every
    /// stencil neighbor differs by one in exactly one coordinate, so its
    /// parity flips) plus the cell's own previous value — which is why a
    /// color sweep can be chunked across workers without changing a bit.
    #[inline]
    fn relax(&self, temps: &[f64], i: usize) -> f64 {
        let (s, e) = (self.nbr_start[i] as usize, self.nbr_start[i + 1] as usize);
        let mut gt = self.rhs[i];
        for &(j, g) in &self.nbr[s..e] {
            gt += g * temps[j as usize];
        }
        (1.0 - SOR_OMEGA) * temps[i] + SOR_OMEGA * gt * self.inv_g_sum[i]
    }

    /// Sweeps one color class, returning the largest update. `threads`
    /// only changes wall-clock time: workers compute disjoint chunks from
    /// the same pre-sweep state and the results are written back in index
    /// order, bit-identical to the sequential loop.
    fn sweep_color(&self, temps: &mut [f64], color: usize, threads: usize) -> f64 {
        let cells = &self.colors[color];
        if threads <= 1 || cells.len() < 2 {
            let mut max_delta = 0.0f64;
            for &iu in cells {
                let i = iu as usize;
                let t = self.relax(temps, i);
                let delta = (t - temps[i]).abs();
                if delta > max_delta {
                    max_delta = delta;
                }
                temps[i] = t;
            }
            return max_delta;
        }
        let chunk = cells.len().div_ceil(threads);
        let updated: Vec<(f64, Vec<f64>)> = std::thread::scope(|scope| {
            let shared: &[f64] = temps;
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|c| {
                    scope.spawn(move || {
                        let mut vals = Vec::with_capacity(c.len());
                        let mut max_delta = 0.0f64;
                        for &iu in c {
                            let i = iu as usize;
                            let t = self.relax(shared, i);
                            let delta = (t - shared[i]).abs();
                            if delta > max_delta {
                                max_delta = delta;
                            }
                            vals.push(t);
                        }
                        (max_delta, vals)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thermal sweep worker panicked"))
                .collect()
        });
        let mut max_delta = 0.0f64;
        for (c, (d, vals)) in cells.chunks(chunk).zip(&updated) {
            max_delta = max_delta.max(*d);
            for (&iu, &t) in c.iter().zip(vals) {
                temps[iu as usize] = t;
            }
        }
        max_delta
    }
}

/// Solves the steady-state temperature field with the process-default
/// solver (red-black SOR unless `PIM_THERMAL_SOLVER=reference` or
/// [`set_default_solver`] chose the Gauss-Seidel oracle).
pub fn solve(power: &PowerMap, cfg: &ThermalConfig) -> ThermalMap {
    match default_solver() {
        Solver::RedBlackSor => solve_red_black(power, cfg, auto_threads(power)),
        Solver::GaussSeidelReference => solve_reference(power, cfg),
    }
}

/// [`solve`] that fails loudly instead of silently returning the last
/// sweep when the iteration cap is hit.
///
/// # Errors
///
/// [`ThermalError::NotConverged`] when `max_iters` sweeps left the
/// residual at or above [`ThermalConfig::tolerance_k`].
pub fn solve_checked(power: &PowerMap, cfg: &ThermalConfig) -> Result<ThermalMap, ThermalError> {
    let map = solve(power, cfg);
    if map.converged {
        Ok(map)
    } else {
        Err(ThermalError::NotConverged {
            iterations: map.iterations,
        })
    }
}

/// Worker count for [`solve`]: one thread below [`PAR_THRESHOLD`] cells
/// (the paper's grids), otherwise one per hardware thread.
fn auto_threads(power: &PowerMap) -> usize {
    if power.power.len() < PAR_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Red-black SOR over the resistive grid with an explicit worker count.
/// The result is bit-identical for any `threads` value (colors only read
/// the opposite color, chunks merge in index order); one iteration is one
/// full red+black sweep, comparable to a reference Gauss-Seidel sweep.
pub fn solve_red_black(power: &PowerMap, cfg: &ThermalConfig, threads: usize) -> ThermalMap {
    let (w, h, tiers) = power.dims();
    let st = Stencil::build(power, cfg);
    let mut temps = vec![cfg.ambient_k; power.power.len()];
    let threads = threads.max(1);

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for it in 0..cfg.max_iters {
        let d_red = st.sweep_color(&mut temps, 0, threads);
        let d_black = st.sweep_color(&mut temps, 1, threads);
        residual = d_red.max(d_black);
        iterations = it + 1;
        if residual < cfg.tolerance_k {
            break;
        }
    }
    ThermalMap {
        w,
        h,
        tiers,
        temps,
        iterations,
        residual_k: residual,
        converged: residual < cfg.tolerance_k,
    }
}

/// The seed's sequential Gauss-Seidel solver, kept verbatim as the
/// reference oracle: lexicographic sweeps, stencil conductances
/// recomputed in every cell visit, no over-relaxation. Tests assert the
/// red-black path against it; `bench_thermal` and `pim-bench perf`
/// measure the speedup over it.
pub fn solve_reference(power: &PowerMap, cfg: &ThermalConfig) -> ThermalMap {
    let (w, h, tiers) = power.dims();
    let (wi, hi, ti) = (w as usize, h as usize, tiers as usize);
    let n = wi * hi * ti;
    let mut temps = vec![cfg.ambient_k; n];
    let idx = |x: usize, y: usize, z: usize| (z * hi + y) * wi + x;

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for it in 0..cfg.max_iters {
        let mut max_delta = 0.0f64;
        for z in 0..ti {
            for y in 0..hi {
                for x in 0..wi {
                    let i = idx(x, y, z);
                    let mut g_sum = 0.0;
                    let mut gt_sum = 0.0;
                    if x > 0 {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x - 1, y, z)];
                    }
                    if x + 1 < wi {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x + 1, y, z)];
                    }
                    if y > 0 {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x, y - 1, z)];
                    }
                    if y + 1 < hi {
                        g_sum += cfg.g_lateral;
                        gt_sum += cfg.g_lateral * temps[idx(x, y + 1, z)];
                    }
                    if z > 0 {
                        g_sum += cfg.g_vertical;
                        gt_sum += cfg.g_vertical * temps[idx(x, y, z - 1)];
                    }
                    if z + 1 < ti {
                        g_sum += cfg.g_vertical;
                        gt_sum += cfg.g_vertical * temps[idx(x, y, z + 1)];
                    }
                    if z == 0 {
                        g_sum += cfg.g_sink;
                        gt_sum += cfg.g_sink * cfg.ambient_k;
                    }
                    let t_new = (gt_sum + power.power[i]) / g_sum;
                    let delta = (t_new - temps[i]).abs();
                    if delta > max_delta {
                        max_delta = delta;
                    }
                    temps[i] = t_new;
                }
            }
        }
        iterations = it + 1;
        residual = max_delta;
        if max_delta < cfg.tolerance_k {
            break;
        }
    }
    ThermalMap {
        w,
        h,
        tiers,
        temps,
        iterations,
        residual_k: residual,
        converged: residual < cfg.tolerance_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_power_is_ambient() {
        let power = PowerMap::new(4, 4, 2).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert!((map.peak_k() - 300.0).abs() < 1e-6);
        assert!((map.mean_k() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn energy_balance_holds() {
        // In steady state, all injected power must leave through the sink:
        // sum over tier-0 cells of g_sink * (T - T_amb) == total power.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.3).unwrap();
                }
            }
        }
        let cfg = ThermalConfig::m3d();
        let map = solve(&power, &cfg);
        let sink_w: f64 = (0..5)
            .flat_map(|y| (0..5).map(move |x| (x, y)))
            .map(|(x, y)| cfg.g_sink * (map.get(x, y, 0) - cfg.ambient_k))
            .sum();
        let total = power.total_w();
        assert!(
            (sink_w - total).abs() / total < 1e-3,
            "sink {sink_w} W vs injected {total} W"
        );
    }

    #[test]
    fn far_tier_runs_hotter() {
        // Uniform power: the tier farthest from the sink is hottest.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.4).unwrap();
                }
            }
        }
        let map = solve(&power, &ThermalConfig::m3d());
        let t0 = map.get(2, 2, 0);
        let t3 = map.get(2, 2, 3);
        assert!(t3 > t0, "bottom tier {t3} must exceed sink tier {t0}");
    }

    #[test]
    fn hotspot_location_found() {
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        power.set(4, 1, 3, 3.0).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert_eq!(map.argmax(), (4, 1, 3));
        assert!(map.get(4, 1, 3) > map.get(0, 4, 0) + 1.0);
    }

    #[test]
    fn m3d_cooler_than_tsv() {
        // Same power map: the M3D stack's better vertical conduction
        // lowers the peak temperature (Section I).
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                power.set(x, y, 3, 0.8).unwrap();
            }
        }
        let m3d = solve(&power, &ThermalConfig::m3d());
        let tsv = solve(&power, &ThermalConfig::tsv());
        assert!(
            m3d.peak_k() < tsv.peak_k(),
            "M3D {} K should beat TSV {} K",
            m3d.peak_k(),
            tsv.peak_k()
        );
    }

    #[test]
    fn spreading_power_lowers_peak() {
        // A concentrated column vs the same power spread over the system.
        let mut concentrated = PowerMap::new(5, 5, 4).unwrap();
        for z in 0..4 {
            concentrated.set(2, 2, z, 1.0).unwrap();
        }
        let mut spread = PowerMap::new(5, 5, 4).unwrap();
        for (i, (x, y)) in [(0u16, 0u16), (4, 0), (0, 4), (4, 4)].iter().enumerate() {
            spread
                .set(*x, *y, topology::narrow::u16_idx(i), 1.0)
                .unwrap();
        }
        let cfg = ThermalConfig::m3d();
        let peak_conc = solve(&concentrated, &cfg).peak_k();
        let peak_spread = solve(&spread, &cfg).peak_k();
        assert!(
            peak_conc > peak_spread + 1.0,
            "column {peak_conc} K vs spread {peak_spread} K"
        );
    }

    #[test]
    fn tier_slice_shape() {
        let power = PowerMap::new(3, 4, 2).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        let slice = map.tier_slice(1);
        assert_eq!(slice.len(), 4);
        assert_eq!(slice[0].len(), 3);
    }

    #[test]
    fn hotspot_count_thresholds() {
        let mut power = PowerMap::new(4, 4, 1).unwrap();
        power.set(0, 0, 0, 5.0).unwrap();
        let map = solve(&power, &ThermalConfig::m3d());
        assert!(map.hotspot_count(300.0) == 16);
        assert!(map.hotspot_count(map.peak_k() + 1.0) == 0);
    }

    #[test]
    fn bounds_are_validated() {
        let mut power = PowerMap::new(3, 3, 1).unwrap();
        assert!(matches!(
            power.set(3, 0, 0, 1.0),
            Err(ThermalError::OutOfBounds { .. })
        ));
        assert!(PowerMap::new(0, 3, 1).is_err());
    }

    /// A representative non-uniform power map for solver-equivalence
    /// tests.
    fn gradient_power(w: u16, h: u16, tiers: u16) -> PowerMap {
        let mut power = PowerMap::new(w, h, tiers).unwrap();
        for x in 0..w {
            for y in 0..h {
                for z in 0..tiers {
                    power
                        .set(x, y, z, 0.1 + 0.05 * f64::from(x + 2 * y + 3 * z))
                        .unwrap();
                }
            }
        }
        power
    }

    #[test]
    fn red_black_agrees_with_the_reference_oracle() {
        // Both solvers iterate the same fixed-point equations; converged
        // runs must land within a few tolerances of each other on every
        // cell, for both stack configurations.
        for cfg in [ThermalConfig::m3d(), ThermalConfig::tsv()] {
            let power = gradient_power(5, 5, 4);
            let rb = solve_red_black(&power, &cfg, 1);
            let gs = solve_reference(&power, &cfg);
            assert!(rb.converged && gs.converged);
            for z in 0..4 {
                for y in 0..5 {
                    for x in 0..5 {
                        let (a, b) = (rb.get(x, y, z), gs.get(x, y, z));
                        assert!((a - b).abs() < 5e-4, "cell ({x},{y},{z}): rb {a} vs gs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn red_black_converges_much_faster_than_the_reference() {
        let power = gradient_power(5, 5, 4);
        let cfg = ThermalConfig::m3d();
        let rb = solve_red_black(&power, &cfg, 1);
        let gs = solve_reference(&power, &cfg);
        assert!(
            gs.iterations >= 3 * rb.iterations,
            "SOR must cut sweeps >=3x: reference {} vs red-black {}",
            gs.iterations,
            rb.iterations
        );
    }

    #[test]
    fn red_black_is_thread_count_independent() {
        // Colors only read the opposite color, so chunking a sweep across
        // any worker count is bit-identical to the sequential loop.
        let power = gradient_power(6, 5, 4);
        let cfg = ThermalConfig::m3d();
        let one = solve_red_black(&power, &cfg, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(solve_red_black(&power, &cfg, threads), one);
        }
    }

    #[test]
    fn converged_runs_report_residual_under_tolerance() {
        let power = gradient_power(5, 5, 4);
        let cfg = ThermalConfig::m3d();
        let map = solve(&power, &cfg);
        assert!(map.converged);
        assert!(map.residual_k < cfg.tolerance_k);
        assert!(map.iterations < cfg.max_iters);
        let checked = solve_checked(&power, &cfg).expect("converges");
        // Another test may legitimately flip the process-default solver
        // between the two calls; both solvers agree within tolerance.
        assert!((checked.peak_k() - map.peak_k()).abs() < 5e-4);
    }

    #[test]
    fn capped_runs_are_flagged_not_silent() {
        // An unreachable tolerance within 3 sweeps: the map must say so
        // and the checked API must turn it into a typed error.
        let power = gradient_power(5, 5, 4);
        let cfg = ThermalConfig {
            max_iters: 3,
            tolerance_k: 1e-12,
            ..ThermalConfig::m3d()
        };
        let map = solve(&power, &cfg);
        assert!(!map.converged);
        assert_eq!(map.iterations, 3);
        assert!(map.residual_k >= cfg.tolerance_k);
        assert_eq!(
            solve_checked(&power, &cfg),
            Err(ThermalError::NotConverged { iterations: 3 })
        );
    }

    #[test]
    fn solver_selector_round_trips() {
        // Exercise the dispatch surface without disturbing other tests:
        // restore the default afterwards.
        let before = default_solver();
        set_default_solver(Solver::GaussSeidelReference);
        assert_eq!(default_solver(), Solver::GaussSeidelReference);
        set_default_solver(Solver::RedBlackSor);
        assert_eq!(default_solver(), Solver::RedBlackSor);
        set_default_solver(before);
    }

    #[test]
    fn paper_scale_temperatures() {
        // A 100-PE system at ~0.5 W/PE should land peak temperatures in
        // the 330-370 K band where the ReRAM accuracy effects of Fig. 6
        // operate.
        let mut power = PowerMap::new(5, 5, 4).unwrap();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..4 {
                    power.set(x, y, z, 0.5).unwrap();
                }
            }
        }
        let map = solve(&power, &ThermalConfig::m3d());
        let peak = map.peak_k();
        assert!(
            (325.0..385.0).contains(&peak),
            "peak {peak} K outside the paper's operating band"
        );
    }
}

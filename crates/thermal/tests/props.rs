//! Property-based tests of the thermal solver's physical invariants.

use proptest::prelude::*;
use thermal::{solve, PowerMap, ThermalConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Superposition: the temperature rise of the sum of two power maps
    /// equals the sum of the rises (the system is linear).
    #[test]
    fn solver_is_linear(
        x1 in 0u16..4, y1 in 0u16..4, p1 in 0.1f64..3.0,
        x2 in 0u16..4, y2 in 0u16..4, p2 in 0.1f64..3.0,
    ) {
        let cfg = ThermalConfig::m3d();
        let mut a = PowerMap::new(4, 4, 2).unwrap();
        a.set(x1, y1, 0, p1).unwrap();
        let mut b = PowerMap::new(4, 4, 2).unwrap();
        b.set(x2, y2, 1, p2).unwrap();
        let mut ab = PowerMap::new(4, 4, 2).unwrap();
        ab.add(x1, y1, 0, p1).unwrap();
        ab.add(x2, y2, 1, p2).unwrap();

        let ta = solve(&a, &cfg);
        let tb = solve(&b, &cfg);
        let tab = solve(&ab, &cfg);
        for z in 0..2 {
            for y in 0..4 {
                for x in 0..4 {
                    let superposed =
                        ta.get(x, y, z) + tb.get(x, y, z) - cfg.ambient_k;
                    prop_assert!((tab.get(x, y, z) - superposed).abs() < 1e-3);
                }
            }
        }
    }

    /// Monotonicity: adding power anywhere cannot cool any cell.
    #[test]
    fn more_power_never_cools(
        x in 0u16..4, y in 0u16..4, z in 0u16..2, extra in 0.1f64..2.0,
    ) {
        let cfg = ThermalConfig::m3d();
        let mut base = PowerMap::new(4, 4, 2).unwrap();
        base.set(1, 1, 1, 1.0).unwrap();
        let t0 = solve(&base, &cfg);
        base.add(x, y, z, extra).unwrap();
        let t1 = solve(&base, &cfg);
        for zz in 0..2 {
            for yy in 0..4 {
                for xx in 0..4 {
                    prop_assert!(t1.get(xx, yy, zz) >= t0.get(xx, yy, zz) - 1e-6);
                }
            }
        }
    }

    /// All temperatures stay at or above ambient (no spontaneous cooling).
    #[test]
    fn no_cell_below_ambient(watts in prop::collection::vec(0.0f64..2.0, 8)) {
        let cfg = ThermalConfig::m3d();
        let mut power = PowerMap::new(4, 2, 1).unwrap();
        for (i, &w) in watts.iter().enumerate() {
            power.set((i % 4) as u16, (i / 4) as u16, 0, w).unwrap();
        }
        let map = solve(&power, &cfg);
        prop_assert!(map.mean_k() >= cfg.ambient_k - 1e-9);
        prop_assert!(map.peak_k() >= cfg.ambient_k - 1e-9);
    }
}

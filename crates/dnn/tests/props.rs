//! Property-based tests of the DNN graph builder and segment compression.

use dnn::{Dataset, GraphBuilder, SegmentGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random conv stacks: parameters, MACs and activations are positive,
    /// segment compression conserves parameters, and the segment count is
    /// the weighted-layer count plus the input.
    #[test]
    fn random_conv_stacks_compress_consistently(
        widths in prop::collection::vec(8u32..64, 1..8),
        with_pool in any::<bool>(),
    ) {
        let mut g = GraphBuilder::new("rand", Dataset::Cifar10);
        let mut cur = g.input();
        for (i, &w) in widths.iter().enumerate() {
            cur = g.conv_bn_relu(cur, &format!("c{i}"), w, 3, 1, 1).unwrap();
            if with_pool && i == 0 {
                cur = g.max_pool(cur, "pool", 2, 2, 0).unwrap();
            }
        }
        let p = g.global_avg_pool(cur, "gap").unwrap();
        g.linear(p, "fc", 10, true).unwrap();
        let net = g.build();
        prop_assert!(net.total_params() > 0);
        prop_assert!(net.total_macs() > 0);
        let sg = SegmentGraph::from_layer_graph(&net);
        prop_assert_eq!(sg.total_params(), net.total_params());
        prop_assert_eq!(sg.segment_count(), 1 + net.weighted_layer_count());
        // A pure chain compresses to sequential edges only.
        for e in sg.edges() {
            prop_assert_eq!(e.dst.0, e.src.0 + 1);
        }
    }

    /// Residual towers: the skip volume never exceeds the sequential
    /// volume and every weight matrix multiplies out to the conv size.
    #[test]
    fn residual_towers_have_minority_skip_traffic(blocks in 1usize..6) {
        let mut g = GraphBuilder::new("res", Dataset::Cifar10);
        let x = g.input();
        let mut cur = g.conv_bn_relu(x, "stem", 16, 3, 1, 1).unwrap();
        for i in 0..blocks {
            let c1 = g.conv_bn_relu(cur, &format!("b{i}.c1"), 16, 3, 1, 1).unwrap();
            let c2 = g.conv(c1, &format!("b{i}.c2"), 16, 3, 1, 1, false).unwrap();
            let b = g.batchnorm(c2, &format!("b{i}.bn")).unwrap();
            let a = g.add(b, cur, &format!("b{i}.add")).unwrap();
            cur = g.relu(a, &format!("b{i}.relu")).unwrap();
        }
        let net = g.build();
        let split = net.activation_split();
        prop_assert!(split.skip > 0);
        prop_assert!(split.sequential > split.skip);
    }
}

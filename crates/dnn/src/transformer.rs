//! Transformer (BERT) storage analysis for Section IV of the paper.
//!
//! Self-attention recomputes its Q/K/V and attention-score matrices for
//! every input, so a crossbar-PIM mapping must rewrite those "intermediate
//! matrices" constantly — which NVM endurance cannot sustain. The paper
//! quantifies the pressure as the ratio of intermediate-matrix storage to
//! static weight storage (up to 8.98x for BERT-Base, 2.06x for BERT-Tiny).
//! This module provides the parametric accounting behind that analysis.

use serde::{Deserialize, Serialize};

/// Configuration of a BERT-style Transformer encoder stack.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BertConfig {
    /// Encoder block count `L`.
    pub layers: u32,
    /// Hidden width `H`.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Feed-forward inner width `F` (usually `4H`).
    pub ff: u32,
    /// WordPiece vocabulary size (embedding table rows).
    pub vocab: u32,
    /// Maximum position embeddings.
    pub max_pos: u32,
}

impl BertConfig {
    /// BERT-Base: 12 layers, 768 hidden, 12 heads.
    pub fn base() -> Self {
        BertConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            ff: 3072,
            vocab: 30_522,
            max_pos: 512,
        }
    }

    /// BERT-Tiny: 2 layers, 128 hidden, 2 heads.
    pub fn tiny() -> Self {
        BertConfig {
            layers: 2,
            hidden: 128,
            heads: 2,
            ff: 512,
            vocab: 30_522,
            max_pos: 512,
        }
    }

    /// Static weight elements in one encoder layer's attention block
    /// (`W_Q, W_K, W_V, W_O`), biases included.
    pub fn attention_weights_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        4 * h * h + 4 * h
    }

    /// Static weight elements in one encoder layer's feed-forward block
    /// (two FC layers), biases included.
    pub fn ff_weights_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ff as u64;
        2 * h * f + f + h
    }

    /// Static weight elements per encoder layer (attention + FF +
    /// two LayerNorm parameter pairs).
    pub fn weights_per_layer(&self) -> u64 {
        self.attention_weights_per_layer() + self.ff_weights_per_layer() + 4 * self.hidden as u64
    }

    /// Embedding-table elements (token + position + segment + LayerNorm).
    pub fn embedding_weights(&self) -> u64 {
        let h = self.hidden as u64;
        (self.vocab as u64 + self.max_pos as u64 + 2) * h + 2 * h
    }

    /// Total model weight elements.
    pub fn total_weights(&self) -> u64 {
        self.embedding_weights() + self.layers as u64 * self.weights_per_layer()
    }

    /// Intermediate-matrix elements produced in one encoder layer for a
    /// sequence of length `seq`: Q, K, V, per-head attention scores,
    /// softmax output, context, attention output, FF hidden, FF output and
    /// the two LayerNorm outputs. These are the dynamically rewritten
    /// values that defeat NVM crossbar mapping.
    pub fn intermediates_per_layer(&self, seq: u32) -> u64 {
        let s = seq as u64;
        let h = self.hidden as u64;
        let f = self.ff as u64;
        let heads = self.heads as u64;
        let qkv = 3 * s * h;
        let scores = heads * s * s;
        let softmax = heads * s * s;
        let context = s * h;
        let attn_out = s * h;
        let ff_hidden = s * f;
        let ff_out = s * h;
        let layernorms = 2 * s * h;
        qkv + scores + softmax + context + attn_out + ff_hidden + ff_out + layernorms
    }

    /// Total intermediate elements across all layers for one input.
    pub fn total_intermediates(&self, seq: u32) -> u64 {
        self.layers as u64 * self.intermediates_per_layer(seq)
    }

    /// Storage ratio: intermediate bytes over *attention* weight bytes per
    /// layer, with separate precisions for dynamic values and static
    /// weights. With 16-bit intermediates over 8-bit weights at `seq=512`,
    /// BERT-Base lands at ~9.3x — the regime of the paper's 8.98x claim.
    pub fn attention_storage_ratio(&self, seq: u32, int_bytes: u32, weight_bytes: u32) -> f64 {
        let inter = self.intermediates_per_layer(seq) as f64 * int_bytes as f64;
        let weights = self.attention_weights_per_layer() as f64 * weight_bytes as f64;
        inter / weights
    }

    /// Storage ratio against the *full* per-layer weights (attention + FF).
    pub fn layer_storage_ratio(&self, seq: u32, int_bytes: u32, weight_bytes: u32) -> f64 {
        let inter = self.intermediates_per_layer(seq) as f64 * int_bytes as f64;
        let weights = self.weights_per_layer() as f64 * weight_bytes as f64;
        inter / weights
    }

    /// Crossbar writes per inference if intermediates were naively mapped
    /// to NVM: every intermediate element is one cell write. Dividing the
    /// endurance budget by this rate bounds the device lifetime (see
    /// [`crate::transformer::lifetime_inferences`]).
    pub fn writes_per_inference(&self, seq: u32) -> u64 {
        self.total_intermediates(seq)
    }
}

/// Number of inferences until the most-written cell hits the endurance
/// limit, assuming perfect wear levelling across `cells` NVM cells.
///
/// # Examples
///
/// ```
/// use dnn::BertConfig;
///
/// let base = BertConfig::base();
/// let writes = base.writes_per_inference(512);
/// // 1e6-cycle ReRAM endurance, 100M cells of capacity:
/// let life = dnn::lifetime_inferences(writes, 100_000_000, 1_000_000);
/// assert!(life < 1_000_000_000, "NVM endurance caps transformer service life");
/// ```
pub fn lifetime_inferences(writes_per_inference: u64, cells: u64, endurance_cycles: u64) -> u64 {
    if writes_per_inference == 0 {
        return u64::MAX;
    }
    // Total write budget spread over the working set.
    let budget = cells.saturating_mul(endurance_cycles);
    budget / writes_per_inference
}

/// One row of the Section IV storage sweep.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageRow {
    /// Sequence length.
    pub seq: u32,
    /// Intermediate elements per encoder layer.
    pub intermediates_per_layer: u64,
    /// Ratio vs attention weights (fp16 intermediates / int8 weights).
    pub ratio_attention_fp16_int8: f64,
    /// Ratio vs full layer weights (same precision).
    pub ratio_layer_same_precision: f64,
}

/// Sweeps sequence lengths for a configuration, producing the Section IV
/// analysis table.
pub fn storage_sweep(cfg: &BertConfig, seqs: &[u32]) -> Vec<StorageRow> {
    seqs.iter()
        .map(|&seq| StorageRow {
            seq,
            intermediates_per_layer: cfg.intermediates_per_layer(seq),
            ratio_attention_fp16_int8: cfg.attention_storage_ratio(seq, 2, 1),
            ratio_layer_same_precision: cfg.layer_storage_ratio(seq, 1, 1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_param_count_is_110m() {
        let cfg = BertConfig::base();
        let total = cfg.total_weights() as f64 / 1e6;
        assert!(
            (total - 110.0).abs() < 2.0,
            "BERT-Base ~110M params, got {total}M"
        );
    }

    #[test]
    fn tiny_param_count_is_4m() {
        let cfg = BertConfig::tiny();
        let total = cfg.total_weights() as f64 / 1e6;
        assert!(
            (total - 4.4).abs() < 0.3,
            "BERT-Tiny ~4.4M params, got {total}M"
        );
    }

    #[test]
    fn base_attention_ratio_matches_paper_regime() {
        // Paper: intermediate matrices up to 8.98x the weight storage for
        // BERT-Base. With seq=512, fp16 intermediates vs int8 attention
        // weights we land at ~9.3x.
        let r = BertConfig::base().attention_storage_ratio(512, 2, 1);
        assert!((8.0..=10.5).contains(&r), "BERT-Base ratio {r}");
    }

    #[test]
    fn tiny_ratio_matches_paper_regime() {
        // Paper: 2.06x for BERT-Tiny. At its typical 128-token operating
        // point the same-precision full-layer ratio is ~1.3x and the
        // fp16/int8 attention ratio ~3.5x; the paper's 2.06x sits between
        // these accountings.
        let cfg = BertConfig::tiny();
        let low = cfg.layer_storage_ratio(128, 1, 1);
        let high = cfg.attention_storage_ratio(128, 2, 1);
        assert!(
            low < 2.06 && 2.06 < high,
            "paper value must sit in [{low}, {high}]"
        );
    }

    #[test]
    fn intermediates_grow_quadratically_with_seq() {
        let cfg = BertConfig::base();
        let i256 = cfg.intermediates_per_layer(256) as f64;
        let i512 = cfg.intermediates_per_layer(512) as f64;
        let growth = i512 / i256;
        assert!(
            growth > 2.0,
            "score matrices grow with seq^2 (got {growth})"
        );
        assert!(growth < 4.0);
    }

    #[test]
    fn storage_sweep_is_monotonic() {
        let rows = storage_sweep(&BertConfig::base(), &[64, 128, 256, 512, 1024]);
        assert_eq!(rows.len(), 5);
        for pair in rows.windows(2) {
            assert!(pair[1].intermediates_per_layer > pair[0].intermediates_per_layer);
            assert!(pair[1].ratio_attention_fp16_int8 > pair[0].ratio_attention_fp16_int8);
        }
    }

    #[test]
    fn lifetime_shrinks_with_writes() {
        let a = lifetime_inferences(1_000_000, 100_000_000, 1_000_000);
        let b = lifetime_inferences(10_000_000, 100_000_000, 1_000_000);
        assert!(a > b);
        assert_eq!(lifetime_inferences(0, 1, 1), u64::MAX);
    }

    #[test]
    fn base_writes_dwarf_tiny_writes() {
        let base = BertConfig::base().writes_per_inference(512);
        let tiny = BertConfig::tiny().writes_per_inference(128);
        assert!(base > 20 * tiny);
    }
}

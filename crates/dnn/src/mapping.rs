//! Per-segment loop-nest mappings: the representation behind the
//! [`Dataflow`] façade.
//!
//! A segment's anchoring weighted layer is a GEMM `O[M,N] = W[M,K] ×
//! I[K,N]` with `M = weight_cols` (output channels), `K = weight_rows`
//! (unrolled input patch) and `N` the MVM count (output pixels × frames).
//! A [`Mapping`] tiles those three loops across the platform's four
//! memory levels — ReRAM crossbar registers, bank buffer, chiplet SRAM,
//! NoI — and fixes a loop order per level. Which loop runs *innermost*
//! at the register level decides which operand stays resident:
//!
//! * `N` innermost — weights stationary: the crossbar reuses its weight
//!   tile across input vectors (the WS preset, PIM's native mode);
//! * `K` innermost — outputs stationary: partial sums accumulate in the
//!   bank registers across `t_K` reduction steps, so only every `t_K`-th
//!   psum reaches the buffer (the OS preset at `t_K = 4`);
//! * `M` innermost — inputs stationary: an input slice is reused across
//!   `t_M` output columns (quartered reads at `t_M = 4`), but with no
//!   psum residency the weight tile must re-stage per frame (the IS
//!   preset's extra half weight-feed and its crossbar stall).
//!
//! The fused flag models a PIMfused-style pipeline over a fusible edge:
//! the intermediate tensor is produced and consumed inside the pipeline,
//! halving the producer's psum write-backs and the consumer's input
//! reads (the FL preset).
//!
//! Per-level access energies come from the existing [`BufferProfile`]
//! energy split ([`MAC_ARRAY_SHARE`] and friends): folding per-MAC
//! access counts × level shares yields the mapping's energy factor. The
//! four preset constructors *snap* their factors to the legacy
//! [`Dataflow`] literals so the enum path stays byte-identical; derived
//! mappings (what [`Dataflow::Searched`] resolves to) compute the fold
//! directly, which is how register tiles beyond the presets' `t = 4`
//! buy extra energy at the same latency.
//!
//! # Examples
//!
//! ```
//! use dnn::mapping::{Loop, Mapping, NoiPolicy};
//! use dnn::{build_model, Dataset, Dataflow, ModelKind, SegmentGraph};
//!
//! let g = build_model(ModelKind::ResNet18, Dataset::ImageNet)?;
//! let sg = SegmentGraph::from_layer_graph(&g);
//! let seg = &sg.segments()[1];
//!
//! // The WS preset is the legacy enum, byte for byte.
//! let ws = Mapping::weight_stationary(seg);
//! assert_eq!(ws.energy_factor(), Dataflow::WeightStationary.mac_energy_factor());
//! assert_eq!(ws.noi_policy(), NoiPolicy::Tiled);
//!
//! // A derived mapping with a deeper reduction tile beats the OS preset.
//! let deep = Mapping::derived(Loop::K, 16, false, seg);
//! assert!(deep.energy_factor() < Mapping::output_stationary(seg).energy_factor());
//! # Ok::<(), dnn::GraphError>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataflow::{
    BufferProfile, Dataflow, INPUT_READ_SHARE, MAC_ARRAY_SHARE, PSUM_WRITE_SHARE, WEIGHT_FEED_SHARE,
};
use crate::segment::{Segment, SegmentGraph};

/// One of the three GEMM loops of a segment.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Loop {
    /// Output channels / features (`weight_cols`).
    M,
    /// Unrolled input patch — the reduction loop (`weight_rows`).
    K,
    /// MVM count: output pixels × frames.
    N,
}

impl Loop {
    /// All loops, in canonical order.
    pub const ALL: [Loop; 3] = [Loop::M, Loop::K, Loop::N];
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Loop::M => "M",
            Loop::K => "K",
            Loop::N => "N",
        })
    }
}

/// A memory level of the platform, innermost first.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum MemLevel {
    /// ReRAM crossbar + its peripheral registers (the register tile).
    Crossbar,
    /// Per-bank activation/psum buffer.
    BankBuffer,
    /// Chiplet-shared SRAM.
    ChipletSram,
    /// The network-on-interposer: tiles at this level cross chiplets.
    Noi,
}

impl MemLevel {
    /// All levels, innermost first.
    pub const ALL: [MemLevel; 4] = [
        MemLevel::Crossbar,
        MemLevel::BankBuffer,
        MemLevel::ChipletSram,
        MemLevel::Noi,
    ];
}

/// Tiling factors and loop order of one memory level.
///
/// The per-level factors multiply across levels to (at least) cover the
/// segment's loop extents; the order lists loops outermost first.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LevelTiling {
    /// Which level this tiling describes.
    pub level: MemLevel,
    /// Tile factor over the `M` loop.
    pub m: u64,
    /// Tile factor over the `K` loop.
    pub k: u64,
    /// Tile factor over the `N` loop.
    pub n: u64,
    /// Loop order at this level, outermost first.
    pub order: [Loop; 3],
}

impl LevelTiling {
    fn unit(level: MemLevel, order: [Loop; 3]) -> LevelTiling {
        LevelTiling {
            level,
            m: 1,
            k: 1,
            n: 1,
            order,
        }
    }

    /// The factor assigned to `l` at this level.
    pub fn factor(&self, l: Loop) -> u64 {
        match l {
            Loop::M => self.m,
            Loop::K => self.k,
            Loop::N => self.n,
        }
    }
}

/// How a mapping's outermost (NoI) level moves tensors between chiplets —
/// the discrete policy [`crate::Dataflow`] used to select by enum match.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NoiPolicy {
    /// Spatially-tiled activation shipping (the seed scheme; WS).
    Tiled,
    /// Stage the consumer's weight tile once per batch, stream finished
    /// output slices back per frame where that is cheaper (OS).
    StageOncePerBatch,
    /// Re-stage the weight tile and write the output back every frame
    /// (IS — no psum residency in the borrowed crossbars).
    StagePerFrame,
    /// Fused tile pipeline over fusible edges: only halo bands cross
    /// the NoI; non-fusible edges fall back to [`NoiPolicy::Tiled`] (FL).
    FusedHalo,
}

/// Per-MAC energy contribution of each memory level, derived from the
/// [`BufferProfile`] energy split. Summing the four contributions gives
/// [`Mapping::energy_factor`] for derived mappings.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LevelEnergy {
    /// The level.
    pub level: MemLevel,
    /// Accesses per MAC charged to this level.
    pub accesses_per_mac: f64,
    /// Energy share per access (the level's slice of the per-MAC split).
    pub energy_share: f64,
}

/// The GEMM loop extents of a segment: `O[M,N] = W[M,K] × I[K,N]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LoopExtents {
    /// Output channels (`weight_cols`), at least 1.
    pub m: u64,
    /// Unrolled input patch (`weight_rows`), at least 1.
    pub k: u64,
    /// MVM count (`macs / (m·k)`), at least 1.
    pub n: u64,
}

impl LoopExtents {
    /// Extents of `seg`'s anchoring GEMM (all-1 for the parameter-free
    /// input pseudo-segment).
    pub fn of(seg: &Segment) -> LoopExtents {
        let m = u64::from(seg.weight_cols).max(1);
        let k = u64::from(seg.weight_rows).max(1);
        let n = seg.macs.checked_div(m * k).map_or(1, |v| v.max(1));
        LoopExtents { m, k, n }
    }

    /// The extent of `l`.
    pub fn extent(&self, l: Loop) -> u64 {
        match l {
            Loop::M => self.m,
            Loop::K => self.k,
            Loop::N => self.n,
        }
    }
}

/// Loop order (outermost first) whose innermost loop is `inner`,
/// following the FactorFlow convention: WS = `[M,K,N]`, OS = `[M,N,K]`,
/// IS = `[K,N,M]`.
fn order_for_innermost(inner: Loop) -> [Loop; 3] {
    match inner {
        Loop::N => [Loop::M, Loop::K, Loop::N],
        Loop::K => [Loop::M, Loop::N, Loop::K],
        Loop::M => [Loop::K, Loop::N, Loop::M],
    }
}

/// A per-segment loop-nest mapping: tiling factors and loop order per
/// memory level, the fused-pipeline flag, and the folded per-MAC energy
/// and latency factors the `pim` cost model consumes.
///
/// Construct via the four presets ([`Mapping::weight_stationary`] etc.,
/// byte-identical to the legacy [`Dataflow`] enum factors) or
/// [`Mapping::derived`] (the searchable space).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Mapping {
    /// Per-level tilings, innermost ([`MemLevel::Crossbar`]) first.
    pub levels: [LevelTiling; 4],
    /// Whether this segment runs inside a fused tile pipeline.
    pub fused: bool,
    profile: BufferProfile,
    energy_factor: f64,
    latency_factor: f64,
    label: MappingLabel,
}

/// How a mapping was constructed — preset tag or derived parameters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
enum MappingLabel {
    Preset(Dataflow),
    Derived {
        innermost: Loop,
        reg_tile: u64,
        fused: bool,
    },
}

impl Mapping {
    /// Register-tile depth used by the hand presets.
    pub const PRESET_REG_TILE: u64 = 4;

    /// The weight-stationary preset: `N` innermost, unit buffer traffic.
    /// Reproduces the seed tiled scheme byte-for-byte.
    pub fn weight_stationary(seg: &Segment) -> Mapping {
        Mapping::preset(Dataflow::WeightStationary, seg)
    }

    /// The output-stationary preset: `K` innermost, psums accumulate in
    /// bank registers across a 4-deep reduction tile.
    pub fn output_stationary(seg: &Segment) -> Mapping {
        Mapping::preset(Dataflow::OutputStationary, seg)
    }

    /// The input-stationary preset: `M` innermost, input slices reused
    /// across a 4-wide column tile at the cost of per-frame weight
    /// re-staging.
    pub fn input_stationary(seg: &Segment) -> Mapping {
        Mapping::preset(Dataflow::InputStationary, seg)
    }

    /// The fused-layer preset: WS loop nest inside a fused tile pipeline.
    pub fn fused_layer(seg: &Segment) -> Mapping {
        Mapping::preset(Dataflow::FusedLayer, seg)
    }

    /// The preset mapping for a hand dataflow mode.
    ///
    /// The structural loop nest follows the derivation rules of
    /// [`Mapping::derived`], but the energy/latency factors are snapped
    /// to the legacy [`Dataflow::mac_energy_factor`] /
    /// [`Dataflow::latency_factor`] literals so every pre-existing
    /// number stays byte-identical (`Mapping::derived` reproduces them
    /// within 1e-12; the literals are the pinned truth).
    ///
    /// # Panics
    ///
    /// Panics on [`Dataflow::Searched`], which has no preset — resolve
    /// it through `mapper::search` first.
    pub fn preset(df: Dataflow, seg: &Segment) -> Mapping {
        let (innermost, fused) = match df {
            Dataflow::WeightStationary => (Loop::N, false),
            Dataflow::OutputStationary => (Loop::K, false),
            Dataflow::InputStationary => (Loop::M, false),
            Dataflow::FusedLayer => (Loop::N, true),
            Dataflow::Searched => {
                panic!("Dataflow::Searched has no preset mapping; resolve it via mapper::search")
            }
        };
        let mut m = Mapping::derived(innermost, Mapping::PRESET_REG_TILE, fused, seg);
        m.profile = df.buffer_profile();
        m.energy_factor = df.mac_energy_factor();
        m.latency_factor = df.latency_factor();
        m.label = MappingLabel::Preset(df);
        m
    }

    /// A derived mapping: `innermost` loop at the register level with a
    /// `reg_tile`-deep register tile (clamped to the loop extent), inside
    /// a fused pipeline when `fused`.
    ///
    /// Buffer traffic follows from residency:
    ///
    /// * inputs stationary (`M` innermost): input reads drop to
    ///   `1/t_M`, but weight tiles re-stage per frame (+0.5 feeds) and
    ///   the re-staging stalls the crossbar
    ///   (latency `1 + 0.2·(feeds − 1)`);
    /// * outputs stationary (`K` innermost): psum write-backs drop to
    ///   `1/t_K`;
    /// * weights stationary (`N` innermost): the baseline — the tile
    ///   only widens weight reuse the crossbar already has;
    /// * `fused` halves input reads and psum writes (the intermediate
    ///   tensor lives inside the pipeline).
    ///
    /// Energy is the [`BufferProfile::energy_factor`] fold of the
    /// resulting per-MAC access counts.
    pub fn derived(innermost: Loop, reg_tile: u64, fused: bool, seg: &Segment) -> Mapping {
        let ext = LoopExtents::of(seg);
        let order = order_for_innermost(innermost);
        let t = reg_tile.clamp(1, ext.extent(innermost).max(1));

        let mut crossbar = LevelTiling::unit(MemLevel::Crossbar, order);
        match innermost {
            Loop::M => crossbar.m = t,
            Loop::K => crossbar.k = t,
            Loop::N => crossbar.n = t,
        }
        let noi = LevelTiling {
            level: MemLevel::Noi,
            m: ext.m.div_ceil(crossbar.m),
            k: ext.k.div_ceil(crossbar.k),
            n: ext.n.div_ceil(crossbar.n),
            order,
        };
        let levels = [
            crossbar,
            LevelTiling::unit(MemLevel::BankBuffer, order),
            LevelTiling::unit(MemLevel::ChipletSram, order),
            noi,
        ];

        let mut input_reads = if innermost == Loop::M {
            1.0 / t as f64
        } else {
            1.0
        };
        let mut psum_writes = if innermost == Loop::K {
            1.0 / t as f64
        } else {
            1.0
        };
        let weight_feeds = if innermost == Loop::M { 1.5 } else { 1.0 };
        if fused {
            input_reads *= 0.5;
            psum_writes *= 0.5;
        }
        let profile = BufferProfile {
            input_reads_per_mac: input_reads,
            psum_writes_per_mac: psum_writes,
            weight_feeds_per_mac: weight_feeds,
        };
        Mapping {
            levels,
            fused,
            profile,
            energy_factor: profile.energy_factor(),
            latency_factor: 1.0 + 0.2 * (weight_feeds - 1.0),
            label: MappingLabel::Derived {
                innermost,
                reg_tile: t,
                fused,
            },
        }
    }

    /// The innermost (register-level) loop.
    pub fn innermost(&self) -> Loop {
        self.levels[0].order[2]
    }

    /// Per-MAC buffer traffic implied by the loop nest.
    pub fn buffer_profile(&self) -> BufferProfile {
        self.profile
    }

    /// Per-MAC compute-energy multiplier (the per-level fold; legacy
    /// literal for presets).
    pub fn energy_factor(&self) -> f64 {
        self.energy_factor
    }

    /// Per-segment latency multiplier (weight re-staging stalls).
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Per-level access-energy breakdown: accesses/MAC × energy share
    /// per level. The crossbar carries the dataflow-invariant MAC-array
    /// share; buffer and SRAM levels scale with the profile. The four
    /// contributions sum to [`BufferProfile::energy_factor`] of this
    /// mapping's profile.
    pub fn level_energies(&self) -> [LevelEnergy; 4] {
        [
            LevelEnergy {
                level: MemLevel::Crossbar,
                accesses_per_mac: 1.0,
                energy_share: MAC_ARRAY_SHARE,
            },
            LevelEnergy {
                level: MemLevel::BankBuffer,
                accesses_per_mac: self.profile.input_reads_per_mac,
                energy_share: INPUT_READ_SHARE,
            },
            LevelEnergy {
                level: MemLevel::BankBuffer,
                accesses_per_mac: self.profile.psum_writes_per_mac,
                energy_share: PSUM_WRITE_SHARE,
            },
            LevelEnergy {
                level: MemLevel::ChipletSram,
                accesses_per_mac: self.profile.weight_feeds_per_mac,
                energy_share: WEIGHT_FEED_SHARE,
            },
        ]
    }

    /// The NoI movement policy implied by the outermost level: fused
    /// pipelines exchange halos; otherwise the innermost residency
    /// decides what is staged across chiplets.
    pub fn noi_policy(&self) -> NoiPolicy {
        if self.fused {
            NoiPolicy::FusedHalo
        } else {
            match self.innermost() {
                Loop::N => NoiPolicy::Tiled,
                Loop::K => NoiPolicy::StageOncePerBatch,
                Loop::M => NoiPolicy::StagePerFrame,
            }
        }
    }

    /// Short human-readable descriptor, e.g. `WS` or `K8` / `K8+f`.
    pub fn describe(&self) -> String {
        match self.label {
            MappingLabel::Preset(df) => df.name().to_string(),
            MappingLabel::Derived {
                innermost,
                reg_tile,
                fused,
            } => {
                if fused {
                    format!("{innermost}{reg_tile}+f")
                } else {
                    format!("{innermost}{reg_tile}")
                }
            }
        }
    }

    /// Stable descriptor fingerprint: hashes the full loop nest, fused
    /// flag and folded factor bits, so two mappings that would cost
    /// anything differently can never collide in the `EvalCache`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for lt in &self.levels {
            h.write_u64(lt.level as u64);
            h.write_u64(lt.m);
            h.write_u64(lt.k);
            h.write_u64(lt.n);
            for l in lt.order {
                h.write_u64(l as u64);
            }
        }
        h.write_u64(u64::from(self.fused));
        h.write_u64(self.energy_factor.to_bits());
        h.write_u64(self.latency_factor.to_bits());
        h.write_u64(self.profile.input_reads_per_mac.to_bits());
        h.write_u64(self.profile.psum_writes_per_mac.to_bits());
        h.write_u64(self.profile.weight_feeds_per_mac.to_bits());
        h.finish()
    }
}

impl Dataflow {
    /// The NoI movement policy of this mode's preset mapping — what the
    /// transfer expansion used to select by matching on the enum.
    ///
    /// # Panics
    ///
    /// Panics on [`Dataflow::Searched`]: the policy then depends on the
    /// resolved per-segment mapping ([`Mapping::noi_policy`]).
    pub fn noi_policy(self) -> NoiPolicy {
        match self {
            Dataflow::WeightStationary => NoiPolicy::Tiled,
            Dataflow::OutputStationary => NoiPolicy::StageOncePerBatch,
            Dataflow::InputStationary => NoiPolicy::StagePerFrame,
            Dataflow::FusedLayer => NoiPolicy::FusedHalo,
            Dataflow::Searched => panic!(
                "Dataflow::Searched has no single NoI policy; resolve it to a \
                 dnn::mapping::ModelMapping via mapper::search first"
            ),
        }
    }
}

/// FNV-1a, the same construction the core cache uses for config
/// fingerprints.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A whole-model mapping: one [`Mapping`] per segment, in segment order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ModelMapping {
    model: String,
    label: String,
    per_segment: Vec<Mapping>,
}

impl ModelMapping {
    /// Wraps explicit per-segment mappings (one per segment of `sg`, in
    /// segment order) under a display label.
    ///
    /// # Panics
    ///
    /// Panics when `per_segment.len()` does not match the segment count.
    pub fn from_mappings(
        sg: &SegmentGraph,
        label: &str,
        per_segment: Vec<Mapping>,
    ) -> ModelMapping {
        assert_eq!(
            per_segment.len(),
            sg.segment_count(),
            "one mapping per segment"
        );
        ModelMapping {
            model: sg.name().to_string(),
            label: label.to_string(),
            per_segment,
        }
    }

    /// The uniform preset mapping for a hand dataflow mode.
    ///
    /// # Panics
    ///
    /// Panics on [`Dataflow::Searched`] (see [`Mapping::preset`]).
    pub fn preset(df: Dataflow, sg: &SegmentGraph) -> ModelMapping {
        ModelMapping {
            model: sg.name().to_string(),
            label: df.name().to_string(),
            per_segment: sg
                .segments()
                .iter()
                .map(|seg| Mapping::preset(df, seg))
                .collect(),
        }
    }

    /// Model name this mapping was built for.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Display label (`WS`…`FL` for presets, search descriptor otherwise).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Per-segment mappings, in segment order.
    pub fn mappings(&self) -> &[Mapping] {
        &self.per_segment
    }

    /// The mapping of segment `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn segment(&self, idx: usize) -> &Mapping {
        &self.per_segment[idx]
    }

    /// Stable fingerprint over every per-segment descriptor (order
    /// sensitive) — the `EvalCache` key component that separates two
    /// resolved mappings under the same [`Dataflow`] tag.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.per_segment.len() as u64);
        for m in &self.per_segment {
            h.write_u64(m.fingerprint());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::resnet18;
    use crate::shapes::Dataset;

    fn segments() -> SegmentGraph {
        SegmentGraph::from_layer_graph(&resnet18(Dataset::ImageNet).unwrap())
    }

    #[test]
    fn presets_snap_to_the_legacy_literals() {
        let sg = segments();
        for df in Dataflow::all() {
            for seg in sg.segments() {
                let m = Mapping::preset(df, seg);
                // Bit-exact: the enum façade and the mapping engine must
                // produce the same doubles.
                assert_eq!(m.energy_factor(), df.mac_energy_factor(), "{df}");
                assert_eq!(m.latency_factor(), df.latency_factor(), "{df}");
                assert_eq!(m.buffer_profile(), df.buffer_profile(), "{df}");
                assert_eq!(m.describe(), df.name());
            }
        }
    }

    #[test]
    fn derived_rules_reproduce_the_presets() {
        let sg = segments();
        let seg = &sg.segments()[1];
        for (df, inner, fused) in [
            (Dataflow::WeightStationary, Loop::N, false),
            (Dataflow::OutputStationary, Loop::K, false),
            (Dataflow::InputStationary, Loop::M, false),
            (Dataflow::FusedLayer, Loop::N, true),
        ] {
            let d = Mapping::derived(inner, Mapping::PRESET_REG_TILE, fused, seg);
            assert!(
                (d.energy_factor() - df.mac_energy_factor()).abs() < 1e-12,
                "{df}: derived {} vs literal {}",
                d.energy_factor(),
                df.mac_energy_factor()
            );
            // The latency rule lands exactly on the IS literal.
            assert_eq!(d.latency_factor(), df.latency_factor(), "{df}");
        }
    }

    #[test]
    fn noi_policy_follows_residency() {
        let sg = segments();
        let seg = &sg.segments()[1];
        assert_eq!(
            Mapping::weight_stationary(seg).noi_policy(),
            NoiPolicy::Tiled
        );
        assert_eq!(
            Mapping::output_stationary(seg).noi_policy(),
            NoiPolicy::StageOncePerBatch
        );
        assert_eq!(
            Mapping::input_stationary(seg).noi_policy(),
            NoiPolicy::StagePerFrame
        );
        assert_eq!(Mapping::fused_layer(seg).noi_policy(), NoiPolicy::FusedHalo);
        assert_eq!(
            Mapping::derived(Loop::K, 8, false, seg).noi_policy(),
            NoiPolicy::StageOncePerBatch
        );
    }

    #[test]
    fn level_energies_sum_to_the_profile_fold() {
        let sg = segments();
        let seg = &sg.segments()[1];
        for m in [
            Mapping::weight_stationary(seg),
            Mapping::derived(Loop::K, 16, false, seg),
            Mapping::derived(Loop::M, 8, true, seg),
        ] {
            let sum: f64 = m
                .level_energies()
                .iter()
                .map(|le| le.accesses_per_mac * le.energy_share)
                .sum();
            assert!(
                (sum - m.buffer_profile().energy_factor()).abs() < 1e-12,
                "{}: {sum}",
                m.describe()
            );
        }
    }

    #[test]
    fn tiles_cover_the_loop_extents() {
        let sg = segments();
        for seg in sg.segments() {
            let ext = LoopExtents::of(seg);
            for m in [
                Mapping::weight_stationary(seg),
                Mapping::derived(Loop::K, 16, false, seg),
                Mapping::derived(Loop::M, 32, false, seg),
            ] {
                for l in Loop::ALL {
                    let product: u64 = m.levels.iter().map(|lt| lt.factor(l)).product();
                    assert!(
                        product >= ext.extent(l),
                        "{}: loop {l} product {product} < extent {}",
                        m.describe(),
                        ext.extent(l)
                    );
                }
            }
        }
    }

    #[test]
    fn deeper_register_tiles_monotonically_cut_energy() {
        let sg = segments();
        let seg = &sg.segments()[1];
        let mut last = f64::INFINITY;
        for t in [2u64, 4, 8, 16] {
            let e = Mapping::derived(Loop::K, t, false, seg).energy_factor();
            assert!(e < last, "t={t}: {e} vs {last}");
            last = e;
        }
        // And never below the dataflow-invariant floor.
        assert!(last > MAC_ARRAY_SHARE);
    }

    #[test]
    fn register_tile_clamps_to_the_extent() {
        let sg = segments();
        let seg = &sg.segments()[1];
        let huge = Mapping::derived(Loop::K, 1 << 40, false, seg);
        let ext = LoopExtents::of(seg);
        assert_eq!(huge.levels[0].k, ext.k);
        assert_eq!(huge.levels[3].k, 1);
    }

    #[test]
    fn fingerprints_separate_distinct_mappings() {
        let sg = segments();
        let seg = &sg.segments()[1];
        let mappings = [
            Mapping::weight_stationary(seg),
            Mapping::output_stationary(seg),
            Mapping::input_stationary(seg),
            Mapping::fused_layer(seg),
            Mapping::derived(Loop::K, 8, false, seg),
            Mapping::derived(Loop::K, 16, false, seg),
            Mapping::derived(Loop::K, 8, true, seg),
        ];
        for (i, a) in mappings.iter().enumerate() {
            // Stable across calls.
            assert_eq!(a.fingerprint(), a.fingerprint());
            for b in mappings.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
    }

    #[test]
    fn model_mapping_fingerprint_tracks_every_segment() {
        let sg = segments();
        let ws = ModelMapping::preset(Dataflow::WeightStationary, &sg);
        let os = ModelMapping::preset(Dataflow::OutputStationary, &sg);
        assert_ne!(ws.fingerprint(), os.fingerprint());
        assert_eq!(ws.mappings().len(), sg.segment_count());

        // Changing a single segment's mapping changes the fingerprint.
        let mut mixed = ws.mappings().to_vec();
        mixed[1] = Mapping::derived(Loop::K, 8, false, &sg.segments()[1]);
        let mixed = ModelMapping::from_mappings(&sg, "mixed", mixed);
        assert_ne!(mixed.fingerprint(), ws.fingerprint());
    }
}

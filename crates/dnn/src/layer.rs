//! Individual DNN layer kinds with parameter / MAC / activation accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::shapes::TensorShape;

/// Identifier of a layer inside a [`crate::LayerGraph`]. Dense: ranges over
/// `0..graph.layer_count()` in topological order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The operator a layer performs.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2D convolution.
    Conv2d {
        /// Input channels.
        in_c: u32,
        /// Output channels.
        out_c: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Fully-connected layer.
    Linear {
        /// Input features.
        in_f: u32,
        /// Output features.
        out_f: u32,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Square window.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
    },
    /// Average pooling.
    AvgPool {
        /// Square window.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
    },
    /// Global average pooling down to 1x1.
    GlobalAvgPool,
    /// Batch normalization (folded into inference as scale+shift).
    BatchNorm {
        /// Normalized channels.
        channels: u32,
    },
    /// Elementwise activation (ReLU family); parameter-free.
    Activation,
    /// Elementwise addition of two branches (residual join).
    Add,
    /// Channel-wise concatenation of two or more branches (dense join).
    Concat,
    /// Input pseudo-layer.
    Input,
}

impl LayerKind {
    /// Short operator mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::Linear { .. } => "fc",
            LayerKind::MaxPool { .. } => "maxpool",
            LayerKind::AvgPool { .. } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm { .. } => "bn",
            LayerKind::Activation => "act",
            LayerKind::Add => "add",
            LayerKind::Concat => "concat",
            LayerKind::Input => "input",
        }
    }

    /// Whether this layer holds trainable weights that occupy PIM crossbar
    /// storage (convolutions and fully-connected layers).
    pub fn is_weighted(&self) -> bool {
        matches!(self, LayerKind::Conv2d { .. } | LayerKind::Linear { .. })
    }
}

/// One layer instance: operator, name and inferred output shape.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Layer {
    /// Dense id (topological order).
    pub id: LayerId,
    /// Human-readable name, e.g. `"layer2.0.conv1"`.
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
    /// Output feature-map shape.
    pub out_shape: TensorShape,
}

impl Layer {
    /// Number of trainable parameters (weights + biases; BatchNorm counts
    /// its affine scale/shift pair, matching `torchvision` conventions).
    pub fn params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                bias,
                ..
            } => {
                let w = out_c as u64 * in_c as u64 * (kernel as u64).pow(2);
                w + if bias { out_c as u64 } else { 0 }
            }
            LayerKind::Linear { in_f, out_f, bias } => {
                in_f as u64 * out_f as u64 + if bias { out_f as u64 } else { 0 }
            }
            LayerKind::BatchNorm { channels } => 2 * channels as u64,
            _ => 0,
        }
    }

    /// Multiply-accumulate operations for one inference pass.
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                ..
            } => {
                let spatial = self.out_shape.h as u64 * self.out_shape.w as u64;
                debug_assert_eq!(self.out_shape.c, out_c);
                spatial * out_c as u64 * in_c as u64 * (kernel as u64).pow(2)
            }
            LayerKind::Linear { in_f, out_f, .. } => in_f as u64 * out_f as u64,
            _ => 0,
        }
    }

    /// Elements produced by one inference pass.
    pub fn output_activations(&self) -> u64 {
        self.out_shape.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_c: u32, out_c: u32, kernel: u32, out: TensorShape) -> Layer {
        Layer {
            id: LayerId(0),
            name: "t".into(),
            kind: LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                stride: 1,
                padding: kernel / 2,
                bias: false,
            },
            out_shape: out,
        }
    }

    #[test]
    fn conv_params() {
        // 64 -> 64 3x3: 36864 weights.
        let l = conv(64, 64, 3, TensorShape::new(64, 56, 56));
        assert_eq!(l.params(), 36_864);
    }

    #[test]
    fn conv_macs() {
        let l = conv(64, 64, 3, TensorShape::new(64, 56, 56));
        assert_eq!(l.macs(), 36_864 * 56 * 56);
    }

    #[test]
    fn linear_params_with_bias() {
        let l = Layer {
            id: LayerId(0),
            name: "fc".into(),
            kind: LayerKind::Linear {
                in_f: 512,
                out_f: 1000,
                bias: true,
            },
            out_shape: TensorShape::features(1000),
        };
        assert_eq!(l.params(), 512 * 1000 + 1000);
        assert_eq!(l.macs(), 512 * 1000);
    }

    #[test]
    fn parameter_free_layers() {
        let l = Layer {
            id: LayerId(0),
            name: "relu".into(),
            kind: LayerKind::Activation,
            out_shape: TensorShape::new(64, 8, 8),
        };
        assert_eq!(l.params(), 0);
        assert_eq!(l.macs(), 0);
        assert_eq!(l.output_activations(), 64 * 64);
    }

    #[test]
    fn batchnorm_counts_affine_pair() {
        let l = Layer {
            id: LayerId(0),
            name: "bn".into(),
            kind: LayerKind::BatchNorm { channels: 64 },
            out_shape: TensorShape::new(64, 8, 8),
        };
        assert_eq!(l.params(), 128);
    }

    #[test]
    fn weighted_classification() {
        assert!(LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
            bias: false
        }
        .is_weighted());
        assert!(!LayerKind::Add.is_weighted());
        assert!(!LayerKind::BatchNorm { channels: 4 }.is_weighted());
    }
}

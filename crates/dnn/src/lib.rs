//! DNN workload modelling for dataflow-aware PIM manycore evaluation.
//!
//! Implements the workload side of the DATE 2024 paper *"Dataflow-Aware
//! PIM-Enabled Manycore Architecture for Deep Learning Workloads"*:
//!
//! * a layer-graph representation with typed edges ([`LayerGraph`],
//!   [`EdgeKind`]) and per-layer parameter/MAC/activation accounting;
//! * the Table I model zoo ([`table1`], [`build_model`]): ResNets, VGGs,
//!   DenseNet-169 and GoogLeNet on ImageNet and CIFAR-10;
//! * the Table II concurrent-DNN datacenter mixes ([`table2`]);
//! * segment compression for chiplet mapping ([`SegmentGraph`]);
//! * the sweepable dataflow axis ([`Dataflow`]): weight-, output- and
//!   input-stationary plus the PIMfused-style fused-layer pipeline and
//!   the searched-optimal pseudo-mode;
//! * the per-segment loop-nest mapping engine behind that axis
//!   ([`mapping::Mapping`]): tiling factors × loop order per memory
//!   level, with the hand modes as constrained presets;
//! * the Section IV Transformer storage analysis ([`BertConfig`]).
//!
//! # Examples
//!
//! ```
//! use dnn::{build_model, Dataset, ModelKind, SegmentGraph};
//!
//! let net = build_model(ModelKind::ResNet34, Dataset::ImageNet)?;
//! // Section II claim: skips carry ~19% of ResNet-34's activations.
//! let split = net.activation_split();
//! assert!((0.1..0.25).contains(&split.skip_fraction()));
//!
//! // Compress to the mappable segment graph.
//! let sg = SegmentGraph::from_layer_graph(&net);
//! assert_eq!(sg.total_params(), net.total_params());
//! # Ok::<(), dnn::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataflow;
mod graph;
mod layer;
pub mod mapping;
pub mod models;
mod segment;
mod shapes;
mod transformer;
mod workload;
mod zoo;

pub use dataflow::{BufferProfile, Dataflow, ParseDataflowError};
pub use graph::{ActivationSplit, Edge, EdgeKind, GraphBuilder, GraphError, LayerGraph};
pub use layer::{Layer, LayerId, LayerKind};
pub use mapping::{Mapping, ModelMapping, NoiPolicy};
pub use segment::{Segment, SegmentEdge, SegmentGraph, SegmentId};
pub use shapes::{Dataset, TensorShape};
pub use transformer::{lifetime_inferences, storage_sweep, BertConfig, StorageRow};
pub use workload::{table2, table2_workload, MixEntry, Workload};
pub use zoo::{build_model, table1, table1_entry, ModelKind, Table1Entry};

//! Compression of a full [`LayerGraph`] into a *segment graph* of
//! weight-bearing layers.
//!
//! The paper maps "neural layers" onto chiplets; parameter-free operators
//! (BN, ReLU, pooling, joins) execute in the peripheral logic of the PIM
//! chiplet that holds the preceding weighted layer. A segment therefore
//! aggregates one conv/fc layer with its trailing parameter-free ops, and
//! segment edges carry the activation volumes that must cross chiplets.

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeKind, LayerGraph};
use crate::layer::LayerId;

/// Identifier of a segment inside a [`SegmentGraph`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One mappable unit: a weighted layer plus its trailing parameter-free
/// operators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Dense id in topological order.
    pub id: SegmentId,
    /// Name of the anchoring weighted layer (or `"input"`).
    pub name: String,
    /// Trainable parameters stored on the PIM chiplet(s) for this segment.
    pub params: u64,
    /// MAC operations per inference.
    pub macs: u64,
    /// Activation elements this segment emits per inference (the output of
    /// its last fused operator).
    pub out_activations: u64,
    /// Rows of the anchoring weight matrix as unrolled for a crossbar
    /// (conv: `in_c * k^2`; fc: `in_f`; 0 for the input pseudo-segment).
    pub weight_rows: u32,
    /// Columns of the anchoring weight matrix (output channels/features).
    pub weight_cols: u32,
    /// Ids of the fused full-graph layers.
    pub members: Vec<LayerId>,
}

/// A directed inter-segment activation transfer.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SegmentEdge {
    /// Producer segment.
    pub src: SegmentId,
    /// Consumer segment.
    pub dst: SegmentId,
    /// Elements transferred per inference.
    pub volume: u64,
    /// Edge class inherited from the underlying layer edge.
    pub kind: EdgeKind,
}

/// The compressed dataflow graph consumed by the chiplet mapper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SegmentGraph {
    name: String,
    segments: Vec<Segment>,
    edges: Vec<SegmentEdge>,
}

impl SegmentGraph {
    /// Model name this graph was compressed from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Segments in topological order. The first segment is the input
    /// pseudo-segment (zero parameters).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Inter-segment edges (deduplicated, volumes summed).
    pub fn edges(&self) -> &[SegmentEdge] {
        &self.edges
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// Total parameters across all segments.
    pub fn total_params(&self) -> u64 {
        self.segments.iter().map(|s| s.params).sum()
    }

    /// Total inter-segment traffic per inference, in elements.
    pub fn total_traffic(&self) -> u64 {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// Compresses a full layer graph.
    ///
    /// Every weighted layer anchors a new segment; every parameter-free
    /// layer joins the segment of its primary (first-listed) producer. The
    /// input layer anchors segment 0 so that networks always have a
    /// traffic source.
    pub fn from_layer_graph(g: &LayerGraph) -> SegmentGraph {
        let n = g.layer_count();
        // owner[layer] = segment index.
        let mut owner: Vec<u32> = vec![u32::MAX; n];
        let mut segments: Vec<Segment> = Vec::new();

        // Primary producer of each layer (first incoming edge).
        let mut primary: Vec<Option<LayerId>> = vec![None; n];
        for e in g.edges() {
            let d = e.dst.index();
            if primary[d].is_none() || e.kind == EdgeKind::Sequential {
                // Prefer the sequential (main-path) input as primary.
                if primary[d].is_none() {
                    primary[d] = Some(e.src);
                }
            }
        }

        for layer in g.layers() {
            let li = layer.id.index();
            let anchors = layer.kind.is_weighted() || primary[li].is_none();
            if anchors {
                let sid =
                    SegmentId(u32::try_from(segments.len()).expect("segment count fits a u32 id"));
                owner[li] = sid.0;
                let (weight_rows, weight_cols) = match layer.kind {
                    crate::layer::LayerKind::Conv2d {
                        in_c,
                        out_c,
                        kernel,
                        ..
                    } => (in_c * kernel * kernel, out_c),
                    crate::layer::LayerKind::Linear { in_f, out_f, .. } => (in_f, out_f),
                    _ => (0, 0),
                };
                segments.push(Segment {
                    id: sid,
                    name: layer.name.clone(),
                    params: layer.params(),
                    macs: layer.macs(),
                    out_activations: layer.output_activations(),
                    weight_rows,
                    weight_cols,
                    members: vec![layer.id],
                });
            } else {
                let p = primary[li].expect("non-anchor layer has a producer");
                let sid = owner[p.index()];
                debug_assert_ne!(sid, u32::MAX, "producers precede consumers");
                owner[li] = sid;
                let seg = &mut segments[sid as usize];
                seg.params += layer.params();
                seg.macs += layer.macs();
                // The segment's emission is the output of its last member.
                seg.out_activations = layer.output_activations();
                seg.members.push(layer.id);
            }
        }

        // Cross-segment edges, deduplicated by (src, dst) with volumes
        // accumulated; the edge kind keeps the "most interesting" class
        // (skip/dense win over sequential).
        let mut edge_map: std::collections::BTreeMap<(u32, u32), (u64, EdgeKind)> =
            std::collections::BTreeMap::new();
        for e in g.edges() {
            let so = owner[e.src.index()];
            let d_o = owner[e.dst.index()];
            if so == d_o {
                continue;
            }
            let vol = g.edge_volume(e);
            let entry = edge_map.entry((so, d_o)).or_insert((0, e.kind));
            entry.0 += vol;
            if e.kind != EdgeKind::Sequential {
                entry.1 = e.kind;
            }
        }
        let edges = edge_map
            .into_iter()
            .map(|((s, d), (volume, kind))| SegmentEdge {
                src: SegmentId(s),
                dst: SegmentId(d),
                volume,
                kind,
            })
            .collect();

        SegmentGraph {
            name: g.name().to_string(),
            segments,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet18, resnet34, vgg11};
    use crate::shapes::Dataset;

    #[test]
    fn vgg_segments_form_a_chain() {
        let g = vgg11(Dataset::Cifar10).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        // input + 8 convs + 1 fc = 10 segments.
        assert_eq!(sg.segment_count(), 10);
        // A pure chain: segment i feeds segment i+1 only.
        for e in sg.edges() {
            assert_eq!(e.dst.0, e.src.0 + 1, "VGG must compress to a chain");
            assert_eq!(e.kind, EdgeKind::Sequential);
        }
        assert_eq!(sg.edges().len(), 9);
    }

    #[test]
    fn segment_params_are_preserved() {
        for g in [
            vgg11(Dataset::Cifar10).unwrap(),
            resnet18(Dataset::ImageNet).unwrap(),
        ] {
            let sg = SegmentGraph::from_layer_graph(&g);
            assert_eq!(sg.total_params(), g.total_params(), "{}", g.name());
        }
    }

    #[test]
    fn resnet_segments_have_skip_edges() {
        let g = resnet18(Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let skips = sg
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Skip)
            .count();
        assert!(skips >= 4, "resnet18 segment graph keeps skip edges");
    }

    #[test]
    fn resnet_segment_count_matches_weighted_layers() {
        let g = resnet34(Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        // input + weighted layers.
        assert_eq!(sg.segment_count(), 1 + g.weighted_layer_count());
    }

    #[test]
    fn members_partition_the_layer_set() {
        let g = resnet18(Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let mut seen = vec![false; g.layer_count()];
        for s in sg.segments() {
            for m in &s.members {
                assert!(!seen[m.index()], "layer fused twice");
                seen[m.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weight_dims_multiply_to_params() {
        let g = vgg11(Dataset::Cifar10).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        for s in sg.segments().iter().skip(1) {
            let matrix = s.weight_rows as u64 * s.weight_cols as u64;
            // Conv weights have no bias here; fc adds out_f bias terms and
            // fused BN adds 2c, so matrix <= params < matrix + 3*cols.
            assert!(matrix <= s.params, "{}: {} > {}", s.name, matrix, s.params);
            assert!(s.params < matrix + 3 * s.weight_cols as u64 + 1);
        }
    }

    #[test]
    fn traffic_is_positive_and_bounded() {
        let g = resnet18(Dataset::ImageNet).unwrap();
        let sg = SegmentGraph::from_layer_graph(&g);
        let traffic = sg.total_traffic();
        assert!(traffic > 0);
        // Inter-segment traffic cannot exceed total edge volume.
        let full: u64 = g.edges().iter().map(|e| g.edge_volume(e)).sum();
        assert!(traffic <= full);
    }
}

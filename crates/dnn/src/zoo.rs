//! The Table I model zoo: thirteen DNN inference workloads `M1..M13` with
//! their datasets and the parameter counts printed in the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::{GraphError, LayerGraph};
use crate::models;
use crate::shapes::Dataset;

/// Model architecture selector for [`build_model`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelKind {
    /// ResNet-18.
    ResNet18,
    /// ResNet-34.
    ResNet34,
    /// ResNet-50.
    ResNet50,
    /// ResNet-101.
    ResNet101,
    /// ResNet-20 (CIFAR 6n+2; ablations only, not in Table I).
    ResNet20,
    /// ResNet-56 (CIFAR 6n+2; ablations only, not in Table I).
    ResNet56,
    /// ResNet-110 (CIFAR 6n+2 micro-architecture).
    ResNet110,
    /// ResNet-152.
    ResNet152,
    /// VGG-11.
    Vgg11,
    /// VGG-19.
    Vgg19,
    /// DenseNet-169.
    DenseNet169,
    /// DenseNet-121 (ablations only; not in Table I).
    DenseNet121,
    /// GoogLeNet.
    GoogLeNet,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet34 => "ResNet34",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::ResNet101 => "ResNet101",
            ModelKind::ResNet20 => "ResNet20",
            ModelKind::ResNet56 => "ResNet56",
            ModelKind::ResNet110 => "ResNet110",
            ModelKind::ResNet152 => "ResNet152",
            ModelKind::Vgg11 => "VGG11",
            ModelKind::Vgg19 => "VGG19",
            ModelKind::DenseNet169 => "DenseNet169",
            ModelKind::DenseNet121 => "DenseNet121",
            ModelKind::GoogLeNet => "GoogLeNet",
        };
        f.write_str(s)
    }
}

/// Builds the layer graph for a model/dataset pair.
///
/// # Errors
///
/// Propagates [`GraphError`] from the constructors (cannot occur for the
/// shipped configurations; the error channel exists for custom variants).
///
/// # Examples
///
/// ```
/// use dnn::{build_model, Dataset, ModelKind};
///
/// let net = build_model(ModelKind::ResNet50, Dataset::ImageNet)?;
/// assert!((net.total_params() as f64 / 1e6 - 25.56).abs() < 0.1);
/// # Ok::<(), dnn::GraphError>(())
/// ```
pub fn build_model(kind: ModelKind, dataset: Dataset) -> Result<LayerGraph, GraphError> {
    match kind {
        ModelKind::ResNet18 => models::resnet18(dataset),
        ModelKind::ResNet34 => models::resnet34(dataset),
        ModelKind::ResNet50 => models::resnet50(dataset),
        ModelKind::ResNet101 => models::resnet101(dataset),
        ModelKind::ResNet20 => models::resnet20(dataset),
        ModelKind::ResNet56 => models::resnet56(dataset),
        ModelKind::ResNet110 => models::resnet110(dataset),
        ModelKind::ResNet152 => models::resnet152(dataset),
        ModelKind::Vgg11 => models::vgg11(dataset),
        ModelKind::Vgg19 => models::vgg19(dataset),
        ModelKind::DenseNet169 => models::densenet169(dataset),
        ModelKind::DenseNet121 => models::densenet121(dataset),
        ModelKind::GoogLeNet => models::googlenet(dataset),
    }
}

/// One row of Table I.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Entry {
    /// Workload id, `"M1"` .. `"M13"`.
    pub id: &'static str,
    /// Architecture.
    pub kind: ModelKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Parameter count in millions as printed in the paper (several rows
    /// are inconsistent with the literature; see EXPERIMENTS.md).
    pub paper_params_m: f64,
}

/// The thirteen Table I workloads in order (`M1..M13`).
pub fn table1() -> Vec<Table1Entry> {
    use Dataset::{Cifar10, ImageNet};
    use ModelKind::*;
    vec![
        Table1Entry {
            id: "M1",
            kind: ResNet18,
            dataset: ImageNet,
            paper_params_m: 24.76,
        },
        Table1Entry {
            id: "M2",
            kind: ResNet34,
            dataset: ImageNet,
            paper_params_m: 36.5,
        },
        Table1Entry {
            id: "M3",
            kind: ResNet50,
            dataset: ImageNet,
            paper_params_m: 25.94,
        },
        Table1Entry {
            id: "M4",
            kind: ResNet101,
            dataset: ImageNet,
            paper_params_m: 9.42,
        },
        Table1Entry {
            id: "M5",
            kind: ResNet110,
            dataset: ImageNet,
            paper_params_m: 43.6,
        },
        Table1Entry {
            id: "M6",
            kind: ResNet152,
            dataset: ImageNet,
            paper_params_m: 54.84,
        },
        Table1Entry {
            id: "M7",
            kind: Vgg19,
            dataset: ImageNet,
            paper_params_m: 93.4,
        },
        Table1Entry {
            id: "M8",
            kind: DenseNet169,
            dataset: ImageNet,
            paper_params_m: 54.84,
        },
        Table1Entry {
            id: "M9",
            kind: ResNet18,
            dataset: Cifar10,
            paper_params_m: 11.22,
        },
        Table1Entry {
            id: "M10",
            kind: ResNet34,
            dataset: Cifar10,
            paper_params_m: 21.34,
        },
        Table1Entry {
            id: "M11",
            kind: Vgg11,
            dataset: Cifar10,
            paper_params_m: 9.62,
        },
        Table1Entry {
            id: "M12",
            kind: Vgg19,
            dataset: Cifar10,
            paper_params_m: 20.42,
        },
        Table1Entry {
            id: "M13",
            kind: GoogLeNet,
            dataset: Cifar10,
            paper_params_m: 6.16,
        },
    ]
}

/// Looks up a Table I entry by workload id (`"M1"`..`"M13"`).
pub fn table1_entry(id: &str) -> Option<Table1Entry> {
    table1().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_thirteen_entries() {
        let t = table1();
        assert_eq!(t.len(), 13);
        assert_eq!(t[0].id, "M1");
        assert_eq!(t[12].id, "M13");
    }

    #[test]
    fn all_table1_models_build() {
        for e in table1() {
            let g = build_model(e.kind, e.dataset).unwrap();
            assert!(g.total_params() > 0, "{} has no params", e.id);
            assert!(g.total_macs() > 0, "{} has no macs", e.id);
        }
    }

    #[test]
    fn table1_lookup() {
        let e = table1_entry("M7").unwrap();
        assert_eq!(e.kind, ModelKind::Vgg19);
        assert_eq!(e.dataset, Dataset::ImageNet);
        assert!(table1_entry("M99").is_none());
    }

    #[test]
    fn cifar_rows_match_paper_within_5_percent() {
        // The CIFAR-10 rows of Table I are consistent with the standard
        // implementations; check our computed counts track them.
        for id in ["M9", "M10", "M11", "M12", "M13"] {
            let e = table1_entry(id).unwrap();
            let g = build_model(e.kind, e.dataset).unwrap();
            let ours = g.total_params() as f64 / 1e6;
            let rel = (ours - e.paper_params_m).abs() / e.paper_params_m;
            assert!(
                rel < 0.06,
                "{id}: ours {ours}M vs paper {}M ({}%)",
                e.paper_params_m,
                (rel * 100.0).round()
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet50");
        assert_eq!(ModelKind::GoogLeNet.to_string(), "GoogLeNet");
    }
}

//! VGG family (Simonyan & Zisserman). ImageNet variants follow the
//! torchvision configuration (three-layer 4096-wide classifier, biased
//! convs, no batch norm); CIFAR-10 variants follow the common `cifar-vgg`
//! adaptation (batch-normalized convs, single fully-connected classifier),
//! which reproduces the ~9.6M / ~20.4M parameter counts of Table I.

use crate::graph::{GraphBuilder, GraphError, LayerGraph};
use crate::shapes::Dataset;

/// One element of a VGG configuration string: a conv width or a max-pool.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Cfg {
    C(u32),
    M,
}

use Cfg::{C, M};

const VGG11: &[Cfg] = &[
    C(64),
    M,
    C(128),
    M,
    C(256),
    C(256),
    M,
    C(512),
    C(512),
    M,
    C(512),
    C(512),
    M,
];

const VGG19: &[Cfg] = &[
    C(64),
    C(64),
    M,
    C(128),
    C(128),
    M,
    C(256),
    C(256),
    C(256),
    C(256),
    M,
    C(512),
    C(512),
    C(512),
    C(512),
    M,
    C(512),
    C(512),
    C(512),
    C(512),
    M,
];

fn vgg(name: &str, dataset: Dataset, cfg: &[Cfg]) -> Result<LayerGraph, GraphError> {
    let mut g = GraphBuilder::new(name, dataset);
    let mut cur = g.input();
    let mut conv_i = 0;
    let mut pool_i = 0;
    let with_bn = dataset == Dataset::Cifar10;
    for &item in cfg {
        match item {
            C(width) => {
                conv_i += 1;
                let cname = format!("conv{conv_i}");
                cur = g.conv(cur, &cname, width, 3, 1, 1, !with_bn)?;
                if with_bn {
                    cur = g.batchnorm(cur, &format!("{cname}.bn"))?;
                }
                cur = g.relu(cur, &format!("{cname}.relu"))?;
            }
            M => {
                pool_i += 1;
                cur = g.max_pool(cur, &format!("pool{pool_i}"), 2, 2, 0)?;
            }
        }
    }
    match dataset {
        Dataset::ImageNet => {
            let f1 = g.linear(cur, "classifier.fc1", 4096, true)?;
            let r1 = g.relu(f1, "classifier.relu1")?;
            let f2 = g.linear(r1, "classifier.fc2", 4096, true)?;
            let r2 = g.relu(f2, "classifier.relu2")?;
            g.linear(r2, "classifier.fc3", dataset.classes(), true)?;
        }
        Dataset::Cifar10 => {
            g.linear(cur, "classifier.fc", dataset.classes(), true)?;
        }
    }
    Ok(g.build())
}

/// VGG-11 (configuration A).
pub fn vgg11(dataset: Dataset) -> Result<LayerGraph, GraphError> {
    vgg("vgg11", dataset, VGG11)
}

/// VGG-19 (configuration E).
pub fn vgg19(dataset: Dataset) -> Result<LayerGraph, GraphError> {
    vgg("vgg19", dataset, VGG19)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_m(g: &LayerGraph) -> f64 {
        g.total_params() as f64 / 1e6
    }

    #[test]
    fn vgg11_imagenet_params_match_torchvision() {
        let g = vgg11(Dataset::ImageNet).unwrap();
        let p = params_m(&g);
        assert!((p - 132.86).abs() < 0.5, "vgg11 params {p}M");
    }

    #[test]
    fn vgg19_imagenet_params_match_torchvision() {
        let g = vgg19(Dataset::ImageNet).unwrap();
        let p = params_m(&g);
        assert!((p - 143.67).abs() < 0.5, "vgg19 params {p}M");
    }

    #[test]
    fn vgg11_cifar_params_match_table1() {
        // Table I: VGG11 on CIFAR-10 = 9.62M; cifar-vgg with BN: ~9.23M.
        let g = vgg11(Dataset::Cifar10).unwrap();
        let p = params_m(&g);
        assert!((9.0..=9.8).contains(&p), "vgg11-cifar params {p}M");
    }

    #[test]
    fn vgg19_cifar_params_match_table1() {
        // Table I: VGG19 on CIFAR-10 = 20.42M; cifar-vgg with BN: ~20.04M.
        let g = vgg19(Dataset::Cifar10).unwrap();
        let p = params_m(&g);
        assert!((19.5..=20.6).contains(&p), "vgg19-cifar params {p}M");
    }

    #[test]
    fn vgg_is_purely_linear_dataflow() {
        // Every edge is sequential: VGG has no skips or dense joins —
        // the "linear dataflow" archetype of Section I.
        let g = vgg19(Dataset::ImageNet).unwrap();
        assert!(g
            .edges()
            .iter()
            .all(|e| e.kind == crate::graph::EdgeKind::Sequential));
        let split = g.activation_split();
        assert_eq!(split.skip, 0);
        assert_eq!(split.dense, 0);
    }

    #[test]
    fn vgg19_has_16_convs_and_3_fcs_imagenet() {
        let g = vgg19(Dataset::ImageNet).unwrap();
        assert_eq!(g.weighted_layer_count(), 19);
    }
}
